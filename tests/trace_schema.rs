//! End-to-end schema test for the Chrome trace-event export.
//!
//! Runs a small heterogeneous engine batch with tracing enabled — the same
//! path `tables --trace` exercises — then serializes the collected events
//! and validates the artifact with the same checker the binary uses
//! in-process: valid JSON array, required keys per event, per-`tid`
//! monotonic timestamps, balanced `B`/`E` pairs per thread. One test
//! function on purpose: the emission flag is process-global, so intra-
//! binary test parallelism would interleave unrelated event streams.

use veriqec::engine::{Engine, EngineConfig, Job};
use veriqec::parallel::SplitConfig;
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec::tasks::build_problem;
use veriqec_bench::trace::validate_chrome_trace;
use veriqec_codes::{five_qubit, steane};

#[test]
fn engine_batch_trace_satisfies_chrome_schema() {
    let _ = veriqec_obs::drain(); // discard anything a prior run buffered
    veriqec_obs::set_enabled(true);

    let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
    let jobs = vec![
        Job::correction(
            "steane_t1",
            build_problem(&scenario, 1, vec![]),
            scenario.error_vars.clone(),
            SplitConfig::default(),
        ),
        Job::count("five_qubit_count", five_qubit()),
        Job::detection("five_qubit_dt3", five_qubit(), 3),
    ];
    let batch = Engine::new(EngineConfig::default()).run(jobs);
    veriqec_obs::set_enabled(false);
    assert!(batch.incomplete_jobs().is_empty());

    let mut collector = veriqec_obs::Collector::new();
    collector.drain();
    let json = collector.to_chrome_trace();
    let summary = validate_chrome_trace(&json).expect("trace must satisfy the Chrome schema");
    assert!(summary.events > 0, "tracing produced no events");

    // The batch crosses every instrumented layer: engine scheduling, vcgen
    // encode/query (correction job), smt checks, sat solves, dd compiles
    // (count job).
    for cat in ["engine", "vcgen", "smt", "sat", "dd"] {
        assert!(
            summary.categories.iter().any(|c| c == cat),
            "missing category {cat:?} (got {:?})",
            summary.categories
        );
    }

    // The phase summary the batch reports render must see the same spans.
    let phases = collector.phase_summary();
    assert!(!phases.is_empty());
    assert!(
        phases.iter().any(|p| p.cat == "sat" && p.name == "solve"),
        "phase summary must aggregate solver spans: {phases:?}"
    );
}
