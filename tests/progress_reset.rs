//! Regression test: heartbeat/progress globals must reset between batches.
//!
//! A resident process (the `veriqec_serve` daemon, a notebook, a long
//! REPL) runs many engine batches in one process. The progress globals in
//! `veriqec_obs::heartbeat` are process-wide; before the engine called
//! `reset_progress` at batch start, the second batch inherited the first
//! batch's done counters and job totals, reporting a bogus jobs-done
//! fraction (e.g. `jobs=5/2`) and a negative-drift ETA. This lives in its
//! own integration-test binary so no concurrently running engine test can
//! touch the globals mid-assertion.

use std::time::Duration;

use veriqec::engine::{Engine, EngineConfig, Job};
use veriqec_codes::{five_qubit, steane};
use veriqec_obs::heartbeat;

#[test]
fn second_batch_in_one_process_reports_only_its_own_jobs() {
    // A larger first batch, then a smaller second one — exactly the shape
    // that used to leave JOBS_DONE > JOBS_TOTAL.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let first = engine.run(vec![
        Job::distance("first_steane", steane(), 3),
        Job::detection("first_five_qubit", five_qubit(), 3),
        Job::count("first_count", five_qubit()),
    ]);
    assert!(first.incomplete_jobs().is_empty());
    assert_eq!(heartbeat::JOBS_TOTAL.get(), 3);
    assert_eq!(heartbeat::JOBS_DONE.get(), 3);

    let second = engine.run(vec![Job::distance("second_steane", steane(), 3)]);
    assert!(second.incomplete_jobs().is_empty());
    assert_eq!(
        heartbeat::JOBS_TOTAL.get(),
        1,
        "second batch must not inherit the first batch's job total"
    );
    assert_eq!(
        heartbeat::JOBS_DONE.get(),
        1,
        "second batch must not inherit the first batch's done counter"
    );

    // The rendered status line agrees: one job of one, not five of three.
    let line = heartbeat::status_line(Duration::from_secs(1));
    assert!(
        line.contains("jobs=1/1"),
        "status line reports stale progress: {line}"
    );
}
