//! End-to-end validation of the non-Pauli (case-3) verifier against dense
//! simulation — the reproduction's ground truth for §5.2.2 / Appendix C.
//!
//! The symbolic verifier claims: a single `T` (or `H`) error on any Steane
//! qubit, followed by one round of syndrome measurement + minimum-weight
//! decoding + correction, restores the logical state. Here the same program
//! is executed on the dense state-vector backend over *every* measurement
//! branch, from both `|+⟩_L` and `|−⟩_L`, and the final states are checked
//! against the postcondition directly.

use veriqec::scenario::nonpauli_scenario;
use veriqec::tasks::verify_nonpauli_memory;
use veriqec_cexpr::{CMem, Value};
use veriqec_codes::{repetition, steane, StabilizerCode};
use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};
use veriqec_pauli::Gate1;
use veriqec_prog::run_all_branches;
use veriqec_qsim::DenseState;
use veriqec_vcgen::NonPauliOutcome;

/// Prepares the joint +1 eigenstate of the scenario's LHS generating set at
/// given parameter values by projective filtering of a generic state.
fn prepare_lhs_state(
    code: &StabilizerCode,
    lhs: &[veriqec_pauli::SymPauli],
    m: &CMem,
) -> DenseState {
    let n = code.n();
    // Start from a generic (pseudo-random) state so that no projection onto
    // a ±1 eigenspace vanishes.
    let dim = 1usize << n;
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let amps: Vec<veriqec_qsim::C64> = (0..dim)
        .map(|_| veriqec_qsim::C64::new(next(), next()))
        .collect();
    let mut st = DenseState::from_amplitudes(amps);
    st.normalize();
    for g in lhs {
        let p = g.eval(m);
        let norm = st.project_pauli(&p, false);
        assert!(norm > 1e-12, "projection vanished for {p}");
        st.normalize();
    }
    st
}

fn dense_check(code: &StabilizerCode, gate: Gate1, qubit: usize) -> bool {
    let scenario = nonpauli_scenario(code, gate, qubit);
    let decoder = CssLookupDecoder::for_code(code, 1);
    let oracle = decode_call_oracle(decoder, code.n());
    for b in [false, true] {
        let mut m = CMem::new();
        for &p in &scenario.params {
            m.set(p, Value::Bool(b));
        }
        let st = prepare_lhs_state(code, &scenario.lhs, &m);
        let branches = run_all_branches(&scenario.program, m.clone(), st, &oracle);
        for (mem, out) in branches {
            if out.norm_sqr() < 1e-9 {
                continue;
            }
            let mut out = out;
            out.normalize();
            for c in &scenario.post.conjuncts {
                let single = c.as_single().expect("post conjuncts are plain");
                let concrete = single.eval(&mem);
                if !out.is_stabilized_by(&concrete) {
                    return false;
                }
            }
        }
    }
    true
}

#[test]
fn steane_t_error_symbolic_matches_dense() {
    let code = steane();
    for q in [0, 2, 4, 6] {
        let symbolic = verify_nonpauli_memory(&code, Gate1::T, q).expect("heuristic applies");
        let dense = dense_check(&code, Gate1::T, q);
        assert_eq!(
            symbolic == NonPauliOutcome::Verified,
            dense,
            "T on qubit {q}: symbolic={symbolic:?}, dense={dense}"
        );
        assert!(dense, "Steane must correct a single T error on qubit {q}");
    }
}

#[test]
fn steane_h_error_symbolic_matches_dense() {
    let code = steane();
    for q in [1, 5] {
        let symbolic = verify_nonpauli_memory(&code, Gate1::H, q).expect("heuristic applies");
        let dense = dense_check(&code, Gate1::H, q);
        assert_eq!(
            symbolic == NonPauliOutcome::Verified,
            dense,
            "H on qubit {q}"
        );
        assert!(dense);
    }
}

#[test]
fn repetition_code_cannot_correct_t_errors() {
    // Negative control: the 3-qubit bit-flip code does not protect phase
    // information, so a T error is NOT corrected — both the dense simulation
    // and the symbolic verifier must agree on failure.
    let code = repetition(3);
    let dense = dense_check(&code, Gate1::T, 0);
    assert!(!dense, "bit-flip code must fail on T errors");
    match verify_nonpauli_memory(&code, Gate1::T, 0) {
        Ok(NonPauliOutcome::Verified) => panic!("symbolic verifier unsoundly verified"),
        Ok(NonPauliOutcome::Failed { .. }) | Err(_) => {}
    }
}
