//! The paper's worked examples, end to end — including from concrete syntax.

use veriqec_cexpr::{Affine, BExp, VarRole};
use veriqec_logic::{entails, Assertion, QecAssertion};
use veriqec_pauli::{ExtPauli, PauliString, SymPauli};
use veriqec_prog::{parse_program, Stmt};
use veriqec_vcgen::{reduce_commuting, VcProblem};
use veriqec_wp::{qec_wp, triple_holds, wp_loopfree};

fn atom(s: &str) -> Assertion {
    Assertion::pauli(SymPauli::plain(PauliString::from_letters(s).unwrap()))
}

/// Eqn. 6: `{X1} b := meas[Z2]; if b then q2 *= X {X1 ∧ Z2}` — semantically,
/// and via the generic wp engine, and via Example 3.3's quantum-∨ argument.
#[test]
fn eqn6_and_example_3_3() {
    let prog = parse_program("b := meas[Z[1]]; if b then q[1] *= X else skip end").unwrap();
    let b = prog.vars.lookup("b").unwrap();
    let post = Assertion::and(atom("XI"), atom("IZ"));
    // Semantic validity.
    assert!(triple_holds(
        &atom("XI"),
        &prog.stmt,
        &post,
        &[b],
        2,
        &veriqec_prog::NoDecoders
    ));
    // The generic wp is exactly X1 (the quantum ∨ collapses the branches).
    let pre = wp_loopfree(&prog.stmt, &post).unwrap();
    assert!(entails(&pre, &atom("XI"), &[b], 2));
    assert!(entails(&atom("XI"), &pre, &[b], 2));
}

/// Example 4.2: the repetition-code correction loop from concrete syntax,
/// through the scalable engine, gives the paper's precondition phases.
#[test]
fn example_4_2_from_concrete_syntax() {
    let prog = parse_program("[x[0]] q[0] *= X; [x[1]] q[1] *= X; [x[2]] q[2] *= X").unwrap();
    let x: Vec<_> = (0..3)
        .map(|i| prog.vars.lookup(&format!("x_{i}")).unwrap())
        .collect();
    let mut vt = prog.vars.clone();
    let b = vt.fresh("b", VarRole::Param);
    let post = QecAssertion::from_conjuncts(
        3,
        vec![
            ExtPauli::from_sym(SymPauli::plain(PauliString::from_letters("ZZI").unwrap())),
            ExtPauli::from_sym(SymPauli::plain(PauliString::from_letters("IZZ").unwrap())),
            ExtPauli::from_sym(SymPauli::new(
                PauliString::from_letters("ZII").unwrap(),
                Affine::var(b),
            )),
        ],
    );
    let wp = qec_wp(&prog.stmt, post).unwrap();
    // Expected: (−1)^{x1+x2} Z1Z2 ∧ (−1)^{x2+x3} Z2Z3 ∧ (−1)^{b+x1} Z1.
    let phases: Vec<Affine> = wp
        .pre
        .conjuncts
        .iter()
        .map(|c| c.as_single().unwrap().phase().clone())
        .collect();
    assert_eq!(phases[0], Affine::var(x[0]) ^ Affine::var(x[1]));
    assert_eq!(phases[1], Affine::var(x[1]) ^ Affine::var(x[2]));
    assert_eq!(phases[2], Affine::var(b) ^ Affine::var(x[0]));
}

/// The full Table-1 `Steane(Y, H)` program written in the concrete syntax,
/// wp'd and reduced, discharged with the decoder specification — Eqn. 2.
#[test]
fn steane_table1_program_from_text() {
    let src = "
        for i in 0..7 do [ep[i]] q[i] *= Y end;
        for i in 0..7 do q[i] *= H end;
        for i in 0..7 do [e[i]] q[i] *= Y end;
        s[0] := meas[X[0]*X[2]*X[4]*X[6]];
        s[1] := meas[X[1]*X[2]*X[5]*X[6]];
        s[2] := meas[X[3]*X[4]*X[5]*X[6]];
        s[3] := meas[Z[0]*Z[2]*Z[4]*Z[6]];
        s[4] := meas[Z[1]*Z[2]*Z[5]*Z[6]];
        s[5] := meas[Z[3]*Z[4]*Z[5]*Z[6]];
        (z[0], z[1], z[2], z[3], z[4], z[5], z[6]) := decode_z(s[0], s[1], s[2]);
        (x[0], x[1], x[2], x[3], x[4], x[5], x[6]) := decode_x(s[3], s[4], s[5]);
        for i in 0..7 do [x[i]] q[i] *= X end;
        for i in 0..7 do [z[i]] q[i] *= Z end
    ";
    let prog = parse_program(src).unwrap();
    assert_eq!(prog.num_qubits, 7);
    let mut vt = prog.vars.clone();
    let b = vt.fresh("b", VarRole::Param);
    // Postcondition: generators + (−1)^b Z̄ (the |0⟩_L family).
    let code = veriqec_codes::steane();
    let mut conjuncts: Vec<ExtPauli> = code
        .generators()
        .iter()
        .cloned()
        .map(ExtPauli::from_sym)
        .collect();
    conjuncts.push(ExtPauli::from_sym(SymPauli::new(
        code.logical_z()[0].pauli().clone(),
        Affine::var(b),
    )));
    let post = QecAssertion::from_conjuncts(7, conjuncts);
    let wp = qec_wp(&prog.stmt, post).unwrap();
    // LHS: generators + (−1)^b X̄ (|+⟩_L before the logical H).
    let mut lhs = code.generators().to_vec();
    lhs.push(SymPauli::new(
        code.logical_x()[0].pauli().clone(),
        Affine::var(b),
    ));
    let mut vc = reduce_commuting(&lhs, &wp.pre).unwrap();
    vc.resolve_branches();
    // Assemble P_c and P_f by hand (the scenario builder does this for its
    // own programs; here we exercise the parsed program path).
    let evars: Vec<_> = (0..7)
        .flat_map(|i| {
            [
                prog.vars.lookup(&format!("e_{i}")).unwrap(),
                prog.vars.lookup(&format!("ep_{i}")).unwrap(),
            ]
        })
        .collect();
    let hx = code.css_hx().unwrap();
    let hz = code.css_hz().unwrap();
    let zc: Vec<_> = (0..7)
        .map(|i| prog.vars.lookup(&format!("z_{i}")).unwrap())
        .collect();
    let xc: Vec<_> = (0..7)
        .map(|i| prog.vars.lookup(&format!("x_{i}")).unwrap())
        .collect();
    let sx: Vec<_> = (0..3)
        .map(|i| prog.vars.lookup(&format!("s_{i}")).unwrap())
        .collect();
    let sz: Vec<_> = (3..6)
        .map(|i| prog.vars.lookup(&format!("s_{i}")).unwrap())
        .collect();
    let spec_z = veriqec_decoder::MinWeightSpec {
        checks: hx
            .iter()
            .map(|row| row.iter_ones().map(|q| zc[q]).collect())
            .collect(),
        syndromes: sx,
        corrections: zc,
        errors: evars.clone(),
        flips: vec![],
        meas_errors: vec![],
    };
    let spec_x = veriqec_decoder::MinWeightSpec {
        checks: hz
            .iter()
            .map(|row| row.iter_ones().map(|q| xc[q]).collect())
            .collect(),
        syndromes: sz,
        corrections: xc,
        errors: evars.clone(),
        flips: vec![],
        meas_errors: vec![],
    };
    let problem = VcProblem {
        vc,
        error_constraints: vec![BExp::weight_le(evars.iter().copied(), 1)],
        decoder_specs: vec![spec_z, spec_x],
    };
    let (outcome, _) = problem.check();
    assert!(outcome.is_verified(), "Eqn. 2 must verify: {outcome:?}");
}

/// Adequacy in the other basis: the same program also maps `(−1)^b X̄`-type
/// inputs correctly (footnote 1 of the paper).
#[test]
fn steane_memory_verifies_in_both_bases() {
    use veriqec::scenario::{memory_scenario, ErrorModel};
    use veriqec::tasks::build_problem;
    let code = veriqec_codes::steane();
    // The scenario builder uses the Z basis; check the X basis by rebuilding
    // with use_x_basis = true via the logical-H trick: a memory cycle is
    // basis-symmetric for the self-dual Steane code, so verifying Z-basis
    // (done elsewhere) plus the X-basis here covers all logical states.
    let scenario = memory_scenario(&code, ErrorModel::YErrors);
    // Flip the basis by hand: swap the logical conjunct for X̄.
    let mut s = scenario.clone();
    let lx = code.logical_x()[0].clone();
    let b = s.params[0];
    let n = s.num_qubits;
    s.lhs[6] = SymPauli::new(lx.pauli().clone(), Affine::var(b));
    let mut conj = s.post.conjuncts.clone();
    conj[6] = ExtPauli::from_sym(SymPauli::new(lx.pauli().clone(), Affine::var(b)));
    s.post = QecAssertion::from_conjuncts(n, conj);
    let problem = build_problem(&s, 1, vec![]);
    let (outcome, _) = problem.check();
    assert!(outcome.is_verified());
}

/// While-loops are rejected by wp (Theorem A.11's scope) but run fine in the
/// interpreter — the documented division of labour.
#[test]
fn while_loop_division_of_labour() {
    let prog = parse_program("x := true; while x do x := false end").unwrap();
    assert!(!prog.stmt.is_loop_free());
    assert!(matches!(
        wp_loopfree(&prog.stmt, &Assertion::top()),
        Err(veriqec_wp::WpError::WhileUnsupported)
    ));
    // But a loop-free body still works after manual unrolling (If).
    let unrolled = Stmt::seq([prog.stmt.flatten()[0].clone()]);
    assert!(wp_loopfree(&unrolled, &Assertion::top()).is_ok());
}
