//! Workspace-level smoke test for the umbrella re-export surface.
//!
//! Reproduces the doctest of `crates/core/src/lib.rs` — one round of error
//! correction on the Steane code corrects any single Y error — but imports
//! everything through `veriqec_repro::prelude`, so a broken re-export in the
//! umbrella crate fails here even if every member crate is green on its own.

use veriqec_repro::prelude::*;

#[test]
fn steane_corrects_any_single_y_error_via_prelude() {
    let code = steane();
    assert_eq!(code.n(), 7);

    let scenario = memory_scenario(&code, ErrorModel::YErrors);
    let report = verify_correction(&scenario, 1, SolverConfig::default());
    assert!(
        report.outcome.is_verified(),
        "Steane must correct any single Y error"
    );
}

#[test]
fn prelude_covers_the_full_pipeline_surface() {
    // Distance discovery (precise detection, Eqn. 15 of the paper).
    let code = steane();
    assert_eq!(find_distance(&code, 5), DistanceOutcome::Exact(3));

    // Detection task: a distance-3 code detects all errors of weight < 3.
    match verify_detection(&code, 3, SolverConfig::default()) {
        DetectionOutcome::AllDetected => {}
        other => panic!("expected AllDetected, got {other:?}"),
    }

    // The surface-code constructor is reachable through the prelude too.
    let surface = rotated_surface(3);
    assert_eq!(surface.n(), 9);
}
