//! Schema tests for the machine-readable BENCH artifacts.
//!
//! CI uploads `BENCH_enumerators.json`, `BENCH_fault_tolerance.json` and
//! `BENCH_kernels.json`; downstream tooling (the perf-regression gate,
//! plotting scripts) parses them without serde. These tests generate each
//! artifact in-process through the same writers the `tables` binary uses
//! — `BatchReport::to_json` for the engine batches, `KernelsReport::to_json`
//! for the kernel gate — then parse them back with `veriqec_bench::json`
//! and assert the keys and invariants the consumers rely on.

use veriqec::engine::{Engine, EngineConfig, Job};
use veriqec::scenario::{faulty_memory_scenario, ErrorModel};
use veriqec_bench::json::Json;
use veriqec_bench::kernels::{KernelsReport, Metric};
use veriqec_bench::solver_bench::{SolverMetric, SolverReport};
use veriqec_codes::{five_qubit, repetition, steane};
use veriqec_sat::SolverStats;

/// Every engine batch shares this envelope.
fn check_envelope(doc: &Json) -> Vec<Json> {
    assert!(doc.get("wall_time_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(doc.get("workers").unwrap().as_f64().unwrap() >= 1.0);
    let jobs = doc.get("jobs").unwrap().as_arr().unwrap();
    assert!(!jobs.is_empty(), "batch report must list its jobs");
    for job in jobs {
        assert!(job.get("name").unwrap().as_str().is_some());
        assert!(job.get("outcome").unwrap().as_str().is_some());
        assert!(job.get("busy_ms").unwrap().as_f64().unwrap() >= 0.0);
        // Queue wait is measured from enqueue to first worker claim and is
        // reported separately from busy time (busy excludes it).
        assert!(job.get("queue_wait_ms").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("subtasks").unwrap().as_f64().unwrap() >= 0.0);
        // Solver-statistics block: the clause-database counters added with
        // the arena rewrite ride along on every job.
        assert!(job.get("minimized_lits").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("gc_runs").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("arena_bytes").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("mean_lbd").unwrap().as_f64().unwrap() >= 0.0);
    }
    jobs.to_vec()
}

#[test]
fn enumerators_report_has_counts_matching_group_theory() {
    // The same shape `tables enumerators` writes, on the CI-cheap codes.
    let codes = [five_qubit(), steane()];
    let jobs: Vec<Job> = codes
        .iter()
        .map(|code| Job::count(code.name().to_string(), code.clone()))
        .collect();
    let batch = Engine::new(EngineConfig::default()).run(jobs);
    assert!(batch.incomplete_jobs().is_empty());

    let doc = Json::parse(&batch.to_json()).expect("engine emits valid JSON");
    let jobs = check_envelope(&doc);
    assert_eq!(jobs.len(), codes.len());
    for (code, job) in codes.iter().zip(&jobs) {
        assert_eq!(job.get("outcome").unwrap().as_str(), Some("enumerator"));
        // Counting jobs carry the decision-diagram block: allocation and
        // cache counters plus the memory-management telemetry added with
        // the packed-arena engine.
        assert!(job.get("dd_nodes").unwrap().as_f64().unwrap() > 0.0);
        assert!(job.get("dd_peak_nodes").unwrap().as_f64().unwrap() > 0.0);
        assert!(job.get("dd_cache_lookups").unwrap().as_f64().unwrap() > 0.0);
        assert!(job.get("dd_cache_hits").unwrap().as_f64().unwrap() >= 0.0);
        let hit_rate = job.get("dd_hit_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&hit_rate));
        assert!(job.get("dd_probe_len").unwrap().as_f64().unwrap() >= 0.0);
        let load = job.get("dd_load_factor").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&load));
        assert!(job.get("dd_gc_runs").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("dd_gc_reclaimed").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("dd_reorder_swaps").unwrap().as_f64().unwrap() >= 0.0);
        assert!(job.get("dd_arena_bytes").unwrap().as_f64().unwrap() > 0.0);
        let min_weight = job.get("min_weight").unwrap().as_f64().unwrap() as usize;
        assert_eq!(Some(min_weight), code.claimed_distance());
        let coeffs = job.get("coefficients").unwrap().as_arr().unwrap();
        assert_eq!(coeffs.len(), code.n() + 1);
        // Coefficients below the distance vanish; the full enumerator sums
        // to the group-theoretic failure total 2^(n+k) − 2^(n−k).
        for c in &coeffs[..min_weight] {
            assert_eq!(c.as_f64(), Some(0.0));
        }
        let total: f64 = coeffs.iter().map(|c| c.as_f64().unwrap()).sum();
        let (n, k) = (code.n() as u32, code.k() as u32);
        let expected = ((1u128 << (n + k)) - (1u128 << (n - k))) as f64;
        assert_eq!(total, expected, "{}", code.name());
    }
}

#[test]
fn fault_tolerance_report_exposes_the_frontier_grid() {
    // One cheap frontier job, exactly as `tables fault_tolerance --quick`
    // runs them: repetition-3 with a single extraction round.
    let scenario = faulty_memory_scenario(&repetition(3), ErrorModel::XErrors, 1);
    let batch = Engine::new(EngineConfig::default()).run(vec![Job::fault_tolerance(
        "repetition_3_r1",
        &scenario,
        1,
        1,
    )]);
    assert!(batch.incomplete_jobs().is_empty());

    let doc = Json::parse(&batch.to_json()).expect("engine emits valid JSON");
    let jobs = check_envelope(&doc);
    assert_eq!(jobs[0].get("outcome").unwrap().as_str(), Some("frontier"));
    let points = jobs[0].get("points").unwrap().as_arr().unwrap();
    assert_eq!(points.len(), 4, "full 2x2 (t_data, t_meas) grid");
    for p in points {
        assert!(p.get("t_data").unwrap().as_f64().unwrap() <= 1.0);
        assert!(p.get("t_meas").unwrap().as_f64().unwrap() <= 1.0);
        // Every grid point must carry a verdict (else the job would have
        // been flagged incomplete above).
        assert!(p.get("correctable").unwrap().as_bool().is_some());
    }
    // The degenerate budgets are always correctable.
    let verdict = |td: f64, tm: f64| {
        points
            .iter()
            .find(|p| {
                p.get("t_data").unwrap().as_f64() == Some(td)
                    && p.get("t_meas").unwrap().as_f64() == Some(tm)
            })
            .and_then(|p| p.get("correctable").unwrap().as_bool())
    };
    assert_eq!(verdict(0.0, 0.0), Some(true));
    assert_eq!(verdict(1.0, 0.0), Some(true));
}

#[test]
fn cancelled_before_claim_jobs_report_finite_queue_wait() {
    use std::sync::atomic::Ordering;

    // Cancel the batch before any worker can claim a job: every job's
    // internal queue-wait stays `None`, and this pins what the reports
    // emit for that case — a finite `queue_wait_ms` (the whole batch
    // wait), never a NaN or a missing field.
    let engine = Engine::new(EngineConfig::default());
    engine.cancel_flag().store(true, Ordering::Relaxed);
    let batch = engine.run(vec![
        Job::distance("precancelled_distance", steane(), 3),
        Job::detection("precancelled_detection", five_qubit(), 3),
    ]);

    let doc = Json::parse(&batch.to_json()).expect("engine emits valid JSON");
    // The shared envelope already requires queue_wait_ms to be present and
    // non-negative on every job.
    let jobs = check_envelope(&doc);
    assert_eq!(jobs.len(), 2);
    for job in &jobs {
        assert_eq!(job.get("outcome").unwrap().as_str(), Some("cancelled"));
        assert_eq!(job.get("reason").unwrap().as_str(), Some("cancelled"));
        let qw = job.get("queue_wait_ms").unwrap().as_f64().unwrap();
        assert!(qw.is_finite() && qw >= 0.0, "queue_wait_ms was {qw}");
        // Unclaimed jobs burned no worker time and issued no subtasks.
        assert_eq!(job.get("subtasks").unwrap().as_f64(), Some(0.0));
        assert_eq!(job.get("busy_ms").unwrap().as_f64(), Some(0.0));
    }

    // The markdown rendering rows the same jobs as cancelled, with a
    // rendered (non-NaN) queue column.
    let md = batch.to_markdown();
    assert!(md.contains("| precancelled_distance | cancelled | 0 |"));
    assert!(md.contains("| precancelled_detection | cancelled | 0 |"));
    assert!(!md.contains("NaN"));
}

#[test]
fn kernels_report_matches_the_gate_schema() {
    // The writer the `kernels` mode uses, on representative metrics — the
    // measurement itself is covered by the bench targets; this pins the
    // artifact schema the CI gate and baseline file depend on.
    let report = KernelsReport {
        quick: true,
        metrics: vec![
            Metric {
                name: "xor_chain_d5".into(),
                median_ns: 51234.5,
                samples: 24,
            },
            Metric {
                name: "frame_batch_d5".into(),
                median_ns: 87.2,
                samples: 24,
            },
        ],
        frame_batch_speedup: 412.0,
    };
    let doc = Json::parse(&report.to_json()).expect("kernels report is valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("veriqec_kernels_v1")
    );
    assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
    assert!(doc.get("frame_batch_speedup").unwrap().as_f64().unwrap() >= 10.0);
    let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
    assert!(!metrics.is_empty());
    for m in metrics {
        assert!(m.get("name").unwrap().as_str().is_some());
        assert!(m.get("median_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("samples").unwrap().as_f64().unwrap() > 0.0);
    }
    // The gate's join key: metric names are unique.
    let mut names: Vec<&str> = metrics
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), metrics.len());
}

#[test]
fn solver_report_matches_the_gate_schema() {
    // The writer `tables solver` uses, on a representative instance — the
    // measurement itself is covered by the crate's own tests; this pins the
    // artifact schema that `bench_baselines.json` and the CI solver gate
    // join against.
    let report = SolverReport {
        quick: true,
        metrics: vec![SolverMetric {
            name: "php_7_6".into(),
            verdict: "unsat".into(),
            wall_ms: 3.2,
            stats: SolverStats {
                propagations: 120_000,
                conflicts: 4_000,
                learned: 4_000,
                lbd_sum: 20_000,
                ..SolverStats::default()
            },
        }],
        props_per_sec: 3.75e7,
        conflicts_per_sec: 1.25e6,
    };
    let doc = Json::parse(&report.to_json()).expect("solver report is valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("veriqec_solver_v1")
    );
    assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
    assert!(doc.get("props_per_sec").unwrap().as_f64().unwrap() > 0.0);
    assert!(doc.get("conflicts_per_sec").unwrap().as_f64().unwrap() > 0.0);
    let instances = doc.get("instances").unwrap().as_arr().unwrap();
    assert!(!instances.is_empty());
    for m in instances {
        // The gate's join key plus the fields plotting scripts consume.
        assert!(m.get("name").unwrap().as_str().is_some());
        assert!(m.get("verdict").unwrap().as_str().is_some());
        assert!(m.get("wall_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("propagations").unwrap().as_f64().unwrap() >= 0.0);
        assert!(m.get("conflicts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(m.get("props_per_sec").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("mean_lbd").unwrap().as_f64().unwrap() >= 0.0);
    }
    let mut names: Vec<&str> = instances
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), instances.len());
}
