//! Cross-layer consistency: the symbolic verifier vs the stabilizer-sampling
//! baseline, and detection-based distances vs brute force, across the zoo.

use rand::prelude::*;
use veriqec::sampling::sample_scenario;
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec::tasks::{find_distance, verify_correction};
use veriqec_codes::{
    carbon_12_2_4, five_qubit, gottesman8, reed_muller, rotated_surface, shor9, six_qubit, steane,
    toric, xzzx_surface,
};
use veriqec_decoder::{decode_call_oracle, CssLookupDecoder, LookupDecoder};
use veriqec_gf2::BitVec;
use veriqec_sat::SolverConfig;
use veriqec_vcgen::VcOutcome;

#[test]
fn detection_distance_matches_brute_force() {
    for code in [
        steane(),
        five_qubit(),
        six_qubit(),
        shor9(),
        gottesman8(),
        rotated_surface(3),
        xzzx_surface(3),
        toric(3),
        carbon_12_2_4(),
        reed_muller(4),
    ] {
        let sat_d = find_distance(&code, 6)
            .exact()
            .expect("all zoo codes have d <= 6 here");
        let brute_d = code.brute_force_distance(6).expect("same");
        assert_eq!(sat_d, brute_d, "{}", code.name());
        assert_eq!(Some(sat_d), code.claimed_distance(), "{}", code.name());
    }
}

#[test]
fn verified_scenarios_never_fail_under_sampling() {
    // If the verifier says Verified for budget t, no sampled execution with
    // ≤ t errors may fail.
    for code in [steane(), rotated_surface(3)] {
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let report = verify_correction(&scenario, 1, SolverConfig::default());
        assert!(report.outcome.is_verified());
        let decoder = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(decoder, code.n());
        let mut rng = StdRng::seed_from_u64(42);
        let rep = sample_scenario(&scenario, 1, 300, &oracle, &mut rng);
        assert_eq!(rep.failures, 0, "{}", code.name());
    }
}

#[test]
fn counterexamples_reproduce_under_simulation() {
    // A counterexample from the verifier names an error pattern; replaying
    // it with the exact min-weight lookup decoder must produce a logical
    // error (decoder failure) — i.e. the counterexample is real.
    let code = steane();
    let scenario = memory_scenario(&code, ErrorModel::YErrors);
    let report = verify_correction(&scenario, 2, SolverConfig::default());
    let VcOutcome::CounterExample(model) = report.outcome else {
        panic!("two errors must break distance 3");
    };
    // Extract the error pattern.
    let error_qubits: Vec<usize> = scenario
        .error_vars
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| model.get(v).as_bool().then_some(i))
        .collect();
    assert!(!error_qubits.is_empty() && error_qubits.len() <= 2);
    // Replay: compute the syndrome of the Y-error pattern and decode with
    // the exact joint min-weight decoder.
    let n = code.n();
    let mut err = veriqec_pauli::PauliString::identity(n);
    for &q in &error_qubits {
        err = err.mul(&veriqec_pauli::PauliString::single(n, 'Y', q));
    }
    let syndrome = code.group().syndrome_of(&err);
    let dec = LookupDecoder::for_code(&code, 3);
    let correction = dec.decode(&syndrome).expect("within radius 3");
    let residue = correction.mul(&err);
    // The residue must NOT be a stabilizer for at least one min-weight
    // decoder choice. Our lookup decoder is one such: check and, if this
    // particular table happens to pick the error itself, verify that an
    // alternative min-weight correction exists that fails.
    let residue_is_stabilizer = code.group().decompose(&residue).is_some();
    if residue_is_stabilizer {
        // Find another correction with the same syndrome and weight whose
        // residue is a logical (exhaustive over weight ≤ correction weight).
        let target_syndrome: BitVec = syndrome.clone();
        let w = correction.weight();
        let mut found = false;
        veriqec_codes::enumerate_errors(n, w, &mut |cand| {
            if found {
                return;
            }
            if code.group().syndrome_of(cand) == target_syndrome {
                let r = cand.mul(&err);
                if code.group().decompose(&r).is_none() {
                    found = true;
                }
            }
        });
        assert!(
            found,
            "counterexample must correspond to some min-weight decoder failure"
        );
    }
}

#[test]
fn xzzx_and_surface_agree() {
    // XZZX is locally-Clifford equivalent to the rotated surface code; both
    // verify the same budget and reject the same over-budget.
    for (code, t_ok, t_bad) in [(rotated_surface(3), 1, 2), (xzzx_surface(3), 1, 2)] {
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let ok = verify_correction(&scenario, t_ok, SolverConfig::default());
        assert!(ok.outcome.is_verified(), "{}", code.name());
        let bad = verify_correction(&scenario, t_bad, SolverConfig::default());
        assert!(
            matches!(bad.outcome, VcOutcome::CounterExample(_)),
            "{}",
            code.name()
        );
    }
}
