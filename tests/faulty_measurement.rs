//! End-to-end differential testing of the faulty-measurement pipeline:
//! the symbolic (t_d, t_m) verdict of the VC layer against actual program
//! interpretation with a concrete decoder, plus the shared-semantics pin
//! between the scenario program and the Pauli-frame compilation of the
//! same protocol.

use std::cell::RefCell;

use rand::prelude::*;
use veriqec::engine::FaultToleranceSweep;
use veriqec::sampling::{faulty_memory_frame, prepare_codeword_state, subsets_up_to};
use veriqec::scenario::{faulty_memory_scenario, ErrorModel, Scenario};
use veriqec_cexpr::{CMem, Value};
use veriqec_codes::{c4_422, repetition, steane, ExtractionSchedule};
use veriqec_decoder::space_time_decode_call_oracle;
use veriqec_prog::{run_tableau, DecoderOracle, Stmt};
use veriqec_sat::SolverConfig;
use veriqec_vcgen::VcOutcome;

/// Runs the scenario program on a tableau with the given memory (error and
/// flip indicators already set) and reports whether the final state
/// satisfies every post conjunct.
fn run_recovers<O: DecoderOracle>(scenario: &Scenario, mut mem: CMem, oracle: &O) -> bool {
    let mut rng = StdRng::seed_from_u64(7);
    let mut tab = prepare_codeword_state(scenario, &mem, &mut rng);
    run_tableau(&scenario.program, &mut mem, &mut tab, oracle, &mut || {
        panic!("all syndrome measurements are deterministic")
    });
    scenario.post.conjuncts.iter().all(|c| {
        let single = c.as_single().expect("Pauli-error scenarios");
        tab.is_stabilized_by(&single.eval(&mem))
    })
}

/// The two directions of the differential check at one grid point:
/// `Verified` ⇒ the concrete budget-aware space-time decoder recovers every
/// in-budget configuration; `CounterExample` ⇒ replaying the model's own
/// decoder outputs through the interpreter reproduces the failure.
fn check_grid_point(
    code: &veriqec_codes::StabilizerCode,
    scenario: &Scenario,
    rounds: usize,
    t_data: usize,
    t_meas: usize,
    outcome: &VcOutcome,
) {
    let label = format!(
        "{} rounds={rounds} (t_d={t_data}, t_m={t_meas})",
        code.name()
    );
    match outcome {
        VcOutcome::Verified => {
            let oracle = space_time_decode_call_oracle(code, rounds, t_data, t_meas);
            for data in subsets_up_to(scenario.error_vars.len(), t_data) {
                for meas in subsets_up_to(scenario.meas_error_vars.len(), t_meas) {
                    let mut mem = CMem::new();
                    for &i in &data {
                        mem.set(scenario.error_vars[i], Value::Bool(true));
                    }
                    for &j in &meas {
                        mem.set(scenario.meas_error_vars[j], Value::Bool(true));
                    }
                    assert!(
                        run_recovers(scenario, mem, &oracle),
                        "{label}: verified, but e={data:?}, m={meas:?} fails under the \
                         concrete decoder"
                    );
                }
            }
        }
        VcOutcome::CounterExample(model) => {
            // Force the decoder to the model's outputs and replay.
            let decode_calls: Vec<_> = scenario
                .program
                .flatten()
                .into_iter()
                .filter_map(|s| match s {
                    Stmt::Decode(call) => Some(call.clone()),
                    _ => None,
                })
                .collect();
            let model = model.clone();
            let calls = RefCell::new(decode_calls);
            let replay_mem = model.clone();
            let forced = move |name: &str, _inputs: &[bool]| -> Vec<bool> {
                let calls = calls.borrow();
                let call = calls
                    .iter()
                    .find(|c| c.name == name)
                    .unwrap_or_else(|| panic!("unknown decoder `{name}`"));
                call.outputs
                    .iter()
                    .map(|&v| model.get(v).as_bool())
                    .collect()
            };
            assert!(
                !run_recovers(scenario, replay_mem, &forced),
                "{label}: counterexample does not reproduce under interpretation"
            );
        }
        VcOutcome::Unknown => panic!("{label}: solver returned Unknown"),
    }
}

/// Sweep the full grid for one code and round count, cross-checking every
/// verdict against the interpreter.
fn differential_grid(
    code: &veriqec_codes::StabilizerCode,
    model: ErrorModel,
    rounds: usize,
    max_t_data: usize,
    max_t_meas: usize,
) {
    let scenario = faulty_memory_scenario(code, model, rounds);
    let mut sweep = FaultToleranceSweep::new(&scenario, vec![], SolverConfig::default());
    for t_data in 0..=max_t_data {
        for t_meas in 0..=max_t_meas {
            let outcome = sweep.check(t_data as i64, t_meas as i64);
            check_grid_point(code, &scenario, rounds, t_data, t_meas, &outcome);
        }
    }
    assert_eq!(sweep.encode_count(), 1);
}

#[test]
fn repetition_grid_matches_interpreter() {
    for rounds in 1..=3 {
        differential_grid(&repetition(3), ErrorModel::XErrors, rounds, 1, 1);
    }
}

#[test]
fn c4_detection_code_grid_matches_interpreter() {
    // Distance 2: nothing is correctable with data errors, but the t_d = 0
    // column exercises the pure measurement-noise regime.
    for rounds in 1..=2 {
        differential_grid(&c4_422(), ErrorModel::YErrors, rounds, 1, 1);
    }
}

#[test]
fn steane_grid_matches_interpreter() {
    for rounds in [1, 3] {
        differential_grid(&steane(), ErrorModel::YErrors, rounds, 1, 1);
    }
}

#[test]
fn program_and_frame_share_the_noise_semantics() {
    // The scenario program (interpreted on a tableau) and the frame circuit
    // compiled from the same schedule must hand the decoder identical
    // syndrome histories for identical error configurations.
    let code = steane();
    let rounds = 2;
    let scenario = faulty_memory_scenario(&code, ErrorModel::YErrors, rounds);
    let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
    let frame = faulty_memory_frame(&code, ErrorModel::YErrors, &schedule);
    let (x_idx, z_idx) = code.css_split().expect("CSS");
    let num_checks = code.generators().len();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..25 {
        // Random error configuration (unconstrained by any budget).
        let data: Vec<bool> = (0..scenario.error_vars.len()).map(|_| rng.gen()).collect();
        let meas: Vec<bool> = (0..scenario.meas_error_vars.len())
            .map(|_| rng.gen())
            .collect();
        // Frame side.
        let mut errors = data.clone();
        errors.extend(meas.iter().copied());
        let history = frame.circuit.sample(&errors);
        let pick = |idx: &[usize]| -> Vec<bool> {
            let mut v = Vec::new();
            for r in 0..rounds {
                for &i in idx {
                    v.push(history[r * num_checks + i]);
                }
            }
            v
        };
        // Program side: capture what each decoder call receives.
        let mut mem = CMem::new();
        for (&v, &b) in scenario.error_vars.iter().zip(&data) {
            mem.set(v, Value::Bool(b));
        }
        for (&v, &b) in scenario.meas_error_vars.iter().zip(&meas) {
            mem.set(v, Value::Bool(b));
        }
        let seen: RefCell<Vec<(String, Vec<bool>)>> = RefCell::new(Vec::new());
        let recording = |name: &str, inputs: &[bool]| -> Vec<bool> {
            seen.borrow_mut().push((name.to_string(), inputs.to_vec()));
            // Identity decoder: no corrections, no claimed flips.
            let outputs = if name == "decode_z" {
                code.n() + rounds * x_idx.len()
            } else {
                code.n() + rounds * z_idx.len()
            };
            vec![false; outputs]
        };
        let mut tab = prepare_codeword_state(&scenario, &CMem::new(), &mut rng);
        run_tableau(
            &scenario.program,
            &mut mem,
            &mut tab,
            &recording,
            &mut || panic!("deterministic"),
        );
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 2);
        for (name, inputs) in seen {
            let expected = if name == "decode_z" {
                pick(&x_idx)
            } else {
                pick(&z_idx)
            };
            assert_eq!(inputs, expected, "decoder `{name}` history mismatch");
        }
    }
}
