//! Umbrella crate for the Veri-QEC reproduction workspace: re-exports every
//! layer for the examples and integration tests, plus a [`prelude`] for
//! downstream experimentation.
//!
//! See the workspace `README.md` for the architecture and `DESIGN.md` for
//! the paper-to-crate mapping.

pub use veriqec;
pub use veriqec_cexpr;
pub use veriqec_codes;
pub use veriqec_dd;
pub use veriqec_decoder;
pub use veriqec_gf2;
pub use veriqec_logic;
pub use veriqec_obs;
pub use veriqec_pauli;
pub use veriqec_prog;
pub use veriqec_qsim;
pub use veriqec_sat;
pub use veriqec_serve;
pub use veriqec_smt;
pub use veriqec_vcgen;
pub use veriqec_wp;

/// One-stop imports for interactive use.
pub mod prelude {
    pub use veriqec::engine::{CorrectionSweep, DetectionSession, Engine, EngineConfig, Job};
    pub use veriqec::enumerator::{FailureEnumerator, WeightEnumerator};
    pub use veriqec::scenario::{memory_scenario, ErrorModel, Scenario, ScenarioBuilder};
    pub use veriqec::tasks::{
        find_distance, verify_correction, verify_detection, DetectionOutcome, DistanceOutcome,
    };
    pub use veriqec_codes::{rotated_surface, steane, StabilizerCode};
    pub use veriqec_logic::{entails, Assertion, QecAssertion};
    pub use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};
    pub use veriqec_prog::{parse_program, Program, Stmt};
    pub use veriqec_sat::SolverConfig;
    pub use veriqec_vcgen::VcOutcome;
    pub use veriqec_wp::{qec_wp, wp_loopfree};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let code = steane();
        assert_eq!(code.n(), 7);
    }
}
