//! Regenerates the paper's evaluation tables/figure data as markdown (plus
//! machine-readable JSON batch reports from the engine).
//!
//! Usage: `cargo run -p veriqec_bench --bin tables --release -- [fig4|fig6|fig7|table3|table4|stim|enumerators|fault_tolerance|kernels|solver|dd|quick|all] [max_d] [--trace out.json] [--progress]`
//!
//! `quick` is the CI smoke mode: a small heterogeneous batch (correction +
//! detection + distance jobs on small codes) through the engine's shared
//! worker pool, with outcome assertions. `enumerators` runs the
//! decision-diagram counting backend over the code zoo (add `--quick` for
//! the CI subset) and writes the machine-readable `BENCH_enumerators.json`
//! artifact next to the working directory. `fault_tolerance` sweeps the
//! (t_d, t_m) correctable frontier of multi-round faulty-measurement
//! extraction (add `--quick` for the CI subset), asserts the textbook
//! repeated-measurement result symbolically *and* by exhaustive
//! frame-sampling, and writes `BENCH_fault_tolerance.json`.
//!
//! `kernels` measures the hot GF(2) kernels (widened XOR chains, branch
//! resolution, batch-vs-sequential frame sampling) and writes
//! `BENCH_kernels.json`. `solver` measures CDCL throughput
//! (propagations/sec, conflicts/sec) on pinned pure-SAT and zoo instances
//! and writes `BENCH_solver.json`. `dd` measures decision-diagram
//! compile-and-count sessions on pinned codes (coefficients re-asserted)
//! and writes `BENCH_dd.json`. All three take `--quick` for the CI subset
//! and `--check <baseline.json>` to gate against a checked-in baseline —
//! the process exits nonzero if any median regresses beyond the tolerance
//! or a throughput floor is violated.
//!
//! The smoke modes (`quick`, `enumerators --quick`, `fault_tolerance
//! --quick`, `kernels --check`) exit nonzero on any inconclusive or
//! cancelled job so CI fails on partial batches, after the artifacts are
//! written; each incomplete job is listed with its budget-trip reason
//! (`conflict_budget`, `node_limit(…)`, `interrupted`, `cancelled`).
//!
//! Two flags compose with every mode: `--trace <out.json>` records spans,
//! milestones, and counters from all instrumented crates and writes a
//! Chrome trace-event file (load it at <https://ui.perfetto.dev>), after
//! validating it in-process against the schema checker the tests use; and
//! `--progress` prints a heartbeat line to stderr every two seconds
//! (elapsed, phase, jobs done/total, conflicts, DD nodes, ETA).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::prelude::*;
use veriqec::engine::{CorrectionSweep, DetectionSession, Engine, EngineConfig, Job, JobOutcome};
use veriqec::parallel::SplitConfig;
use veriqec::sampling::{log2_constrained_configurations, sample_scenario};
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec::tasks::{
    build_problem, discreteness_constraint, locality_constraint, verify_constrained,
    verify_correction, verify_detection, DetectionOutcome, DistanceOutcome,
};
use veriqec_bench::{locality_set, surface_problem, surface_workload};
use veriqec_codes::{
    c4_422, carbon_12_2_4, cube_color_822, five_qubit, gottesman8, hgp_hamming,
    pair_detection_code, reed_muller, rotated_surface, shor9, six_qubit, steane, toric,
    xzzx_surface,
};
use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};
use veriqec_sat::SolverConfig;
use veriqec_vcgen::VcOutcome;

/// Where `--trace` writes the Chrome trace artifact, once parsed.
static TRACE_PATH: OnceLock<String> = OnceLock::new();
/// The collector accumulating drained events while tracing is on.
static COLLECTOR: Mutex<Option<veriqec_obs::Collector>> = Mutex::new(None);
/// Guards [`finalize_trace`] against running twice (it is called both at
/// the end of `main` and before `exit(1)` in the smoke gates).
static TRACE_DONE: AtomicBool = AtomicBool::new(false);
/// Categories the finished trace must contain, or the process exits
/// nonzero. Smoke modes that exercise the full vertical set this so CI
/// catches instrumentation that silently stopped emitting.
static REQUIRED_CATS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// The operand of a value-taking flag (`--check <path>`, `--trace <path>`,
/// …): `None` when the flag is absent, the operand otherwise. A missing or
/// flag-shaped operand is a usage error and exits 2 — silently consuming
/// the next flag as a value (`tables kernels --check --trace out.json`
/// reading `--trace` as the baseline path) is exactly the bug this
/// replaces.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        Some(v) => {
            eprintln!("error: {flag} needs a value, but the next argument is the flag {v:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        }
    }
}

/// Parses `--trace <path>` and `--progress` and arms the corresponding
/// veriqec_obs machinery before any mode runs.
fn init_observability() {
    if let Some(path) = flag_value("--trace") {
        let _ = TRACE_PATH.set(path);
        *COLLECTOR.lock().unwrap() = Some(veriqec_obs::Collector::new());
        veriqec_obs::set_enabled(true);
    }
    if std::env::args().any(|a| a == "--progress") {
        veriqec_obs::heartbeat::set_progress(true);
    }
}

/// Drains everything flushed so far and returns the per-phase span
/// summary; empty when tracing is off. The drained events stay in the
/// global collector for the final serialization.
fn phase_summary_now() -> Vec<veriqec_obs::PhaseSummary> {
    let mut guard = COLLECTOR.lock().unwrap();
    match guard.as_mut() {
        Some(c) => {
            c.drain();
            c.phase_summary()
        }
        None => Vec::new(),
    }
}

/// Serializes, validates, and writes the trace artifact. Idempotent: the
/// smoke gates call this before `exit(1)` so a failed batch still uploads
/// its trace, and `main` calls it on the normal path. Exits nonzero itself
/// if the generated trace violates the Chrome trace-event schema or lacks
/// a required category.
fn finalize_trace() {
    if TRACE_DONE.swap(true, Ordering::SeqCst) {
        return;
    }
    let Some(path) = TRACE_PATH.get() else {
        return;
    };
    veriqec_obs::set_enabled(false);
    let Some(mut collector) = COLLECTOR.lock().unwrap().take() else {
        return;
    };
    collector.drain();
    let json = collector.to_chrome_trace();
    let summary = match veriqec_bench::trace::validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: generated trace failed schema validation: {e}");
            std::process::exit(1);
        }
    };
    let required = REQUIRED_CATS.lock().unwrap().clone();
    let missing: Vec<&str> = required
        .iter()
        .filter(|c| !summary.categories.iter().any(|have| have == *c))
        .copied()
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "error: trace missing required categories {missing:?} (got {:?})",
            summary.categories
        );
        std::process::exit(1);
    }
    std::fs::write(path, &json).expect("trace writable");
    println!(
        "trace written to {path}: {} events on {} thread(s), categories {:?}",
        summary.events, summary.tids, summary.categories
    );
}

fn main() {
    init_observability();
    // Lives across the whole dispatch; drop stops and joins the thread.
    let _heartbeat = veriqec_obs::heartbeat::progress_enabled()
        .then(|| veriqec_obs::heartbeat::Heartbeat::start(Duration::from_secs(2)));
    dispatch();
    finalize_trace();
}

fn dispatch() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let max_d: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    if what == "quick" {
        quick();
        return;
    }
    if what == "enumerators" {
        enumerators(std::env::args().any(|a| a == "--quick"));
        return;
    }
    if what == "fault_tolerance" {
        fault_tolerance(std::env::args().any(|a| a == "--quick"));
        return;
    }
    if what == "kernels" {
        let quick = std::env::args().any(|a| a == "--quick");
        let baseline = flag_value("--check");
        kernels(quick, baseline.as_deref());
        return;
    }
    if what == "solver" {
        let quick = std::env::args().any(|a| a == "--quick");
        let baseline = flag_value("--check");
        solver(quick, baseline.as_deref());
        return;
    }
    if what == "dd" {
        let quick = std::env::args().any(|a| a == "--quick");
        let baseline = flag_value("--check");
        dd(quick, baseline.as_deref());
        return;
    }
    if what == "serve" {
        serve(
            std::env::args().any(|a| a == "--smoke"),
            flag_value("--addr"),
        );
        return;
    }
    if what == "all" || what == "fig4" {
        fig4(max_d);
    }
    if what == "all" || what == "fig6" {
        fig6(max_d);
    }
    if what == "all" || what == "fig7" {
        fig7(max_d);
    }
    if what == "all" || what == "table3" {
        table3();
    }
    if what == "all" || what == "table4" {
        table4();
    }
    if what == "all" || what == "stim" {
        stim(max_d);
    }
    if what == "all" {
        enumerators(false);
        fault_tolerance(false);
    }
}

/// CI gate shared by the smoke modes: a batch with any inconclusive or
/// cancelled job must fail the build, but only after the artifacts are
/// written (a partial report is still worth uploading for the post-mortem).
/// Each listed job carries its budget-trip reason — `conflict_budget` vs
/// `node_limit(…)` vs `interrupted` vs `cancelled` — so the failure mode
/// is visible from the CI log alone.
fn gate_complete(batch: &veriqec::engine::BatchReport) {
    let incomplete = batch.incomplete_jobs_with_reasons();
    if !incomplete.is_empty() {
        eprintln!(
            "error: {} job(s) did not run to completion:",
            incomplete.len()
        );
        for (name, reason) in incomplete {
            eprintln!("  - {name} ({})", reason.unwrap_or("no reason recorded"));
        }
        // A partial trace is exactly the artifact worth keeping here.
        finalize_trace();
        std::process::exit(1);
    }
}

/// `tables kernels [--quick] [--check <baseline.json>]`: measures the hot
/// kernels, writes `BENCH_kernels.json`, and — with `--check` — gates the
/// fresh medians against the checked-in baseline, exiting nonzero on any
/// hard regression.
fn kernels(quick: bool, baseline: Option<&str>) {
    use veriqec_bench::json::Json;
    use veriqec_bench::kernels::{check_against_baseline, run_kernels};

    println!(
        "\n### GF(2) kernel microbenchmarks{}\n",
        if quick { " (quick)" } else { "" }
    );
    let report = run_kernels(quick);
    println!("| metric | median ns/op | samples |");
    println!("|--------|--------------|---------|");
    for m in &report.metrics {
        println!("| {} | {:.1} | {} |", m.name, m.median_ns, m.samples);
    }
    println!(
        "\nbatch frame sampling speedup at surface d=5: {:.0}x",
        report.frame_batch_speedup
    );
    let artifact = "BENCH_kernels.json";
    std::fs::write(artifact, report.to_json()).expect("artifact writable");
    println!("kernel report written to {artifact}");
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        let regressions = check_against_baseline(&report, &doc);
        if !regressions.is_empty() {
            eprintln!(
                "error: {} kernel regression(s) against {path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  - {}", r.0);
            }
            std::process::exit(1);
        }
        println!("all kernels within tolerance of {path}");
    }
}

/// `tables solver [--quick] [--check <baseline.json>]`: measures CDCL
/// throughput on the pinned instances, writes `BENCH_solver.json`, and —
/// with `--check` — gates the fresh medians against the checked-in
/// baseline's `solver_metrics` section, exiting nonzero on any hard
/// regression or a propagation-throughput floor violation.
fn solver(quick: bool, baseline: Option<&str>) {
    use veriqec_bench::json::Json;
    use veriqec_bench::solver_bench::{check_solver_baseline, run_solver_bench};

    println!(
        "\n### CDCL solver throughput{}\n",
        if quick { " (quick)" } else { "" }
    );
    let report = run_solver_bench(quick);
    println!("| instance | verdict | wall ms | propagations | conflicts | props/s | mean LBD |");
    println!("|----------|---------|---------|--------------|-----------|---------|----------|");
    for m in &report.metrics {
        println!(
            "| {} | {} | {:.2} | {} | {} | {:.2e} | {:.2} |",
            m.name,
            m.verdict,
            m.wall_ms,
            m.stats.propagations,
            m.stats.conflicts,
            m.props_per_sec(),
            m.stats.mean_learnt_lbd(),
        );
    }
    println!(
        "\naggregate: {:.2e} propagations/s, {:.2e} conflicts/s",
        report.props_per_sec, report.conflicts_per_sec
    );
    let artifact = "BENCH_solver.json";
    std::fs::write(artifact, report.to_json()).expect("artifact writable");
    println!("solver report written to {artifact}");
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        let regressions = check_solver_baseline(&report, &doc);
        if !regressions.is_empty() {
            eprintln!(
                "error: {} solver regression(s) against {path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  - {}", r.0);
            }
            std::process::exit(1);
        }
        println!("all solver instances within tolerance of {path}");
    }
}

/// `tables dd [--quick] [--check <baseline.json>]`: measures full
/// compile-and-count sessions of the decision-diagram backend on the
/// pinned codes (coefficients re-asserted every run, carbon \[\[12,2,4\]\]
/// bit-for-bit), writes `BENCH_dd.json`, and — with `--check` — gates wall
/// time and peak live nodes against the checked-in baseline's `dd_metrics`
/// section, exiting nonzero on any hard regression.
fn dd(quick: bool, baseline: Option<&str>) {
    use veriqec_bench::dd_bench::{check_dd_baseline, run_dd_bench};
    use veriqec_bench::json::Json;

    println!(
        "\n### Decision-diagram compile benchmarks{}\n",
        if quick { " (quick)" } else { "" }
    );
    let report = run_dd_bench(quick);
    println!("| code | wall ms | allocs | peak live | final | hit rate | gc runs | swaps |");
    println!("|------|---------|--------|-----------|-------|----------|---------|-------|");
    for m in &report.metrics {
        println!(
            "| {} | {:.2} | {} | {} | {} | {:.2} | {} | {} |",
            m.name,
            m.wall_ms,
            m.stats.nodes,
            m.stats.peak_nodes,
            m.final_nodes,
            m.stats.cache_hit_rate(),
            m.stats.gc_runs,
            m.stats.reorder_swaps,
        );
    }
    let artifact = "BENCH_dd.json";
    std::fs::write(artifact, report.to_json()).expect("artifact writable");
    println!("\ndd report written to {artifact}");
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        let regressions = check_dd_baseline(&report, &doc);
        if !regressions.is_empty() {
            eprintln!(
                "error: {} dd regression(s) against {path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  - {}", r.0);
            }
            std::process::exit(1);
        }
        println!("all dd codes within tolerance of {path}");
    }
}

/// The faulty-measurement workload: for each (code, rounds) pair one
/// engine `FaultTolerance` job sweeps the full (t_d, t_m) grid on a single
/// persistent session; the textbook repeated-measurement result — a
/// distance-3 code with t_m ≥ 1 needs r > 1; r = 3 suffices — is asserted
/// from the symbolic frontier *and* re-validated by exhaustively running
/// every in-budget configuration through the Pauli-frame sampler with the
/// budget-aware space-time decoder. Emits `BENCH_fault_tolerance.json`.
fn fault_tolerance(quick: bool) {
    use veriqec::sampling::exhaustive_frame_check;
    use veriqec::scenario::faulty_memory_scenario;
    use veriqec_codes::repetition;

    println!("\n### Fault tolerance — multi-round syndrome extraction with measurement errors\n");
    let mut workload: Vec<(veriqec_codes::StabilizerCode, ErrorModel, usize)> = vec![
        (repetition(3), ErrorModel::XErrors, 1),
        (repetition(3), ErrorModel::XErrors, 3),
        (rotated_surface(3), ErrorModel::YErrors, 1),
        (rotated_surface(3), ErrorModel::YErrors, 3),
    ];
    if !quick {
        workload.extend([
            (repetition(3), ErrorModel::XErrors, 2),
            (steane(), ErrorModel::YErrors, 1),
            (steane(), ErrorModel::YErrors, 2),
            (steane(), ErrorModel::YErrors, 3),
            (rotated_surface(3), ErrorModel::YErrors, 2),
        ]);
    }
    let scenarios: Vec<_> = workload
        .iter()
        .map(|(code, model, rounds)| faulty_memory_scenario(code, *model, *rounds))
        .collect();
    let jobs: Vec<Job> = workload
        .iter()
        .zip(&scenarios)
        .map(|((code, _, rounds), scenario)| {
            Job::fault_tolerance(format!("{}_r{rounds}", code.name()), scenario, 1, 1)
        })
        .collect();
    let engine = Engine::new(EngineConfig::default());
    let mut batch = engine.run(jobs);
    batch.attach_phase_summary(phase_summary_now());
    println!("| code | rounds | (0,0) | (0,1) | (1,0) | (1,1) | busy |");
    println!("|------|--------|-------|-------|-------|-------|------|");
    let fmt_point = |v: Option<bool>| match v {
        Some(true) => "yes",
        Some(false) => "no",
        None => "?",
    };
    for ((code, _, rounds), job) in workload.iter().zip(&batch.jobs) {
        let JobOutcome::Frontier(f) = &job.outcome else {
            panic!(
                "{}: fault-tolerance job failed: {:?}",
                job.name, job.outcome
            );
        };
        println!(
            "| {} | {rounds} | {} | {} | {} | {} | {:?} |",
            code.name(),
            fmt_point(f.correctable(0, 0)),
            fmt_point(f.correctable(0, 1)),
            fmt_point(f.correctable(1, 0)),
            fmt_point(f.correctable(1, 1)),
            job.busy_time,
        );
        // The textbook frontier: degenerate budgets always verify; the full
        // (1,1) point needs repeated extraction (r ≥ 2·t_m + 1).
        assert_eq!(f.correctable(0, 0), Some(true), "{}", job.name);
        assert_eq!(f.correctable(0, 1), Some(true), "{}", job.name);
        assert_eq!(f.correctable(1, 0), Some(true), "{}", job.name);
        let expect_full = *rounds >= 3;
        assert_eq!(
            f.correctable(1, 1),
            Some(expect_full),
            "{}: (1,1) with r={rounds}",
            job.name
        );
    }
    // Frame-sampling cross-validation of the headline claim: single-round
    // surface-3 has a concrete in-budget (1,1) failure; three rounds
    // recover every configuration exhaustively.
    let surface = rotated_surface(3);
    let failure = exhaustive_frame_check(&surface, ErrorModel::YErrors, 1, 1, 1);
    assert!(
        failure.is_some(),
        "frame sampling must find a single-round (1,1) failure"
    );
    let (data, meas) = failure.expect("checked");
    println!(
        "\nframe sampling confirms: surface-3 r=1 fails at (1,1) \
         (data sites {data:?}, measurement sites {meas:?});"
    );
    assert!(
        exhaustive_frame_check(&surface, ErrorModel::YErrors, 3, 1, 1).is_none(),
        "frame sampling must confirm r=3 recovers every (1,1) configuration"
    );
    println!("frame sampling confirms: surface-3 r=3 recovers every (1,1) configuration.");
    let artifact = "BENCH_fault_tolerance.json";
    std::fs::write(artifact, batch.to_json()).expect("artifact writable");
    println!(
        "\n{} jobs on {} workers in {:?}; batch report written to {artifact}",
        batch.jobs.len(),
        batch.workers,
        batch.wall_time
    );
    gate_complete(&batch);
}

/// Failure weight enumerators for the code zoo through the engine's
/// counting jobs (`veriqec::engine::JobKind::Count`): exact
/// coefficients per weight, cross-checked against the claimed distance and
/// the group-theoretic failure total `2^{n+k} − 2^{n−k}`. Emits the
/// machine-readable `BENCH_enumerators.json` batch report.
fn enumerators(quick: bool) {
    println!("\n### Failure weight enumerators (decision-diagram backend)\n");
    let mut codes = vec![
        c4_422(),
        five_qubit(),
        six_qubit(),
        steane(),
        shor9(),
        rotated_surface(3),
    ];
    if !quick {
        codes.extend([
            gottesman8(),
            cube_color_822(),
            xzzx_surface(3),
            toric(3),
            carbon_12_2_4(),
            rotated_surface(5),
            xzzx_surface(5),
        ]);
    }
    let jobs: Vec<Job> = codes
        .iter()
        .map(|code| Job::count(code.name().to_string(), code.clone()))
        .collect();
    // This mode exercises the full vertical — engine scheduling, smt
    // formula assembly and CNF export, sat clause export, dd compiles — so
    // a trace lacking any of those categories means instrumentation went
    // dark.
    *REQUIRED_CATS.lock().unwrap() = vec!["engine", "smt", "sat", "dd"];
    let engine = Engine::new(EngineConfig::default());
    let mut batch = engine.run(jobs);
    batch.attach_phase_summary(phase_summary_now());
    println!("| code | [[n,k,d]] | min weight | A_d | total failures | busy | dd nodes |");
    println!("|------|-----------|------------|-----|----------------|------|----------|");
    for (code, job) in codes.iter().zip(&batch.jobs) {
        let JobOutcome::Enumerator(e) = &job.outcome else {
            panic!("{}: counting job failed: {:?}", job.name, job.outcome);
        };
        let d = e.min_weight.expect("every code has failures");
        assert_eq!(
            Some(d),
            code.claimed_distance(),
            "{}: enumerator distance disagrees with the claimed distance",
            code.name()
        );
        let (n, k) = (code.n() as u32, code.k() as u32);
        assert_eq!(
            e.total(),
            (1u128 << (n + k)) - (1u128 << (n - k)),
            "{}: total failures disagree with group counting",
            code.name()
        );
        println!(
            "| {} | [[{},{},{}]] | {} | {} | {} | {:?} | {} |",
            code.name(),
            code.n(),
            code.k(),
            d,
            d,
            e.coefficients[d],
            e.total(),
            job.busy_time,
            job.dd.nodes,
        );
    }
    let artifact = "BENCH_enumerators.json";
    std::fs::write(artifact, batch.to_json()).expect("artifact writable");
    println!(
        "\n{} codes on {} workers in {:?}; batch report written to {artifact}",
        batch.jobs.len(),
        batch.workers,
        batch.wall_time
    );
    gate_complete(&batch);
}

fn fig4(max_d: usize) {
    println!("\n### Fig. 4 — general verification of the rotated surface code\n");
    println!(
        "| d | qubits | sequential | engine busy | subtasks | conflicts | decisions | propagations |"
    );
    println!(
        "|---|--------|-----------|-------------|----------|-----------|-----------|--------------|"
    );
    // Sequential baseline per distance, then the whole family as one engine
    // batch on a shared worker pool.
    let ds: Vec<usize> = (3..=max_d).step_by(2).collect();
    let mut seq_times = Vec::new();
    let mut jobs = Vec::new();
    for &d in &ds {
        let (scenario, problem) = surface_problem(d);
        let t0 = Instant::now();
        let (seq, _) = problem.check();
        assert!(seq.is_verified());
        seq_times.push(t0.elapsed());
        jobs.push(Job::correction(
            format!("surface_d{d}"),
            problem,
            scenario.error_vars,
            SplitConfig {
                heuristic_distance: d,
                et_threshold: 2 * d + 4,
            },
        ));
    }
    let engine = Engine::new(EngineConfig::default());
    let batch = engine.run(jobs);
    for ((d, seq_t), job) in ds.iter().zip(&seq_times).zip(&batch.jobs) {
        assert!(job.outcome.is_verified());
        println!(
            "| {d} | {} | {seq_t:?} | {:?} | {} | {} | {} | {} |",
            d * d,
            job.busy_time,
            job.subtasks,
            job.stats.conflicts,
            job.stats.decisions,
            job.stats.propagations,
        );
    }
    println!(
        "\nbatch: {} jobs on {} workers in {:?}\n",
        batch.jobs.len(),
        batch.workers,
        batch.wall_time
    );
    println!("```json\n{}\n```", batch.to_json());
}

fn fig6(max_d: usize) {
    println!("\n### Fig. 6 — precise detection on the rotated surface code\n");
    println!("| d | d_t = d (unsat) | d_t = d+1 (sat, finds logical) | encodings |");
    println!("|---|----------------|-------------------------------|-----------|");
    for d in (3..=max_d).step_by(2) {
        // One incremental session per code: both thresholds are assumption
        // queries on a single base encoding.
        let code = rotated_surface(d);
        let t0 = Instant::now();
        let mut session = DetectionSession::new(&code, SolverConfig::default());
        let a = session.check(d);
        let ta = t0.elapsed();
        let t0 = Instant::now();
        let b = session.check(d + 1);
        let tb = t0.elapsed();
        assert_eq!(a, DetectionOutcome::AllDetected);
        assert!(matches!(b, DetectionOutcome::UndetectedLogical { .. }));
        println!("| {d} | {ta:?} | {tb:?} | {} |", session.encode_count());
    }
}

/// `tables serve`: the resident verification daemon, or its scripted CI
/// smoke with `--smoke`. The smoke forks the server in-process and drives
/// cache-cold/cache-hot/warm-session/malformed/deadline-exceeded requests
/// over a real socket (see `veriqec_serve::smoke`); daemon mode binds
/// `--addr` (default `127.0.0.1:7199`) and drains on SIGTERM or a
/// `{"op":"shutdown"}` request.
fn serve(smoke: bool, addr: Option<String>) {
    use veriqec_serve::server::{ServeConfig, Server};
    if smoke {
        // The smoke drives the whole vertical: serve request handling,
        // engine scheduling (count requests), smt/sat sessions
        // (detection/distance/fault-tolerance), and dd compiles.
        *REQUIRED_CATS.lock().unwrap() = vec!["serve", "engine", "smt", "sat", "dd"];
        if let Err(msg) = veriqec_serve::smoke::run_smoke() {
            eprintln!("error: serve smoke failed: {msg}");
            finalize_trace();
            std::process::exit(1);
        }
        println!("\nserve smoke passed");
        return;
    }
    let config = ServeConfig {
        addr: addr.unwrap_or_else(|| "127.0.0.1:7199".into()),
        install_sigterm: true,
        ..ServeConfig::default()
    };
    let handle = Server::start(config).expect("bind listener");
    println!(
        "veriqec_serve listening on {} (newline-delimited JSON; \
         {{\"op\":\"shutdown\"}} or SIGTERM drains)",
        handle.addr()
    );
    if let Err(e) = handle.join() {
        eprintln!("error: serve drain: {e}");
        finalize_trace();
        std::process::exit(1);
    }
}

fn quick() {
    println!("\n### Quick smoke batch (CI) — heterogeneous jobs on the engine pool\n");
    let steane_scenario = memory_scenario(&steane(), ErrorModel::YErrors);
    let surface_scenario = memory_scenario(&rotated_surface(3), ErrorModel::YErrors);
    let jobs = vec![
        Job::correction(
            "steane_t1",
            build_problem(&steane_scenario, 1, vec![]),
            steane_scenario.error_vars.clone(),
            SplitConfig::default(),
        ),
        Job::correction(
            "surface3_t1",
            build_problem(&surface_scenario, 1, vec![]),
            surface_scenario.error_vars.clone(),
            SplitConfig::default(),
        ),
        Job::detection("five_qubit_dt3", five_qubit(), 3),
        Job::distance("steane_distance", steane(), 4),
    ];
    let engine = Engine::new(EngineConfig::default());
    let mut batch = engine.run(jobs);
    batch.attach_phase_summary(phase_summary_now());
    print!("{}", batch.to_markdown());
    println!("\n```json\n{}\n```", batch.to_json());
    assert!(batch.jobs[0].outcome.is_verified(), "steane t=1");
    assert!(batch.jobs[1].outcome.is_verified(), "surface3 t=1");
    assert!(matches!(
        batch.jobs[2].outcome,
        JobOutcome::Detection(DetectionOutcome::AllDetected)
    ));
    assert!(matches!(
        batch.jobs[3].outcome,
        JobOutcome::Distance(DistanceOutcome::Exact(3))
    ));
    // The incremental weight sweep rides along so CI exercises the
    // assumption-driven path too.
    let mut sweep = CorrectionSweep::new(&steane_scenario, vec![], SolverConfig::default());
    assert!(sweep.check_weight(1).is_verified());
    assert!(matches!(
        sweep.check_weight(2),
        VcOutcome::CounterExample(_)
    ));
    println!(
        "\nsteane weight sweep: {} base encoding(s), {} queries",
        sweep.encode_count(),
        sweep.query_count()
    );
    gate_complete(&batch);
}

fn fig7(max_d: usize) {
    println!("\n### Fig. 7 — verification with user-provided error constraints\n");
    println!("| d | general | locality | discreteness | both |");
    println!("|---|---------|----------|--------------|------|");
    for d in (3..=max_d).step_by(2) {
        let (_, scenario) = surface_workload(d);
        let t = (d as i64 - 1) / 2;
        let t0 = Instant::now();
        let g = verify_correction(&scenario, t, SolverConfig::default());
        let tg = t0.elapsed();
        let loc = locality_constraint(&scenario, &locality_set(d));
        let disc = discreteness_constraint(&scenario, d);
        let mut both = loc.clone();
        both.extend(disc.clone());
        let r1 = verify_constrained(&scenario, t, loc, SolverConfig::default());
        let r2 = verify_constrained(&scenario, t, disc, SolverConfig::default());
        let r3 = verify_constrained(&scenario, t, both, SolverConfig::default());
        assert!(
            g.outcome.is_verified()
                && r1.outcome.is_verified()
                && r2.outcome.is_verified()
                && r3.outcome.is_verified()
        );
        println!(
            "| {d} | {tg:?} | {:?} | {:?} | {:?} |",
            r1.wall_time, r2.wall_time, r3.wall_time
        );
    }
}

fn table3() {
    println!("\n### Table 3 — benchmark of verified stabilizer codes\n");
    println!("| code | [[n,k,d]] | task | time |");
    println!("|------|-----------|------|------|");
    let codes = vec![
        steane(),
        rotated_surface(3),
        rotated_surface(5),
        rotated_surface(7),
        six_qubit(),
        five_qubit(),
        shor9(),
        reed_muller(4),
        reed_muller(5),
        xzzx_surface(3),
        xzzx_surface(5),
        gottesman8(),
        toric(3),
        toric(4),
        hgp_hamming(),
        carbon_12_2_4(),
    ];
    for code in codes {
        let d = code.claimed_distance().expect("known");
        let t = (d as i64 - 1) / 2;
        if t >= 1 {
            let scenario = memory_scenario(&code, ErrorModel::YErrors);
            let r = verify_correction(&scenario, t, SolverConfig::default());
            assert!(r.outcome.is_verified(), "{}", code.name());
            println!(
                "| {} | [[{},{},{}]] | correction | {:?} |",
                code.name(),
                code.n(),
                code.k(),
                d,
                r.wall_time
            );
        }
    }
    for code in [
        cube_color_822(),
        pair_detection_code(7, 5, 5),
        pair_detection_code(10, 4, 4),
    ] {
        let t0 = Instant::now();
        let out = verify_detection(&code, 2, SolverConfig::default());
        assert_eq!(out, DetectionOutcome::AllDetected);
        println!(
            "| {} | [[{},{},2]] | detection | {:?} |",
            code.name(),
            code.n(),
            code.k(),
            t0.elapsed()
        );
    }
}

fn table4() {
    println!("\n### Table 4 — scenario/functionality matrix (this reproduction)\n");
    println!("| scenario | supported | regenerated by |");
    println!("|----------|-----------|----------------|");
    for (name, target) in [
        (
            "error-free logical ops (L̄)",
            "scenario::ScenarioBuilder::logical_*",
        ),
        ("logical-free (E M C)", "scenario::memory_scenario"),
        (
            "error in correction (L̄ M C_E)",
            "scenario::correction_fault_scenario",
        ),
        ("one cycle (E L̄ E M C)", "scenario::logical_h_scenario"),
        ("multi cycle", "scenario::multi_cycle_scenario"),
        ("general verification (C)", "tasks::verify_correction"),
        ("bug reporting (R)", "VcOutcome::CounterExample"),
        ("fixed errors (F)", "tasks::verify_nonpauli_memory"),
        (
            "faulty measurement (E M_r C, r rounds)",
            "scenario::faulty_memory_scenario + tasks::verify_fault_tolerance",
        ),
    ] {
        println!("| {name} | yes | `{target}` |");
    }
}

fn stim(max_d: usize) {
    println!("\n### §7.2 — verification vs sampling (Stim-style baseline)\n");
    println!("| d | samples/s (tableau) | complete verification | log2(required samples, discreteness) |");
    println!("|---|---------------------|----------------------|----------------------------------------|");
    for d in (3..=max_d.min(5)).step_by(2) {
        let code = rotated_surface(d);
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = CssLookupDecoder::for_code(&code, (d - 1) / 2);
        let oracle = decode_call_oracle(decoder, code.n());
        let mut rng = StdRng::seed_from_u64(3);
        let rep = sample_scenario(&scenario, (d - 1) / 2, 300, &oracle, &mut rng);
        assert_eq!(rep.failures, 0);
        let rate = rep.samples as f64 / rep.seconds;
        let (_, problem) = surface_problem(d);
        let t0 = Instant::now();
        let (outcome, _) = problem.check();
        assert!(outcome.is_verified());
        let vt = t0.elapsed();
        println!(
            "| {d} | {rate:.0} | {vt:?} | {:.1} bits |",
            log2_constrained_configurations(d * d / d, d)
        );
    }
    println!(
        "\nPaper's d = 19 story: discreteness constraint leaves ~2^{:.1} configurations — \
         beyond any sampling budget, while partial verification handles it symbolically.",
        log2_constrained_configurations(18, 18)
    );
}
