//! CDCL solver throughput benchmarks behind the `tables solver` CI gate.
//!
//! `tables solver [--quick]` runs a pinned set of instances — pigeonhole and
//! seeded random 3-SAT at the pure-SAT layer, plus zoo workloads (a distance
//! sweep and incremental correction sweeps) through the same sessions the
//! engine uses — and writes per-instance wall time and throughput
//! (propagations/sec, conflicts/sec) to `BENCH_solver.json`. With
//! `--check <baseline.json>` the fresh medians are gated against the
//! checked-in `bench_baselines.json` (`solver_metrics` section) with the
//! same generous tolerance as the kernel gate ([`crate::kernels::TOLERANCE`],
//! 3×), so only hard regressions — a lost fast path in `propagate`, an
//! accidentally quadratic clause-database walk — fail the build. The
//! aggregate propagation throughput must additionally stay above
//! [`MIN_PROPS_PER_SEC`], the release-build floor the clause-arena rewrite
//! cleared with wide headroom.

use std::time::Instant;

use veriqec::engine::{CorrectionSweep, DetectionSession};
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec::tasks::DistanceOutcome;
use veriqec_codes::{rotated_surface, steane, toric};
use veriqec_sat::{Lit, SatResult, Solver, SolverConfig, SolverStats, Var};
use veriqec_vcgen::VcOutcome;

use crate::json::Json;
use crate::kernels::{Regression, TOLERANCE};

/// Release-build floor on the aggregate propagation throughput across the
/// pinned instances. Deliberately far below a healthy dev-container run
/// (tens of millions of propagations per second) — like the kernel gate,
/// this catches hard regressions, not runner noise.
pub const MIN_PROPS_PER_SEC: f64 = 1.0e6;

/// One measured instance.
#[derive(Clone, Debug)]
pub struct SolverMetric {
    /// Stable instance name — the join key against `bench_baselines.json`.
    pub name: String,
    /// The pinned verdict, re-asserted on every run.
    pub verdict: String,
    /// Median wall time of a full fresh-solver run, milliseconds.
    pub wall_ms: f64,
    /// Solver statistics of the median run.
    pub stats: SolverStats,
}

impl SolverMetric {
    /// Propagations per second on the median run.
    pub fn props_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.stats.propagations as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// The full solver report (serialized to `BENCH_solver.json`).
#[derive(Clone, Debug)]
pub struct SolverReport {
    /// True for the CI `--quick` run (fewer runs, small instances only).
    pub quick: bool,
    /// Measured instances.
    pub metrics: Vec<SolverMetric>,
    /// Total propagations ÷ total seconds across the median runs.
    pub props_per_sec: f64,
    /// Total conflicts ÷ total seconds across the median runs.
    pub conflicts_per_sec: f64,
}

impl SolverReport {
    /// Instance lookup by name.
    pub fn metric(&self, name: &str) -> Option<&SolverMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the report (stable field names; no external
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":\"veriqec_solver_v1\",\"quick\":{},\"props_per_sec\":{:.0},\"conflicts_per_sec\":{:.0},\"instances\":[",
            self.quick, self.props_per_sec, self.conflicts_per_sec
        ));
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"verdict\":\"{}\",\"wall_ms\":{:.3},\"propagations\":{},\"conflicts\":{},\"props_per_sec\":{:.0},\"mean_lbd\":{:.2}}}",
                m.name,
                m.verdict,
                m.wall_ms,
                m.stats.propagations,
                m.stats.conflicts,
                m.props_per_sec(),
                m.stats.mean_learnt_lbd(),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Deterministic xorshift so every run solves an identical instance.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// PHP(p, h): `p` pigeons into `h` holes — unsatisfiable when p > h, with a
/// propagation-heavy refutation. The canonical pure-SAT stress instance.
fn php_solver(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &vars {
        s.add_clause(row.iter().copied());
    }
    for p1 in 0..pigeons {
        for p2 in (p1 + 1)..pigeons {
            for (&a, &b) in vars[p1].iter().zip(&vars[p2]) {
                s.add_clause([!a, !b]);
            }
        }
    }
    s
}

/// Seeded random 3-SAT near the phase transition (ratio 4.2): a mixed
/// propagate/backtrack workload. The seed pins the formula, so the verdict
/// is an instance property, not a solver property.
fn rand3sat_solver(num_vars: usize, seed: u64) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    let mut rng = Lcg(seed);
    let clauses = num_vars * 42 / 10;
    for _ in 0..clauses {
        let mut picks = [0usize; 3];
        for slot in 0..3 {
            loop {
                let v = (rng.next() as usize) % num_vars;
                if !picks[..slot].contains(&v) {
                    picks[slot] = v;
                    break;
                }
            }
        }
        let lits = picks.map(|v| Lit::new(vars[v], rng.next() & 1 == 0));
        s.add_clause(lits);
    }
    s
}

fn sat_verdict(r: SatResult) -> &'static str {
    match r {
        SatResult::Sat => "sat",
        SatResult::Unsat => "unsat",
        SatResult::Unknown => "unknown",
    }
}

/// Runs `f` (a full fresh-state solve returning its verdict tag and stats)
/// `runs + 1` times — one warm-up — and keeps the median-wall-time run.
fn measure<F: FnMut() -> (String, SolverStats)>(name: &str, runs: usize, mut f: F) -> SolverMetric {
    assert!(runs > 0);
    let (verdict, _) = f();
    let mut timed: Vec<(f64, SolverStats)> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let (v, stats) = f();
            assert_eq!(v, verdict, "{name}: verdict must be pinned across runs");
            (t0.elapsed().as_secs_f64() * 1e3, stats)
        })
        .collect();
    timed.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    let (wall_ms, stats) = timed[timed.len() / 2];
    SolverMetric {
        name: name.to_string(),
        verdict,
        wall_ms,
        stats,
    }
}

/// Runs every pinned instance and assembles the report. `quick` is the CI
/// mode: fewer timed runs and the small instances only; the full mode adds
/// PHP(8,7) and the surface-5 correction sweep.
pub fn run_solver_bench(quick: bool) -> SolverReport {
    let runs = if quick { 3 } else { 7 };
    let config = SolverConfig::default();
    let mut metrics = Vec::new();

    metrics.push(measure("php_7_6", runs, || {
        let mut s = php_solver(7, 6);
        let r = s.solve(&[]);
        assert_eq!(r, SatResult::Unsat);
        (sat_verdict(r).into(), s.stats())
    }));
    metrics.push(measure("rand3sat_n150", runs, || {
        let mut s = rand3sat_solver(150, 0x5EED_CAFE);
        let r = s.solve(&[]);
        assert_ne!(r, SatResult::Unknown);
        (sat_verdict(r).into(), s.stats())
    }));
    metrics.push(measure("steane_distance", runs, || {
        let mut session = DetectionSession::new(&steane(), config);
        let out = session.find_distance(4);
        assert_eq!(out, DistanceOutcome::Exact(3));
        ("distance_3".into(), session.solver_stats())
    }));
    metrics.push(measure("surface3_sweep_w2", runs, || {
        let scenario = memory_scenario(&rotated_surface(3), ErrorModel::YErrors);
        let mut sweep = CorrectionSweep::new(&scenario, vec![], config);
        assert!(sweep.check_weight(1).is_verified());
        assert!(matches!(
            sweep.check_weight(2),
            VcOutcome::CounterExample(_)
        ));
        ("w1_verified_w2_cex".into(), sweep.session().solver_stats())
    }));
    if !quick {
        metrics.push(measure("php_8_7", runs, || {
            let mut s = php_solver(8, 7);
            let r = s.solve(&[]);
            assert_eq!(r, SatResult::Unsat);
            (sat_verdict(r).into(), s.stats())
        }));
        metrics.push(measure("toric3_distance", runs, || {
            let mut session = DetectionSession::new(&toric(3), config);
            let out = session.find_distance(4);
            assert_eq!(out, DistanceOutcome::Exact(3));
            ("distance_3".into(), session.solver_stats())
        }));
        metrics.push(measure("surface5_sweep_w3", runs, || {
            let scenario = memory_scenario(&rotated_surface(5), ErrorModel::YErrors);
            let mut sweep = CorrectionSweep::new(&scenario, vec![], config);
            assert!(sweep.check_weight(2).is_verified());
            assert!(matches!(
                sweep.check_weight(3),
                VcOutcome::CounterExample(_)
            ));
            ("w2_verified_w3_cex".into(), sweep.session().solver_stats())
        }));
    }

    let total_secs: f64 = metrics.iter().map(|m| m.wall_ms / 1e3).sum();
    let total_props: u64 = metrics.iter().map(|m| m.stats.propagations).sum();
    let total_conflicts: u64 = metrics.iter().map(|m| m.stats.conflicts).sum();
    SolverReport {
        quick,
        metrics,
        props_per_sec: if total_secs > 0.0 {
            total_props as f64 / total_secs
        } else {
            0.0
        },
        conflicts_per_sec: if total_secs > 0.0 {
            total_conflicts as f64 / total_secs
        } else {
            0.0
        },
    }
}

/// Compares a fresh report against a parsed `bench_baselines.json` document
/// (its `solver_metrics` section: `[{"name": ..., "wall_ms": ...}, ...]`).
/// An instance regresses when it is more than [`TOLERANCE`]× slower than
/// its baseline; baseline entries with no measured counterpart are reported
/// too (a silently dropped instance must not pass the gate), while measured
/// instances absent from the baseline are ignored (new instances land
/// first, their baselines land with the measurement). The aggregate
/// propagation throughput must clear [`MIN_PROPS_PER_SEC`] regardless of
/// baselines.
pub fn check_solver_baseline(report: &SolverReport, baseline: &Json) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let entries = baseline
        .get("solver_metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for entry in entries {
        let (Some(name), Some(base_ms)) = (
            entry.get("name").and_then(Json::as_str),
            entry.get("wall_ms").and_then(Json::as_f64),
        ) else {
            regressions.push(Regression(format!(
                "malformed solver baseline entry: {entry:?}"
            )));
            continue;
        };
        match report.metric(name) {
            None => regressions.push(Regression(format!(
                "baseline solver instance '{name}' was not measured"
            ))),
            Some(m) if m.wall_ms > base_ms * TOLERANCE => regressions.push(Regression(format!(
                "{name}: {:.2} ms exceeds {TOLERANCE}x baseline {base_ms:.2} ms",
                m.wall_ms
            ))),
            Some(_) => {}
        }
    }
    if report.props_per_sec < MIN_PROPS_PER_SEC {
        regressions.push(Regression(format!(
            "aggregate propagation throughput {:.0}/s below required {MIN_PROPS_PER_SEC:.0}/s",
            report.props_per_sec
        )));
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, wall_ms: f64, propagations: u64) -> SolverMetric {
        SolverMetric {
            name: name.into(),
            verdict: "unsat".into(),
            wall_ms,
            stats: SolverStats {
                propagations,
                conflicts: propagations / 10,
                ..SolverStats::default()
            },
        }
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let report = SolverReport {
            quick: true,
            metrics: vec![metric("php_7_6", 2.5, 100_000)],
            props_per_sec: 4.0e7,
            conflicts_per_sec: 4.0e6,
        };
        let doc = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("veriqec_solver_v1")
        );
        assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
        assert!(doc.get("props_per_sec").unwrap().as_f64().unwrap() > 0.0);
        let instances = doc.get("instances").unwrap().as_arr().unwrap();
        assert_eq!(instances[0].get("name").unwrap().as_str(), Some("php_7_6"));
        assert_eq!(instances[0].get("verdict").unwrap().as_str(), Some("unsat"));
        assert!(instances[0].get("props_per_sec").unwrap().as_f64().unwrap() > 0.0);
        assert!(instances[0].get("mean_lbd").unwrap().as_f64().is_some());
    }

    #[test]
    fn baseline_gate_flags_only_hard_regressions() {
        let report = SolverReport {
            quick: true,
            metrics: vec![metric("fast", 2.0, 1_000_000), metric("slow", 100.0, 1_000)],
            props_per_sec: 1.0e7,
            conflicts_per_sec: 1.0e6,
        };
        let baseline = Json::parse(
            r#"{"solver_metrics":[
                {"name":"fast","wall_ms":1.0},
                {"name":"slow","wall_ms":10.0},
                {"name":"gone","wall_ms":5.0}
            ]}"#,
        )
        .unwrap();
        let regs = check_solver_baseline(&report, &baseline);
        // 'fast' is 2x the baseline — inside the 3x tolerance. 'slow' is
        // 10x — a hard regression. 'gone' was never measured.
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|r| r.0.contains("slow")));
        assert!(regs.iter().any(|r| r.0.contains("gone")));
    }

    #[test]
    fn throughput_floor_is_enforced() {
        let report = SolverReport {
            quick: true,
            metrics: vec![],
            props_per_sec: 10.0,
            conflicts_per_sec: 1.0,
        };
        let baseline = Json::parse(r#"{"solver_metrics":[]}"#).unwrap();
        let regs = check_solver_baseline(&report, &baseline);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].0.contains("throughput"));
    }

    #[test]
    fn pinned_pure_sat_instances_solve_as_expected() {
        let mut php = php_solver(5, 4);
        assert_eq!(php.solve(&[]), SatResult::Unsat);
        // The seeded formula is identical across constructions.
        let mut a = rand3sat_solver(24, 7);
        let mut b = rand3sat_solver(24, 7);
        assert_eq!(a.solve(&[]), b.solve(&[]));
        assert_eq!(a.num_clauses(), b.num_clauses());
    }
}
