//! Decision-diagram compile benchmarks behind the `tables dd` CI gate.
//!
//! `tables dd [--quick]` compiles a pinned set of codes through the same
//! [`FailureEnumerator`] sessions the engine's counting jobs use — full
//! projected compilation plus the stratified count — and writes per-code
//! wall time, node traffic (allocations, peak and final live nodes), apply
//! cache hit rate, and memory-management telemetry (GC runs, sifting swaps)
//! to `BENCH_dd.json`. Every run re-asserts the enumerator coefficients
//! against the group-theoretic failure total and the claimed distance, and
//! the carbon \[\[12,2,4\]\] coefficients bit-for-bit, so the perf gate can
//! never green-light a fast-but-wrong kernel.
//!
//! With `--check <baseline.json>` the fresh measurements are gated against
//! the checked-in `bench_baselines.json` (`dd_metrics` section): wall time
//! and peak live nodes may not exceed [`crate::kernels::TOLERANCE`]× their
//! baselines — the same hard-regression-only philosophy as the kernel and
//! solver gates.

use std::time::Instant;

use veriqec::enumerator::FailureEnumerator;
use veriqec_codes::{carbon_12_2_4, five_qubit, rotated_surface, steane, toric, StabilizerCode};
use veriqec_dd::{CompileConfig, DdStats};

use crate::json::Json;
use crate::kernels::{Regression, TOLERANCE};

/// The carbon code's failure weight enumerator, pinned from the first
/// release of the counting backend. The dd gate re-asserts it on every run:
/// any storage, GC, or reordering change that perturbs a single coefficient
/// fails the build before any timing is compared.
pub const CARBON_COEFFICIENTS: [u128; 13] =
    [0, 0, 0, 0, 41, 199, 609, 1539, 2991, 4005, 3547, 1937, 492];

/// One measured code.
#[derive(Clone, Debug)]
pub struct DdMetric {
    /// Stable code name — the join key against `bench_baselines.json`.
    pub name: String,
    /// Median wall time of a full compile-and-count session, milliseconds.
    pub wall_ms: f64,
    /// Live nodes after compilation (the counted diagram).
    pub final_nodes: u64,
    /// Decision-diagram statistics of the median run.
    pub stats: DdStats,
    /// Enumerator coefficients by support weight (re-asserted, then
    /// recorded in the artifact so plots need no second run).
    pub coefficients: Vec<u128>,
}

/// The full dd report (serialized to `BENCH_dd.json`).
#[derive(Clone, Debug)]
pub struct DdReport {
    /// True for the CI `--quick` run (fewer runs, cheap codes plus carbon).
    pub quick: bool,
    /// Measured codes.
    pub metrics: Vec<DdMetric>,
}

impl DdReport {
    /// Code lookup by name.
    pub fn metric(&self, name: &str) -> Option<&DdMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the report (stable field names; no external
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":\"veriqec_dd_v1\",\"quick\":{},\"codes\":[",
            self.quick
        ));
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"nodes\":{},\"peak_nodes\":{},\"final_nodes\":{}",
                m.name, m.wall_ms, m.stats.nodes, m.stats.peak_nodes, m.final_nodes,
            ));
            out.push_str(&format!(
                ",\"hit_rate\":{:.4},\"gc_runs\":{},\"gc_reclaimed\":{},\"reorder_swaps\":{},\"arena_bytes\":{}",
                m.stats.cache_hit_rate(),
                m.stats.gc_runs,
                m.stats.gc_reclaimed,
                m.stats.reorder_swaps,
                m.stats.arena_bytes,
            ));
            out.push_str(&format!(",\"coefficients\":{:?}}}", m.coefficients));
        }
        out.push_str("]}");
        out
    }
}

/// Compiles and counts one code `runs` times, keeping the median-wall run,
/// and re-asserts the coefficients: distance, group-theoretic total, and —
/// when `expect` pins them — every coefficient bit-for-bit.
fn measure(code: &StabilizerCode, runs: usize, expect: Option<&[u128]>) -> DdMetric {
    assert!(runs > 0);
    let mut timed: Vec<(f64, u64, DdStats, Vec<u128>)> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let mut fe = FailureEnumerator::new(code, &CompileConfig::default())
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", code.name()));
            let coefficients = fe.coefficients().to_vec();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            (wall_ms, fe.node_count() as u64, fe.dd_stats(), coefficients)
        })
        .collect();
    timed.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    let (wall_ms, final_nodes, stats, coefficients) = timed.swap_remove(timed.len() / 2);
    let d = coefficients
        .iter()
        .position(|&c| c > 0)
        .expect("every code has failures");
    assert_eq!(
        Some(d),
        code.claimed_distance(),
        "{}: enumerator distance disagrees with the claimed distance",
        code.name()
    );
    let (n, k) = (code.n() as u32, code.k() as u32);
    assert_eq!(
        coefficients.iter().sum::<u128>(),
        (1u128 << (n + k)) - (1u128 << (n - k)),
        "{}: total failures disagree with group counting",
        code.name()
    );
    if let Some(expect) = expect {
        assert_eq!(
            coefficients,
            expect,
            "{}: coefficients drifted from the pinned enumerator",
            code.name()
        );
    }
    DdMetric {
        name: code.name().to_string(),
        wall_ms,
        final_nodes,
        stats,
        coefficients,
    }
}

/// Runs every pinned code and assembles the report. `quick` is the CI mode:
/// one timed run per code over the cheap codes plus carbon \[\[12,2,4\]\] (the
/// headline instance the packed-arena engine was built for); the full mode
/// adds the larger surface/toric diagrams and takes medians of three.
pub fn run_dd_bench(quick: bool) -> DdReport {
    let runs = if quick { 1 } else { 3 };
    let mut metrics = vec![
        measure(&five_qubit(), runs, None),
        measure(&steane(), runs, None),
        measure(&rotated_surface(3), runs, None),
        measure(&carbon_12_2_4(), runs, Some(&CARBON_COEFFICIENTS)),
    ];
    if !quick {
        metrics.extend([
            measure(&toric(3), runs, None),
            measure(&rotated_surface(5), runs, None),
        ]);
    }
    DdReport { quick, metrics }
}

/// Compares a fresh report against a parsed `bench_baselines.json` document
/// (its `dd_metrics` section: `[{"name", "wall_ms", "peak_nodes"}, ...]`).
/// A code regresses when its wall time or peak live-node count exceeds
/// [`TOLERANCE`]× the baseline; baseline entries with no measured
/// counterpart are reported too (a silently dropped code must not pass the
/// gate), while measured codes absent from the baseline are ignored (new
/// codes land first, their baselines land with the measurement).
pub fn check_dd_baseline(report: &DdReport, baseline: &Json) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let entries = baseline
        .get("dd_metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for entry in entries {
        let (Some(name), Some(base_ms), Some(base_peak)) = (
            entry.get("name").and_then(Json::as_str),
            entry.get("wall_ms").and_then(Json::as_f64),
            entry.get("peak_nodes").and_then(Json::as_f64),
        ) else {
            regressions.push(Regression(format!(
                "malformed dd baseline entry: {entry:?}"
            )));
            continue;
        };
        match report.metric(name) {
            None => regressions.push(Regression(format!(
                "baseline dd code '{name}' was not measured"
            ))),
            Some(m) => {
                if m.wall_ms > base_ms * TOLERANCE {
                    regressions.push(Regression(format!(
                        "{name}: {:.2} ms exceeds {TOLERANCE}x baseline {base_ms:.2} ms",
                        m.wall_ms
                    )));
                }
                if m.stats.peak_nodes as f64 > base_peak * TOLERANCE {
                    regressions.push(Regression(format!(
                        "{name}: peak {} nodes exceeds {TOLERANCE}x baseline {base_peak:.0}",
                        m.stats.peak_nodes
                    )));
                }
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, wall_ms: f64, peak_nodes: u64) -> DdMetric {
        DdMetric {
            name: name.into(),
            wall_ms,
            final_nodes: peak_nodes / 2,
            stats: DdStats {
                nodes: peak_nodes * 2,
                peak_nodes,
                cache_lookups: 1000,
                cache_hits: 400,
                gc_runs: 2,
                gc_reclaimed: 500,
                reorder_swaps: 30,
                arena_bytes: 12_000,
                ..DdStats::default()
            },
            coefficients: vec![0, 0, 2],
        }
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let report = DdReport {
            quick: true,
            metrics: vec![metric("steane", 2.5, 4_000)],
        };
        let doc = Json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("veriqec_dd_v1"));
        assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
        let codes = doc.get("codes").unwrap().as_arr().unwrap();
        assert_eq!(codes[0].get("name").unwrap().as_str(), Some("steane"));
        assert_eq!(codes[0].get("peak_nodes").unwrap().as_f64(), Some(4_000.0));
        assert_eq!(codes[0].get("hit_rate").unwrap().as_f64(), Some(0.4));
        assert_eq!(codes[0].get("gc_runs").unwrap().as_f64(), Some(2.0));
        assert_eq!(codes[0].get("reorder_swaps").unwrap().as_f64(), Some(30.0));
        let coeffs = codes[0].get("coefficients").unwrap().as_arr().unwrap();
        assert_eq!(coeffs.len(), 3);
        assert_eq!(coeffs[2].as_f64(), Some(2.0));
    }

    #[test]
    fn baseline_gate_flags_only_hard_regressions() {
        let report = DdReport {
            quick: true,
            metrics: vec![
                metric("fast", 2.0, 1_000),
                metric("slow", 100.0, 1_000),
                metric("bloated", 1.0, 90_000),
            ],
        };
        let baseline = Json::parse(
            r#"{"dd_metrics":[
                {"name":"fast","wall_ms":1.0,"peak_nodes":800},
                {"name":"slow","wall_ms":10.0,"peak_nodes":800},
                {"name":"bloated","wall_ms":1.0,"peak_nodes":10000},
                {"name":"gone","wall_ms":5.0,"peak_nodes":100}
            ]}"#,
        )
        .unwrap();
        let regs = check_dd_baseline(&report, &baseline);
        // 'fast' is 2x the wall baseline — inside the 3x tolerance. 'slow'
        // is 10x on wall, 'bloated' 9x on peak nodes, 'gone' unmeasured.
        assert_eq!(regs.len(), 3, "{regs:?}");
        assert!(regs.iter().any(|r| r.0.contains("slow")));
        assert!(regs.iter().any(|r| r.0.contains("bloated")));
        assert!(regs.iter().any(|r| r.0.contains("gone")));
    }

    #[test]
    fn missing_dd_section_gates_nothing() {
        let report = DdReport {
            quick: true,
            metrics: vec![metric("steane", 1.0, 100)],
        };
        let baseline = Json::parse(r#"{"metrics":[]}"#).unwrap();
        assert!(check_dd_baseline(&report, &baseline).is_empty());
    }

    #[test]
    fn cheap_codes_measure_and_pin_their_enumerators() {
        // The real measurement path on the two cheapest codes: coefficient
        // re-assertion (distance + group total) runs inside `measure`.
        let m = measure(&five_qubit(), 1, None);
        assert!(m.wall_ms > 0.0);
        assert!(m.stats.nodes > 0);
        assert!(m.final_nodes > 0);
        assert_eq!(m.coefficients.iter().sum::<u128>(), (1 << 6) - (1 << 4));
    }
}
