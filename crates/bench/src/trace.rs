//! Schema validation for Chrome trace-event artifacts.
//!
//! The `tables --trace` path validates its own output in-process before
//! writing it (CI fails on a malformed trace rather than uploading one),
//! and the trace schema tests reuse the same checker. Validated here:
//! the artifact is one JSON array; every event carries `name`/`cat`/`ph`/
//! `ts`/`pid`/`tid`; timestamps are monotonic per `tid` (per-thread event
//! order survived buffering); and `B`/`E` duration events pair up like
//! brackets on every thread — an unbalanced stream renders misleadingly in
//! Perfetto, so it is rejected outright.

use crate::json::Json;
use std::collections::HashMap;

/// What a valid trace contained, for reporting and for gating on coverage
/// (e.g. "the enumerators smoke trace must span ≥ 4 crates").
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Distinct `tid`s seen.
    pub tids: usize,
    /// Distinct categories seen, in first-appearance order.
    pub categories: Vec<String>,
}

/// Validates `text` as a Chrome trace-event JSON array. Returns a summary
/// of the stream, or the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .as_arr()
        .ok_or_else(|| "top level must be a JSON array".to_string())?;
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut categories: Vec<String> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let field = |key: &str| {
            e.get(key)
                .ok_or_else(|| format!("event {i}: missing \"{key}\""))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"name\" must be a string"))?;
        let cat = field("cat")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"cat\" must be a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" must be a string"))?;
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: \"ts\" must be a number"))?;
        field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: \"pid\" must be a number"))?;
        let tid = field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: \"tid\" must be a number"))?
            as u64;
        if !categories.iter().any(|c| c == cat) {
            categories.push(cat.to_string());
        }
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "event {i}: ts {ts} < previous ts {prev} on tid {tid} (non-monotonic)"
            ));
        }
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let popped = stacks.entry(tid).or_default().pop().ok_or_else(|| {
                    format!("event {i}: E \"{name}\" on tid {tid} with no open B")
                })?;
                if popped != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" on tid {tid} closes B \"{popped}\" (mismatched pair)"
                    ));
                }
            }
            "i" | "C" => {}
            other => return Err(format!("event {i}: unknown ph \"{other}\"")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "tid {tid}: span \"{open}\" opened but never closed ({} left open)",
                stack.len()
            ));
        }
    }
    Ok(TraceSummary {
        events: events.len(),
        tids: last_ts.len(),
        categories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_balanced_trace() {
        let text = r#"[
{"name":"solve","cat":"sat","ph":"B","ts":10,"pid":1,"tid":2},
{"name":"mark","cat":"sat","ph":"i","ts":12,"pid":1,"tid":2,"s":"t"},
{"name":"solve","cat":"sat","ph":"E","ts":20,"pid":1,"tid":2},
{"name":"nodes","cat":"dd","ph":"C","ts":21,"pid":1,"tid":3,"args":{"value":5}}
]"#;
        let summary = validate_chrome_trace(text).expect("valid");
        assert_eq!(summary.events, 4);
        assert_eq!(summary.tids, 2);
        assert_eq!(summary.categories, vec!["sat", "dd"]);
    }

    #[test]
    fn rejects_schema_violations() {
        // Not an array.
        assert!(validate_chrome_trace("{}").is_err());
        // Missing cat.
        assert!(
            validate_chrome_trace(r#"[{"name":"x","ph":"i","ts":1,"pid":1,"tid":1}]"#).is_err()
        );
        // Non-monotonic ts on one tid.
        let err = validate_chrome_trace(
            r#"[
{"name":"a","cat":"t","ph":"i","ts":10,"pid":1,"tid":1},
{"name":"b","cat":"t","ph":"i","ts":5,"pid":1,"tid":1}
]"#,
        )
        .unwrap_err();
        assert!(err.contains("non-monotonic"), "{err}");
        // E without B.
        let err =
            validate_chrome_trace(r#"[{"name":"a","cat":"t","ph":"E","ts":1,"pid":1,"tid":1}]"#)
                .unwrap_err();
        assert!(err.contains("no open B"), "{err}");
        // B left open.
        let err =
            validate_chrome_trace(r#"[{"name":"a","cat":"t","ph":"B","ts":1,"pid":1,"tid":1}]"#)
                .unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        // Interleaved tids stay independent: tid 2's ts may be lower.
        let ok = validate_chrome_trace(
            r#"[
{"name":"a","cat":"t","ph":"B","ts":100,"pid":1,"tid":1},
{"name":"c","cat":"t","ph":"i","ts":1,"pid":1,"tid":2},
{"name":"a","cat":"t","ph":"E","ts":110,"pid":1,"tid":1}
]"#,
        );
        assert!(ok.is_ok());
    }
}
