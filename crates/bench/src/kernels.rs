//! Kernel microbenchmarks behind the CI perf-regression gate.
//!
//! `tables kernels [--quick]` runs three hot-path kernels — the affine XOR
//! chain, `ReducedVc::resolve_branches`, and batch-vs-sequential Pauli
//! frame sampling — and writes median ns/op per metric to
//! `BENCH_kernels.json`. CI uploads the report as an artifact and compares
//! it against the checked-in `bench_baselines.json` with a generous
//! tolerance ([`TOLERANCE`], 3×), so only hard regressions fail the build;
//! the batch-vs-sequential frame speedup is additionally required to stay
//! above [`MIN_FRAME_SPEEDUP`] — the PR-level acceptance bar for the
//! bit-sliced simulator.

use std::time::Instant;

use veriqec::sampling::faulty_memory_frame;
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec_cexpr::{Affine, VarId};
use veriqec_codes::{rotated_surface, ExtractionSchedule};
use veriqec_qsim::LANES;
use veriqec_vcgen::{reduce_commuting, ReducedVc};
use veriqec_wp::qec_wp;

use crate::json::Json;

/// Wall-time tolerance of the regression gate: a metric fails only when it
/// is more than this factor slower than its checked-in baseline. Generous
/// on purpose — shared CI runners are noisy, and the gate is for hard
/// regressions (an accidentally quadratic loop, a lost fast path), not for
/// single-digit-percent drift.
pub const TOLERANCE: f64 = 3.0;

/// Minimum required batch-vs-sequential frame-sampling speedup at surface
/// d=5 (the PR acceptance bar is 10×; the measured ratio is far higher).
pub const MIN_FRAME_SPEEDUP: f64 = 10.0;

/// One measured kernel.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Stable metric name — the join key against `bench_baselines.json`.
    pub name: String,
    /// Median wall time per operation, nanoseconds.
    pub median_ns: f64,
    /// Timed samples behind the median.
    pub samples: usize,
}

/// The full kernels report (serialized to `BENCH_kernels.json`).
#[derive(Clone, Debug)]
pub struct KernelsReport {
    /// True for the CI `--quick` run (fewer samples, d ≤ 5 workloads).
    pub quick: bool,
    /// Measured kernels.
    pub metrics: Vec<Metric>,
    /// Sequential-ns ÷ batch-ns per frame at surface d=5.
    pub frame_batch_speedup: f64,
}

impl KernelsReport {
    /// Metric lookup by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the report (stable field names; no external
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":\"veriqec_kernels_v1\",\"quick\":{},\"frame_batch_speedup\":{:.2},\"metrics\":[",
            self.quick, self.frame_batch_speedup
        ));
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}",
                m.name, m.median_ns, m.samples
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Median wall time of `f` in nanoseconds over `samples` timed runs (one
/// untimed warm-up).
pub fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    assert!(samples > 0);
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Deterministic xorshift so every run times an identical workload.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The XOR-chain workload at distance `d`: 256 affine forms of weight 8
/// over the d×d memory scenario's variable-id span.
fn chain_forms(d: usize) -> Vec<Affine> {
    let nvars = (4 * d * d) as u64;
    let mut rng = Lcg(0x9E37_79B9 ^ d as u64);
    (0..256)
        .map(|_| Affine::sum_vars((0..8).map(|_| VarId((rng.next() % nvars) as u32))))
        .collect()
}

/// The unresolved rotated-surface memory VC at distance `d`.
fn surface_vc(d: usize) -> ReducedVc {
    let scenario = memory_scenario(&rotated_surface(d), ErrorModel::YErrors);
    let wp = qec_wp(&scenario.program, scenario.post.clone()).expect("QEC fragment");
    reduce_commuting(&scenario.lhs, &wp.pre).expect("commuting case")
}

/// The frame-sampling workload: the faulty-measurement memory protocol of
/// the rotated surface code at distance `d` over `rounds` extraction
/// rounds, with 64 deterministic weight-≤2 error configurations.
fn frame_workload(d: usize, rounds: usize) -> (veriqec_qsim::FrameCircuit, Vec<u64>) {
    let code = rotated_surface(d);
    let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
    let frame = faulty_memory_frame(&code, ErrorModel::YErrors, &schedule);
    let sites = frame.circuit.num_error_sites();
    let mut rng = Lcg(0xD1B5_4A32 ^ d as u64);
    let mut masks = vec![0u64; sites];
    for lane in 0..LANES {
        for _ in 0..2 {
            masks[(rng.next() as usize) % sites] |= 1u64 << lane;
        }
    }
    (frame.circuit, masks)
}

/// Runs every kernel and assembles the report. `quick` is the CI mode:
/// fewer samples and d ≤ 5 workloads; the full mode adds the d=7 symbolic
/// kernels on top.
pub fn run_kernels(quick: bool) -> KernelsReport {
    let samples = if quick { 24 } else { 64 };
    let mut metrics = Vec::new();

    let symbolic_ds: &[usize] = if quick { &[5] } else { &[5, 7] };
    for &d in symbolic_ds {
        let forms = chain_forms(d);
        metrics.push(Metric {
            name: format!("xor_chain_d{d}"),
            median_ns: median_ns(samples, || {
                let mut acc = Affine::zero();
                for f in &forms {
                    acc ^= f;
                }
                std::hint::black_box(&acc);
            }),
            samples,
        });
        let vc = surface_vc(d);
        metrics.push(Metric {
            name: format!("branch_resolution_d{d}"),
            median_ns: median_ns(samples, || {
                let mut v = vc.clone();
                v.resolve_branches();
                std::hint::black_box(v.targets.len());
            }),
            samples,
        });
    }

    let (circuit, masks) = frame_workload(5, 3);
    let per_lane: Vec<Vec<bool>> = (0..LANES)
        .map(|lane| masks.iter().map(|w| w >> lane & 1 == 1).collect())
        .collect();
    // Both sides propagate the same 64 configurations; ns are per frame.
    let seq_ns = median_ns(samples, || {
        for cfg in &per_lane {
            std::hint::black_box(circuit.sample(cfg));
        }
    }) / LANES as f64;
    let batch_ns = median_ns(samples, || {
        std::hint::black_box(circuit.sample_batch(&masks));
    }) / LANES as f64;
    metrics.push(Metric {
        name: "frame_sequential_d5".into(),
        median_ns: seq_ns,
        samples,
    });
    metrics.push(Metric {
        name: "frame_batch_d5".into(),
        median_ns: batch_ns,
        samples,
    });

    KernelsReport {
        quick,
        metrics,
        frame_batch_speedup: seq_ns / batch_ns,
    }
}

/// One gate violation, human-readable.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression(pub String);

/// Compares a fresh report against a parsed `bench_baselines.json`
/// document (shape: `{"metrics": [{"name": ..., "median_ns": ...}, ...]}`).
/// A metric regresses when it is more than [`TOLERANCE`]× slower than its
/// baseline; baseline entries with no measured counterpart are reported
/// too (a silently dropped metric must not pass the gate), while measured
/// metrics absent from the baseline are ignored (new metrics land first,
/// their baselines land with the measurement). The frame speedup must
/// clear [`MIN_FRAME_SPEEDUP`] regardless of baselines.
pub fn check_against_baseline(report: &KernelsReport, baseline: &Json) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let entries = baseline
        .get("metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for entry in entries {
        let (Some(name), Some(base_ns)) = (
            entry.get("name").and_then(Json::as_str),
            entry.get("median_ns").and_then(Json::as_f64),
        ) else {
            regressions.push(Regression(format!("malformed baseline entry: {entry:?}")));
            continue;
        };
        match report.metric(name) {
            None => regressions.push(Regression(format!(
                "baseline metric '{name}' was not measured"
            ))),
            Some(m) if m.median_ns > base_ns * TOLERANCE => regressions.push(Regression(format!(
                "{name}: {:.0} ns/op exceeds {TOLERANCE}x baseline {base_ns:.0} ns/op",
                m.median_ns
            ))),
            Some(_) => {}
        }
    }
    if report.frame_batch_speedup < MIN_FRAME_SPEEDUP {
        regressions.push(Regression(format!(
            "frame batch speedup {:.1}x below required {MIN_FRAME_SPEEDUP}x",
            report.frame_batch_speedup
        )));
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0usize;
        let m = median_ns(5, || calls += 1);
        assert_eq!(calls, 6); // warm-up + samples
        assert!(m >= 0.0);
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let report = KernelsReport {
            quick: true,
            metrics: vec![Metric {
                name: "xor_chain_d5".into(),
                median_ns: 1234.5,
                samples: 24,
            }],
            frame_batch_speedup: 42.0,
        };
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("veriqec_kernels_v1")
        );
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("frame_batch_speedup").unwrap().as_f64(), Some(42.0));
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(
            metrics[0].get("name").unwrap().as_str(),
            Some("xor_chain_d5")
        );
        assert_eq!(metrics[0].get("median_ns").unwrap().as_f64(), Some(1234.5));
    }

    #[test]
    fn baseline_gate_flags_only_hard_regressions() {
        let report = KernelsReport {
            quick: true,
            metrics: vec![
                Metric {
                    name: "fast".into(),
                    median_ns: 100.0,
                    samples: 8,
                },
                Metric {
                    name: "slow".into(),
                    median_ns: 1000.0,
                    samples: 8,
                },
            ],
            frame_batch_speedup: 50.0,
        };
        let baseline = Json::parse(
            r#"{"metrics":[
                {"name":"fast","median_ns":50.0},
                {"name":"slow","median_ns":100.0},
                {"name":"gone","median_ns":10.0}
            ]}"#,
        )
        .unwrap();
        let regs = check_against_baseline(&report, &baseline);
        // 'fast' is 2x the baseline — inside the 3x tolerance. 'slow' is
        // 10x — a hard regression. 'gone' was never measured.
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|r| r.0.contains("slow")));
        assert!(regs.iter().any(|r| r.0.contains("gone")));
    }

    #[test]
    fn speedup_floor_is_enforced() {
        let report = KernelsReport {
            quick: true,
            metrics: vec![],
            frame_batch_speedup: 2.0,
        };
        let baseline = Json::parse(r#"{"metrics":[]}"#).unwrap();
        let regs = check_against_baseline(&report, &baseline);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].0.contains("speedup"));
    }
}
