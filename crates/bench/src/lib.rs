//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench and table binary regenerates one table or figure of
//! the paper's evaluation section; `DESIGN.md` maps experiment ids to
//! targets, and `EXPERIMENTS.md` records paper-vs-measured results. The
//! [`kernels`] module is the CI perf-regression gate's measurement core
//! (`tables kernels` → `BENCH_kernels.json`), [`solver_bench`] is the CDCL
//! throughput gate next to it (`tables solver` → `BENCH_solver.json`), and
//! [`json`] is the minimal parser that the gates and the artifact schema
//! tests read those reports with (the tree is offline — no serde; the
//! parser itself lives in `veriqec_serve`, which also feeds it the daemon's
//! line protocol, and is re-exported here for the gates), and
//! [`trace`] validates the Chrome trace-event artifacts `tables --trace`
//! emits before they are written or uploaded.

use veriqec::scenario::{memory_scenario, ErrorModel, Scenario};
use veriqec::tasks::build_problem;
use veriqec_codes::{rotated_surface, StabilizerCode};
use veriqec_vcgen::VcProblem;

pub mod dd_bench;
pub use veriqec_serve::json;
pub mod kernels;
pub mod solver_bench;
pub mod trace;

/// The rotated-surface memory workload of Figs. 4/6/7 at distance `d`.
pub fn surface_workload(d: usize) -> (StabilizerCode, Scenario) {
    let code = rotated_surface(d);
    let scenario = memory_scenario(&code, ErrorModel::YErrors);
    (code, scenario)
}

/// The fully assembled general-verification problem for distance `d`.
pub fn surface_problem(d: usize) -> (Scenario, VcProblem) {
    let (_, scenario) = surface_workload(d);
    let t = (d as i64 - 1) / 2;
    let problem = build_problem(&scenario, t, vec![]);
    (scenario, problem)
}

/// Deterministic "random" qubit subset for the locality constraint.
pub fn locality_set(d: usize) -> Vec<usize> {
    let n = d * d;
    let count = (n - 1) / 2;
    (0..count).map(|i| (i * 7 + 3) % n).collect()
}
