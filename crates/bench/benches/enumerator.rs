//! BDD compile+count vs blocking-clause SAT enumeration.
//!
//! Both sides answer the counting question the existence-only SAT tasks
//! cannot: how many undetectable logical errors exist at each weight? The
//! diagram backend compiles the detection CNF once and reads the *entire*
//! enumerator out of one weight-stratified pass; the CDCL baseline must
//! re-solve once per failure configuration (plus a final UNSAT), so it is
//! run weight-truncated (`≤ d`) — untruncated it would need one solve per
//! element of a set of size `2^{n+k} − 2^{n−k}` (≈ 5 · 10⁷ at d = 5).

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::enumerator::{sat_enumerator, FailureEnumerator};
use veriqec_codes::rotated_surface;
use veriqec_dd::CompileConfig;

fn bench_enumerator(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerator");
    group.sample_size(10);
    for d in [3usize, 5] {
        let code = rotated_surface(d);
        group.bench_function(format!("bdd_full_enumerator_d{d}"), |b| {
            b.iter(|| {
                let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
                let coeffs = fe.coefficients();
                assert_eq!(coeffs.iter().position(|&c| c > 0), Some(d));
            })
        });
        group.bench_function(format!("sat_blocking_upto_d{d}"), |b| {
            b.iter(|| {
                // The SAT side only covers weights ≤ d — a strict subset of
                // what the diagram delivers above.
                let coeffs = sat_enumerator(&code, d);
                assert_eq!(coeffs.iter().position(|&c| c > 0), Some(d));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumerator);
criterion_main!(benches);
