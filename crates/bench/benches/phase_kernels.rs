//! Microbenchmarks of the bit-packed phase engine against the historical
//! `BTreeSet<VarId>` representation (`veriqec_cexpr::baseline::SetAffine`).
//!
//! Two kernels, both at surface-code scale:
//!
//! * **XOR chain** — folding a long chain of affine phase updates into an
//!   accumulator, the inner loop of every Fig. 3 rule application;
//! * **branch resolution** — `ReducedVc::resolve_branches` on the real d=7
//!   rotated-surface memory VC, packed word-level row elimination vs the
//!   old clone-a-set-per-pivot Gaussian elimination.
//!
//! Besides the criterion groups, `speedup_report` prints packed-vs-set
//! ratios measured back to back, so a run of this bench records the numbers
//! the PR-level acceptance criterion asks for.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec_cexpr::baseline::SetAffine;
use veriqec_cexpr::{Affine, VarId};
use veriqec_codes::rotated_surface;
use veriqec_vcgen::{reduce_commuting, ReducedVc};
use veriqec_wp::qec_wp;

/// Deterministic xorshift so both representations see identical workloads.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The XOR-chain workload at distance `d`: variable ids span the d×d memory
/// scenario's registry (qubit errors + syndromes + per-sector corrections),
/// each form has the weight of a typical stabilizer phase update.
fn chain_forms(d: usize) -> Vec<Vec<VarId>> {
    let nvars = (4 * d * d) as u64;
    let mut rng = Lcg(0x9E37_79B9 ^ d as u64);
    (0..256)
        .map(|_| (0..8).map(|_| VarId((rng.next() % nvars) as u32)).collect())
        .collect()
}

fn xor_chain_packed(forms: &[Affine]) -> Affine {
    let mut acc = Affine::zero();
    for f in forms {
        acc ^= f;
    }
    acc
}

fn xor_chain_set(forms: &[SetAffine]) -> SetAffine {
    let mut acc = SetAffine::zero();
    for f in forms {
        // The pre-refactor update pattern: clone the right-hand side into
        // the move-taking XOR.
        acc ^= f.clone();
    }
    acc
}

/// The unresolved d=7 rotated-surface memory VC (guards ∪ targets system
/// with the or-bound syndrome variables still in place).
fn surface_vc(d: usize) -> ReducedVc {
    let scenario = memory_scenario(&rotated_surface(d), ErrorModel::YErrors);
    let wp = qec_wp(&scenario.program, scenario.post.clone()).expect("QEC fragment");
    reduce_commuting(&scenario.lhs, &wp.pre).expect("commuting case")
}

/// The pre-refactor branch resolution: set-backed forms, first equation
/// containing the or-variable becomes the pivot and is cloned into every
/// other occurrence.
fn resolve_set_model(
    or_vars: &[VarId],
    equations: &[SetAffine],
) -> (Vec<SetAffine>, Vec<SetAffine>) {
    let mut equations: Vec<SetAffine> = equations.to_vec();
    let mut pins: Vec<SetAffine> = Vec::new();
    for &s in or_vars {
        let Some(idx) = equations.iter().position(|e| e.contains(s)) else {
            continue;
        };
        let pivot = equations.remove(idx);
        for e in &mut equations {
            if e.contains(s) {
                *e ^= pivot.clone();
            }
        }
        pins.push(pivot);
    }
    equations.retain(|e| !e.is_zero());
    (pins, equations)
}

fn to_set(a: &Affine) -> SetAffine {
    let mut s = SetAffine::constant(a.constant_part());
    for v in a.vars() {
        s.xor_var(v);
    }
    s
}

fn bench_xor_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_chain");
    group.sample_size(50);
    for d in [3, 5, 7] {
        let ids = chain_forms(d);
        let packed: Vec<Affine> = ids
            .iter()
            .map(|f| Affine::sum_vars(f.iter().copied()))
            .collect();
        let set: Vec<SetAffine> = packed.iter().map(to_set).collect();
        group.bench_function(format!("d{d}_packed"), |b| {
            b.iter(|| black_box(xor_chain_packed(black_box(&packed))))
        });
        group.bench_function(format!("d{d}_btreeset"), |b| {
            b.iter(|| black_box(xor_chain_set(black_box(&set))))
        });
    }
    group.finish();
}

fn bench_branch_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_resolution");
    group.sample_size(30);
    for d in [3, 5, 7] {
        let vc = surface_vc(d);
        let set_equations: Vec<SetAffine> =
            vc.guards.iter().chain(&vc.targets).map(to_set).collect();
        // Sanity: both resolutions agree on system shape.
        let mut packed_vc = vc.clone();
        packed_vc.resolve_branches();
        let (pins, residuals) = resolve_set_model(&vc.or_vars, &set_equations);
        assert_eq!(packed_vc.guards.len(), pins.len(), "d={d} pin count");
        assert_eq!(packed_vc.targets.len(), residuals.len(), "d={d} residuals");
        group.bench_function(format!("d{d}_packed_rows"), |b| {
            b.iter(|| {
                let mut v = vc.clone();
                v.resolve_branches();
                black_box(v.targets.len())
            })
        });
        group.bench_function(format!("d{d}_btreeset_pivot_clone"), |b| {
            b.iter(|| black_box(resolve_set_model(&vc.or_vars, &set_equations).1.len()))
        });
    }
    group.finish();
}

/// Back-to-back wall-clock comparison printed as explicit speedup ratios —
/// the recorded evidence for the ≥5× acceptance bar at d=7.
fn speedup_report(_c: &mut Criterion) {
    let time = |mut f: Box<dyn FnMut()>, iters: u32| {
        f(); // warm-up
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        t0.elapsed().as_secs_f64() / f64::from(iters)
    };
    let d = 7;
    let ids = chain_forms(d);
    let packed: Vec<Affine> = ids
        .iter()
        .map(|f| Affine::sum_vars(f.iter().copied()))
        .collect();
    let set: Vec<SetAffine> = packed.iter().map(to_set).collect();
    let tp = time(
        Box::new(move || drop(black_box(xor_chain_packed(&packed)))),
        200,
    );
    let ts = time(Box::new(move || drop(black_box(xor_chain_set(&set)))), 200);
    eprintln!(
        "  speedup d=7 xor_chain: packed {:.2?} vs btreeset {:.2?} -> {:.1}x",
        std::time::Duration::from_secs_f64(tp),
        std::time::Duration::from_secs_f64(ts),
        ts / tp
    );
    let vc = surface_vc(d);
    let set_equations: Vec<SetAffine> = vc.guards.iter().chain(&vc.targets).map(to_set).collect();
    let vc2 = vc.clone();
    let tp = time(
        Box::new(move || {
            let mut v = vc2.clone();
            v.resolve_branches();
            black_box(&v.targets);
        }),
        50,
    );
    let or_vars = vc.or_vars.clone();
    let ts = time(
        Box::new(move || drop(black_box(resolve_set_model(&or_vars, &set_equations)))),
        50,
    );
    eprintln!(
        "  speedup d=7 branch_resolution: packed {:.2?} vs btreeset {:.2?} -> {:.1}x",
        std::time::Duration::from_secs_f64(tp),
        std::time::Duration::from_secs_f64(ts),
        ts / tp
    );
}

criterion_group!(
    benches,
    bench_xor_chain,
    bench_branch_resolution,
    speedup_report
);
criterion_main!(benches);
