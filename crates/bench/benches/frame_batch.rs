//! Batch-vs-sequential Pauli-frame sampling throughput.
//!
//! The bit-sliced `FrameBatch` simulator propagates 64 error
//! configurations per pass (one lane per configuration, word XOR per gate)
//! where the single-frame path pays a `PauliString` conjugation per gate
//! per configuration. Both sides run the same faulty-measurement surface
//! workload; the `speedup_report` group prints the per-frame ratio — the
//! recorded evidence for the ≥10× acceptance bar at d=5 (the measured
//! ratio is orders of magnitude higher).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use veriqec::sampling::faulty_memory_frame;
use veriqec::scenario::ErrorModel;
use veriqec_bench::kernels::median_ns;
use veriqec_codes::{rotated_surface, ExtractionSchedule};
use veriqec_qsim::{FrameCircuit, LANES};

/// Deterministic xorshift for reproducible error configurations.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The d-distance faulty-measurement memory circuit with 64 deterministic
/// weight-≤2 configurations packed as lane masks.
fn workload(d: usize, rounds: usize) -> (FrameCircuit, Vec<u64>) {
    let code = rotated_surface(d);
    let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
    let frame = faulty_memory_frame(&code, ErrorModel::YErrors, &schedule);
    let sites = frame.circuit.num_error_sites();
    let mut rng = Lcg(0xD1B5_4A32 ^ d as u64);
    let mut masks = vec![0u64; sites];
    for lane in 0..LANES {
        for _ in 0..2 {
            masks[(rng.next() as usize) % sites] |= 1u64 << lane;
        }
    }
    (frame.circuit, masks)
}

fn unpack(masks: &[u64]) -> Vec<Vec<bool>> {
    (0..LANES)
        .map(|lane| masks.iter().map(|w| w >> lane & 1 == 1).collect())
        .collect()
}

fn bench_frame_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_batch");
    group.sample_size(20);
    for d in [3usize, 5, 7] {
        let (circuit, masks) = workload(d, d);
        let per_lane = unpack(&masks);
        group.bench_function(format!("sequential_64_d{d}"), |b| {
            b.iter(|| {
                for cfg in &per_lane {
                    black_box(circuit.sample(cfg));
                }
            })
        });
        group.bench_function(format!("batch_64_d{d}"), |b| {
            b.iter(|| black_box(circuit.sample_batch(black_box(&masks))))
        });
        // The two paths must agree before their times are comparable.
        let batch = circuit.sample_batch(&masks);
        for (lane, cfg) in per_lane.iter().enumerate() {
            let sequential = circuit.sample(cfg);
            let unpacked: Vec<bool> = batch.iter().map(|w| w >> lane & 1 == 1).collect();
            assert_eq!(unpacked, sequential, "d={d} lane {lane}");
        }
    }
    group.finish();
}

/// Back-to-back per-frame ratio at d=5 — the PR acceptance evidence.
fn speedup_report(_c: &mut Criterion) {
    for d in [3usize, 5, 7] {
        let (circuit, masks) = workload(d, d);
        let per_lane = unpack(&masks);
        let seq = median_ns(12, || {
            for cfg in &per_lane {
                black_box(circuit.sample(cfg));
            }
        }) / LANES as f64;
        let batch = median_ns(12, || {
            black_box(circuit.sample_batch(&masks));
        }) / LANES as f64;
        eprintln!(
            "  speedup d={d} frame sampling: sequential {seq:.0} ns/frame vs \
             batch {batch:.0} ns/frame -> {:.0}x",
            seq / batch
        );
        if d == 5 {
            assert!(
                seq / batch >= 10.0,
                "batch frame sampling must be >= 10x sequential at d=5"
            );
        }
    }
}

criterion_group!(benches, bench_frame_batch, speedup_report);
criterion_main!(benches);
