//! Ablation benches for the design choices called out in `DESIGN.md`:
//! CDCL features (VSIDS, clause learning, restarts) and the `ET` subtask
//! heuristic, measured on the surface-code general-verification workload.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::parallel::{check_parallel, ParallelConfig};
use veriqec_bench::surface_problem;
use veriqec_sat::SolverConfig;

fn bench_solver_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solver_features");
    group.sample_size(10);
    let (_, problem) = surface_problem(5);
    let configs = [
        ("full", SolverConfig::default()),
        (
            "no_vsids",
            SolverConfig {
                use_vsids: false,
                ..SolverConfig::default()
            },
        ),
        (
            "no_restarts",
            SolverConfig {
                use_restarts: false,
                ..SolverConfig::default()
            },
        ),
        (
            "no_phase_saving",
            SolverConfig {
                use_phase_saving: false,
                ..SolverConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_function(format!("d5_{name}"), |b| {
            b.iter(|| {
                let (outcome, _) = problem.check_with_config(cfg);
                assert!(outcome.is_verified());
            })
        });
    }
    group.finish();
}

fn bench_et_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_et_heuristic");
    group.sample_size(10);
    let (scenario, problem) = surface_problem(5);
    for (name, threshold) in [("shallow", 6usize), ("paper_et", 14), ("deep", 20)] {
        let cfg = ParallelConfig {
            heuristic_distance: 5,
            et_threshold: threshold,
            ..ParallelConfig::default()
        };
        group.bench_function(format!("d5_{name}"), |b| {
            b.iter(|| {
                let r = check_parallel(&problem, &scenario.error_vars, &cfg);
                assert!(r.outcome.is_verified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_features, bench_et_heuristic);
criterion_main!(benches);
