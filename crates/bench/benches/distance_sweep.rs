//! Incremental vs fresh-encode distance sweeps.
//!
//! The engine's [`DetectionSession`] encodes the detection formula (Eqn. 15)
//! once per code and sweeps the weight threshold as totalizer assumptions;
//! the baseline re-encodes and re-warms a cold solver for every threshold,
//! which is exactly what `find_distance` did before the engine layer. The
//! gap between the two is the per-bound encode + warm-up cost the session
//! amortizes.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::engine::DetectionSession;
use veriqec::tasks::{verify_detection, DetectionOutcome, DistanceOutcome};
use veriqec_codes::rotated_surface;
use veriqec_sat::SolverConfig;

fn bench_distance_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_sweep");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let code = rotated_surface(d);
        group.bench_function(format!("incremental_d{d}"), |b| {
            b.iter(|| {
                let mut session = DetectionSession::new(&code, SolverConfig::default());
                assert_eq!(session.find_distance(d), DistanceOutcome::Exact(d));
                assert_eq!(session.encode_count(), 1);
            })
        });
        group.bench_function(format!("fresh_encode_d{d}"), |b| {
            b.iter(|| {
                // The pre-engine sweep: one cold context per threshold.
                let mut found = None;
                for dt in 2..=d + 1 {
                    if verify_detection(&code, dt, SolverConfig::default())
                        != DetectionOutcome::AllDetected
                    {
                        found = Some(dt - 1);
                        break;
                    }
                }
                assert_eq!(found, Some(d));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_sweep);
criterion_main!(benches);
