//! §7.2 comparison: complete verification vs stabilizer-simulation testing.
//!
//! Testing is fast per sample but needs astronomically many samples for
//! completeness; verification covers all configurations at once. This bench
//! measures the per-sample cost of the tableau baseline against full
//! verification of the same workload, and — since the bit-sliced frame
//! batch landed — the per-frame cost of the stim-style samplers themselves
//! (tableau, single frame, 64-lane batch), which is the honest
//! samples-per-second axis of the paper's §7.2 table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use veriqec::sampling::{faulty_memory_frame, sample_scenario};
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec_bench::surface_problem;
use veriqec_codes::{rotated_surface, ExtractionSchedule};
use veriqec_qsim::LANES;

fn bench_stim_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("stim_comparison");
    group.sample_size(10);
    for d in [3usize, 5] {
        let code = rotated_surface(d);
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = veriqec_decoder::CssLookupDecoder::for_code(&code, (d - 1) / 2);
        let oracle = veriqec_decoder::decode_call_oracle(decoder, code.n());
        group.bench_function(format!("sampling_100_d{d}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let r = sample_scenario(&scenario, (d - 1) / 2, 100, &oracle, &mut rng);
                assert_eq!(r.failures, 0);
            })
        });
        let (_, problem) = surface_problem(d);
        group.bench_function(format!("verification_d{d}"), |b| {
            b.iter(|| {
                let (outcome, _) = problem.check();
                assert!(outcome.is_verified());
            })
        });
    }
    group.finish();

    // Frame-sampler throughput: 64 error configurations of the d-round
    // faulty-measurement protocol, one frame at a time vs one bit-sliced
    // batch. Same configurations on both sides; stim's headline trick.
    let mut group = c.benchmark_group("frame_throughput");
    group.sample_size(20);
    for d in [3usize, 5] {
        let code = rotated_surface(d);
        let schedule = ExtractionSchedule::repeated(code.generators().len(), d);
        let frame = faulty_memory_frame(&code, ErrorModel::YErrors, &schedule);
        let sites = frame.circuit.num_error_sites();
        let masks: Vec<u64> = (0..sites)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7))
            .collect();
        let per_lane: Vec<Vec<bool>> = (0..LANES)
            .map(|lane| masks.iter().map(|w| w >> lane & 1 == 1).collect())
            .collect();
        group.bench_function(format!("sequential_64_frames_d{d}"), |b| {
            b.iter(|| {
                for cfg in &per_lane {
                    black_box(frame.circuit.sample(cfg));
                }
            })
        });
        group.bench_function(format!("batch_64_frames_d{d}"), |b| {
            b.iter(|| black_box(frame.circuit.sample_batch(black_box(&masks))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stim_comparison);
criterion_main!(benches);
