//! §7.2 comparison: complete verification vs stabilizer-simulation testing.
//!
//! Testing is fast per sample but needs astronomically many samples for
//! completeness; verification covers all configurations at once. This bench
//! measures the per-sample cost of the tableau baseline against full
//! verification of the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use veriqec::sampling::sample_scenario;
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec_bench::surface_problem;
use veriqec_codes::rotated_surface;
use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};

fn bench_stim_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("stim_comparison");
    group.sample_size(10);
    for d in [3usize, 5] {
        let code = rotated_surface(d);
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = CssLookupDecoder::for_code(&code, (d - 1) / 2);
        let oracle = decode_call_oracle(decoder, code.n());
        group.bench_function(format!("sampling_100_d{d}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let r = sample_scenario(&scenario, (d - 1) / 2, 100, &oracle, &mut rng);
                assert_eq!(r.failures, 0);
            })
        });
        let (_, problem) = surface_problem(d);
        group.bench_function(format!("verification_d{d}"), |b| {
            b.iter(|| {
                let (outcome, _) = problem.check();
                assert!(outcome.is_verified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stim_comparison);
criterion_main!(benches);
