//! Fig. 7: verification with user-provided error constraints (locality,
//! discreteness, both) on the rotated surface code — the one-shot path vs
//! the engine's incremental weight sweep: one [`CorrectionSweep`] per
//! constraint set answers every budget `1..=t` from a single encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::engine::CorrectionSweep;
use veriqec::tasks::{discreteness_constraint, locality_constraint, verify_constrained};
use veriqec_bench::{locality_set, surface_workload};
use veriqec_sat::SolverConfig;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_constrained_verification");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let (_, scenario) = surface_workload(d);
        let t = (d as i64 - 1) / 2;
        let loc = locality_constraint(&scenario, &locality_set(d));
        let disc = discreteness_constraint(&scenario, d);
        let mut both = loc.clone();
        both.extend(disc.clone());
        for (name, cs) in [("locality", loc), ("discreteness", disc), ("both", both)] {
            let one_shot = cs.clone();
            group.bench_function(format!("{name}_d{d}"), |b| {
                b.iter(|| {
                    let r =
                        verify_constrained(&scenario, t, one_shot.clone(), SolverConfig::default());
                    assert!(r.outcome.is_verified());
                })
            });
            let swept = cs.clone();
            group.bench_function(format!("{name}_sweep_d{d}"), |b| {
                b.iter(|| {
                    // All budgets 1..=t from one base encoding.
                    let mut sweep =
                        CorrectionSweep::new(&scenario, swept.clone(), SolverConfig::default());
                    for budget in 1..=t {
                        assert!(sweep.check_weight(budget).is_verified());
                    }
                    assert_eq!(sweep.encode_count(), 1);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
