//! Fig. 7: verification with user-provided error constraints (locality,
//! discreteness, both) on the rotated surface code.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::tasks::{discreteness_constraint, locality_constraint, verify_constrained};
use veriqec_bench::{locality_set, surface_workload};
use veriqec_sat::SolverConfig;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_constrained_verification");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let (_, scenario) = surface_workload(d);
        let t = (d as i64 - 1) / 2;
        let loc = locality_constraint(&scenario, &locality_set(d));
        let disc = discreteness_constraint(&scenario, d);
        let mut both = loc.clone();
        both.extend(disc.clone());
        for (name, cs) in [("locality", loc), ("discreteness", disc), ("both", both)] {
            let cs = cs.clone();
            group.bench_function(format!("{name}_d{d}"), |b| {
                b.iter(|| {
                    let r = verify_constrained(&scenario, t, cs.clone(), SolverConfig::default());
                    assert!(r.outcome.is_verified());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
