//! Fig. 6: precise detection of errors (Eqn. 15) on the rotated surface
//! code — the unsat direction (`d_t = d`) and the counterexample direction
//! (`d_t = d + 1`), served by one incremental [`DetectionSession`] per code:
//! both thresholds are assumption queries on a single base encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::engine::DetectionSession;
use veriqec::tasks::DetectionOutcome;
use veriqec_codes::rotated_surface;
use veriqec_sat::SolverConfig;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_precise_detection");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9] {
        let code = rotated_surface(d);
        group.bench_function(format!("session_sweep_d{d}"), |b| {
            b.iter(|| {
                let mut session = DetectionSession::new(&code, SolverConfig::default());
                let unsat = session.check(d);
                assert_eq!(unsat, DetectionOutcome::AllDetected);
                let sat = session.check(d + 1);
                assert!(matches!(sat, DetectionOutcome::UndetectedLogical { .. }));
                assert_eq!(session.encode_count(), 1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
