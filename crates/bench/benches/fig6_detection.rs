//! Fig. 6: precise detection of errors (Eqn. 15) on the rotated surface
//! code — the unsat direction (`d_t = d`) and the counterexample direction
//! (`d_t = d + 1`).

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::tasks::{verify_detection, DetectionOutcome};
use veriqec_codes::rotated_surface;
use veriqec_sat::SolverConfig;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_precise_detection");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9] {
        let code = rotated_surface(d);
        group.bench_function(format!("detect_unsat_d{d}"), |b| {
            b.iter(|| {
                let out = verify_detection(&code, d, SolverConfig::default());
                assert_eq!(out, DetectionOutcome::AllDetected);
            })
        });
        group.bench_function(format!("detect_sat_d{d}"), |b| {
            b.iter(|| {
                let out = verify_detection(&code, d + 1, SolverConfig::default());
                assert!(matches!(out, DetectionOutcome::UndetectedLogical { .. }));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
