//! Fig. 4: general verification (accurate decoding and correction) of the
//! rotated surface code, sequential vs the engine's batch driver, as a
//! function of distance — plus the whole-family batch the engine was built
//! for: all distances queued on one worker pool.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::engine::{Engine, EngineConfig, Job};
use veriqec::parallel::SplitConfig;
use veriqec_bench::surface_problem;

fn split_for(d: usize) -> SplitConfig {
    SplitConfig {
        heuristic_distance: d,
        et_threshold: 2 * d + 4,
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_general_verification");
    group.sample_size(10);
    let engine = Engine::new(EngineConfig::default());
    for d in [3usize, 5, 7] {
        let (scenario, problem) = surface_problem(d);
        group.bench_function(format!("sequential_d{d}"), |b| {
            b.iter(|| {
                let (outcome, _) = problem.check();
                assert!(outcome.is_verified());
            })
        });
        group.bench_function(format!("engine_d{d}"), |b| {
            b.iter(|| {
                let report = engine.run(vec![Job::correction(
                    format!("surface_d{d}"),
                    problem.clone(),
                    scenario.error_vars.clone(),
                    split_for(d),
                )]);
                assert!(report.jobs[0].outcome.is_verified());
            })
        });
    }
    group.bench_function("engine_batch_d3_d5_d7", |b| {
        b.iter(|| {
            let jobs: Vec<Job> = [3usize, 5, 7]
                .into_iter()
                .map(|d| {
                    let (scenario, problem) = surface_problem(d);
                    Job::correction(
                        format!("surface_d{d}"),
                        problem,
                        scenario.error_vars,
                        split_for(d),
                    )
                })
                .collect();
            let report = engine.run(jobs);
            assert!(report.jobs.iter().all(|j| j.outcome.is_verified()));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
