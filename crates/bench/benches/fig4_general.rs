//! Fig. 4: general verification (accurate decoding and correction) of the
//! rotated surface code, sequential vs parallel, as a function of distance.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::parallel::{check_parallel, ParallelConfig};
use veriqec_bench::surface_problem;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_general_verification");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let (scenario, problem) = surface_problem(d);
        group.bench_function(format!("sequential_d{d}"), |b| {
            b.iter(|| {
                let (outcome, _) = problem.check();
                assert!(outcome.is_verified());
            })
        });
        let cfg = ParallelConfig {
            heuristic_distance: d,
            et_threshold: 2 * d + 4,
            ..ParallelConfig::default()
        };
        group.bench_function(format!("parallel_d{d}"), |b| {
            b.iter(|| {
                let report = check_parallel(&problem, &scenario.error_vars, &cfg);
                assert!(report.outcome.is_verified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
