//! Table 3: the stabilizer-code benchmark — accurate correction (odd-d
//! codes) or single-error detection (d = 2 codes) across the zoo.

use criterion::{criterion_group, criterion_main, Criterion};
use veriqec::scenario::{memory_scenario, ErrorModel};
use veriqec::tasks::{verify_correction, verify_detection, DetectionOutcome};
use veriqec_codes::{
    carbon_12_2_4, cube_color_822, five_qubit, gottesman8, hgp_hamming, pair_detection_code,
    reed_muller, rotated_surface, shor9, six_qubit, steane, toric, xzzx_surface,
};
use veriqec_sat::SolverConfig;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_code_benchmark");
    group.sample_size(10);
    let correction_codes = [
        steane(),
        rotated_surface(3),
        rotated_surface(5),
        six_qubit(),
        five_qubit(),
        shor9(),
        reed_muller(4),
        xzzx_surface(3),
        gottesman8(),
        toric(3),
        hgp_hamming(),
        carbon_12_2_4(),
    ];
    for code in &correction_codes {
        let d = code.claimed_distance().expect("zoo codes have distances");
        let t = (d as i64 - 1) / 2;
        let scenario = memory_scenario(code, ErrorModel::YErrors);
        let label = code.name().replace([' ', '[', ']', ','], "_");
        group.bench_function(format!("correct_{label}"), |b| {
            b.iter(|| {
                let r = verify_correction(&scenario, t, SolverConfig::default());
                assert!(r.outcome.is_verified());
            })
        });
    }
    for code in [cube_color_822(), pair_detection_code(7, 5, 5)] {
        let label = code.name().replace([' ', '[', ']', ','], "_");
        group.bench_function(format!("detect_{label}"), |b| {
            b.iter(|| {
                let out = verify_detection(&code, 2, SolverConfig::default());
                assert_eq!(out, DetectionOutcome::AllDetected);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
