//! The lossy apply cache: a fixed-size direct-mapped array in the CUDD
//! tradition, replacing the old unbounded `HashMap`.
//!
//! Each slot holds one packed `(op, a, b) → result` entry; a colliding
//! insert simply overwrites. Losing an entry is always safe — apply results
//! are recomputable — and the bounded footprint is what lets multi-million
//! node compilations run without the cache itself dominating memory. The
//! cache starts small and doubles (clearing, which is free for a lossy
//! cache) while the insert traffic keeps outrunning its capacity, up to a
//! fixed ceiling.
//!
//! Keys pack the operation tag and both 31-bit operands into one `u64`, so
//! a lookup is one multiply, one shift, and one compare. Commutative
//! operands are canonicalized by the caller (`min`/`max` order); the
//! `swapped_hits` counter records hits that only exist because of that
//! canonicalization.

/// Packs `(op, a, b)` into the cache key. Operands must fit in 31 bits —
/// arena indices and variable ids both do long before memory runs out.
#[inline]
pub(crate) fn pack_key(op: u8, a: u32, b: u32) -> u64 {
    // Only 2 bits of key space: a fifth op tag would silently alias an
    // existing op's entries and return wrong cached results.
    debug_assert!(op < 4);
    debug_assert!(a < (1 << 31) && b < (1 << 31));
    ((op as u64) << 62) | ((a as u64) << 31) | b as u64
}

/// No packed key is all-ones: operand 2³¹ − 1 would require an arena (or
/// variable count) past the 31-bit ceiling asserted in [`pack_key`].
const EMPTY_KEY: u64 = u64::MAX;

const INITIAL_BITS: u32 = 12;
const MAX_BITS: u32 = 22;

/// Direct-mapped lossy memoization table for `apply` and `exists`.
#[derive(Clone, Debug)]
pub(crate) struct ApplyCache {
    keys: Vec<u64>,
    results: Vec<u32>,
    bits: u32,
    inserts: u64,
    /// Lookups served (hit or miss).
    pub lookups: u64,
    /// Lookups that found their entry.
    pub hits: u64,
    /// Hits whose operands arrived in non-canonical order — the share of
    /// the hit rate owed to commutative key canonicalization.
    pub swapped_hits: u64,
}

impl ApplyCache {
    pub fn new() -> Self {
        ApplyCache {
            keys: vec![EMPTY_KEY; 1 << INITIAL_BITS],
            results: vec![0; 1 << INITIAL_BITS],
            bits: INITIAL_BITS,
            inserts: 0,
            lookups: 0,
            hits: 0,
            swapped_hits: 0,
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.bits)) as usize
    }

    #[inline]
    pub fn get(&mut self, key: u64) -> Option<u32> {
        self.lookups += 1;
        let slot = self.slot(key);
        if self.keys[slot] == key {
            self.hits += 1;
            Some(self.results[slot])
        } else {
            None
        }
    }

    #[inline]
    pub fn put(&mut self, key: u64, result: u32) {
        let slot = self.slot(key);
        self.keys[slot] = key;
        self.results[slot] = result;
        self.inserts += 1;
        // Insert traffic at twice the capacity means the working set has
        // outgrown the table; double it (dropping the contents — lossy by
        // design) until the ceiling.
        if self.bits < MAX_BITS && self.inserts >= (2u64 << self.bits) {
            self.grow();
        }
    }

    fn grow(&mut self) {
        self.bits += 1;
        self.inserts = 0;
        self.keys.clear();
        self.keys.resize(1 << self.bits, EMPTY_KEY);
        self.results.resize(1 << self.bits, 0);
    }

    /// Drops every entry (GC compaction renumbers handles, so cached
    /// results would dangle). Capacity is retained.
    pub fn clear(&mut self) {
        self.inserts = 0;
        for k in &mut self.keys {
            *k = EMPTY_KEY;
        }
    }

    pub fn bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.results.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_after_clear() {
        let mut c = ApplyCache::new();
        let key = pack_key(0, 7, 9);
        assert_eq!(c.get(key), None);
        c.put(key, 42);
        assert_eq!(c.get(key), Some(42));
        c.clear();
        assert_eq!(c.get(key), None);
        assert_eq!(c.lookups, 3);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn grows_under_sustained_insert_traffic() {
        let mut c = ApplyCache::new();
        let before = c.keys.len();
        for i in 0..(4u32 << INITIAL_BITS) {
            c.put(pack_key(1, i, i), i);
        }
        assert!(c.keys.len() > before);
    }

    #[test]
    fn distinct_ops_never_collide_in_key_space() {
        for op in 0..4u8 {
            let k = pack_key(op, (1 << 31) - 2, (1 << 31) - 2);
            assert_ne!(k, EMPTY_KEY);
            assert_eq!(k >> 62, op as u64);
        }
    }
}
