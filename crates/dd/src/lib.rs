//! Decision-diagram counting backend for the Veri-QEC reproduction.
//!
//! The SAT pipeline answers *existence* questions — "does a weight-`≤ t`
//! uncorrectable error exist?" (Eqns. 14–15 of the paper). This crate turns
//! the same CNF encodings into *counting* queries: a reduced ordered BDD is
//! compiled from the clause set once, and then exact model counts — total or
//! stratified by the Hamming weight of a designated indicator-literal set —
//! fall out of a single bottom-up pass. That yields the code's failure
//! weight enumerator (the number of undetectable/uncorrectable error
//! configurations at every weight), a workload the CDCL solver cannot serve
//! without exponential blocking-clause enumeration.
//!
//! The design follows the rsdd school of hash-consed diagram engines: one
//! arena per [`BddManager`], a unique table making semantic equality
//! pointer equality, a memoized `apply`, and variable-ordering hooks
//! ([`OrderHeuristic`], [`compile_cnf_with_order`]) because the order — not
//! the operation set — decides whether a QEC instance compiles in
//! milliseconds or never.
//!
//! # Examples
//!
//! ```
//! use veriqec_dd::{compile_cnf, CompileConfig};
//! use veriqec_sat::Cnf;
//!
//! // (x1 ∨ x2) ∧ (x2 ∨ x3): 5 of 8 assignments satisfy it.
//! let cnf = Cnf::parse("p cnf 3 2\n1 2 0\n2 3 0\n").unwrap();
//! let compiled = compile_cnf(&cnf, &CompileConfig::default()).unwrap();
//! assert_eq!(compiled.manager.model_count(compiled.root), 5);
//! // Stratified by how many of x1, x2 are true:
//! let by_weight = compiled.manager.weight_count(compiled.root, &[(0, true), (1, true)]);
//! assert_eq!(by_weight, vec![0, 3, 2]);
//! ```

mod arena;
mod bdd;
mod cache;
mod compile;
pub mod oracle;
mod reorder;

pub use bdd::{Bdd, BddManager, DdStats, OpBudget, RootId};
pub use compile::{
    compile_cnf, compile_cnf_projected, compile_cnf_with_order, variable_order, CompileConfig,
    CompileError, CompiledCnf, OrderHeuristic,
};
pub use reorder::{ReorderConfig, SiftOutcome};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use veriqec_sat::{Cnf, Lit, Var};

    #[derive(Debug, Clone)]
    struct RandomCnf {
        num_vars: usize,
        clauses: Vec<Vec<(usize, bool)>>,
    }

    impl RandomCnf {
        fn to_cnf(&self) -> Cnf {
            Cnf {
                num_vars: self.num_vars,
                clauses: self
                    .clauses
                    .iter()
                    .map(|c| {
                        c.iter()
                            .map(|&(v, pos)| Lit::new(Var(v as u32), pos))
                            .collect()
                    })
                    .collect(),
            }
        }
    }

    fn arb_cnf(max_vars: usize) -> impl Strategy<Value = RandomCnf> {
        (1usize..max_vars + 1).prop_flat_map(|num_vars| {
            proptest::collection::vec(
                proptest::collection::vec((0..num_vars, any::<bool>()), 1..4),
                0..24,
            )
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
        })
    }

    /// Truth-table reference: per-weight model counts of `cnf` under the
    /// indicator literals `inds`.
    fn brute_force(cnf: &RandomCnf, inds: &[(usize, bool)]) -> Vec<u128> {
        let mut counts = vec![0u128; inds.len() + 1];
        for bits in 0u32..1 << cnf.num_vars {
            let sat = cnf
                .clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos));
            if sat {
                let w = inds
                    .iter()
                    .filter(|&&(v, pos)| ((bits >> v) & 1 == 1) == pos)
                    .count();
                counts[w] += 1;
            }
        }
        counts
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn model_count_matches_truth_table(cnf in arb_cnf(14)) {
            // The ISSUE's headline differential: BDD model count vs brute
            // force for random CNFs with n ≤ 14, across every heuristic.
            let expected: u128 = brute_force(&cnf, &[]).iter().sum();
            let dimacs = cnf.to_cnf();
            for order in [OrderHeuristic::Natural, OrderHeuristic::FirstUse, OrderHeuristic::Force] {
                let compiled = compile_cnf(&dimacs, &CompileConfig {
                    order,
                    ..CompileConfig::default()
                }).unwrap();
                let got = compiled.manager.model_count(compiled.root);
                prop_assert!(got == expected, "heuristic {order:?}: {got} vs {expected}");
            }
        }

        #[test]
        fn weight_count_matches_truth_table(
            cnf in arb_cnf(10),
            polarity in proptest::collection::vec(any::<bool>(), 10),
        ) {
            // Every other variable is an indicator, with random polarity.
            let inds: Vec<(usize, bool)> = (0..cnf.num_vars)
                .step_by(2)
                .map(|v| (v, polarity[v]))
                .collect();
            let expected = brute_force(&cnf, &inds);
            let compiled = compile_cnf(&cnf.to_cnf(), &CompileConfig::default()).unwrap();
            let got = compiled.manager.weight_count(compiled.root, &inds);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn projected_count_matches_truth_table(
            cnf in arb_cnf(10),
            keep_bits in proptest::collection::vec(any::<bool>(), 10),
        ) {
            // Projected compilation counts the distinct kept-variable
            // assignments extendable to a model — brute-force the shadow.
            let keep: Vec<usize> = (0..cnf.num_vars).filter(|&v| keep_bits[v]).collect();
            let mut shadow = std::collections::HashSet::new();
            for bits in 0u32..1 << cnf.num_vars {
                let sat = cnf
                    .clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos));
                if sat {
                    let mut proj = 0u32;
                    for &v in &keep {
                        proj |= bits & (1 << v);
                    }
                    shadow.insert(proj);
                }
            }
            let compiled = compile_cnf_projected(&cnf.to_cnf(), &keep, &CompileConfig::default()).unwrap();
            let got = compiled.manager.weight_count_over(compiled.root, &keep, &[]);
            prop_assert_eq!(got[0], shadow.len() as u128);
        }

        #[test]
        fn packed_arena_matches_hashmap_oracle(
            cnf in arb_cnf(12),
            keep_bits in proptest::collection::vec(any::<bool>(), 12),
        ) {
            // Differential harness for the packed-arena rewrite: the
            // retained HashMap kernel (`oracle`) compiles the same CNF with
            // the same order and schedule; projected shadow counts and
            // weight stratifications must agree bit for bit.
            let keep: Vec<usize> = (0..cnf.num_vars).filter(|&v| keep_bits[v]).collect();
            let dimacs = cnf.to_cnf();
            let order = variable_order(&dimacs, OrderHeuristic::FirstUse, 0);
            let compiled =
                compile_cnf_projected(&dimacs, &keep, &CompileConfig::default()).unwrap();
            let (om, oroot) = oracle::oracle_compile_projected(&dimacs, order, Some(&keep));
            let inds: Vec<(usize, bool)> =
                keep.iter().step_by(2).map(|&v| (v, true)).collect();
            prop_assert_eq!(
                compiled.manager.weight_count_over(compiled.root, &keep, &inds),
                om.weight_count_over(oroot, &keep, &inds)
            );
        }

        #[test]
        fn gc_and_sifting_are_invisible_on_random_cnfs(
            cnf in arb_cnf(12),
            keep_bits in proptest::collection::vec(any::<bool>(), 12),
        ) {
            // Memory management must never change semantics: compile with
            // eager GC + eager sifting and with both disabled, and compare
            // full weight stratifications over the kept variables.
            let keep: Vec<usize> = (0..cnf.num_vars).filter(|&v| keep_bits[v]).collect();
            let dimacs = cnf.to_cnf();
            let eager = CompileConfig {
                gc_dead_ratio: Some(0.0),
                reorder: Some(ReorderConfig {
                    trigger_nodes: 1,
                    min_level_size: 1,
                    ..ReorderConfig::default()
                }),
                ..CompileConfig::default()
            };
            let plain = CompileConfig {
                gc_dead_ratio: None,
                reorder: None,
                ..CompileConfig::default()
            };
            let a = compile_cnf_projected(&dimacs, &keep, &eager).unwrap();
            let b = compile_cnf_projected(&dimacs, &keep, &plain).unwrap();
            let inds: Vec<(usize, bool)> = keep.iter().map(|&v| (v, true)).collect();
            prop_assert_eq!(
                a.manager.weight_count_over(a.root, &keep, &inds),
                b.manager.weight_count_over(b.root, &keep, &inds)
            );
        }

        #[test]
        fn dimacs_roundtrip_preserves_counts(cnf in arb_cnf(8)) {
            // Compile → to_dimacs → parse → compile must agree: the writer
            // added for DD-vs-SAT debugging artifacts is lossless.
            let original = cnf.to_cnf();
            let reparsed = Cnf::parse(&original.to_dimacs()).unwrap();
            let a = compile_cnf(&original, &CompileConfig::default()).unwrap();
            let b = compile_cnf(&reparsed, &CompileConfig::default()).unwrap();
            prop_assert_eq!(
                a.manager.model_count(a.root),
                b.manager.model_count(b.root)
            );
        }
    }
}
