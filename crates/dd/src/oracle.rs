//! The pre-arena BDD manager, retained verbatim as a differential oracle.
//!
//! This is the naive hash-cons design the packed-arena kernel replaced: a
//! SipHash `HashMap` unique table, an unbounded `HashMap` apply cache, and
//! recursive `apply`/`exists`/`count`. It is deliberately boring — no GC,
//! no reordering, no budgets — which is exactly what makes it a trustworthy
//! reference: the proptests in `lib.rs` compile random CNFs through both
//! kernels (with GC and sifting enabled on the fast one) and demand
//! identical counts.
//!
//! Not exported for production use; the enumerator and engine build on
//! [`crate::BddManager`].

use std::collections::HashMap;

use veriqec_sat::{Cnf, Lit};

use crate::bdd::{lift, Mark};

/// A handle into an [`OracleManager`] (a separate type from [`crate::Bdd`]
/// so the two kernels' handles cannot be mixed up in differential tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OBdd(u32);

impl OBdd {
    /// The constant-false function.
    pub const FALSE: OBdd = OBdd(0);
    /// The constant-true function.
    pub const TRUE: OBdd = OBdd(1);
}

#[derive(Clone, Copy, Debug)]
struct Node {
    level: u32,
    lo: OBdd,
    hi: OBdd,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// The reference manager: recursive traversals over `HashMap` tables.
#[derive(Clone, Debug)]
pub struct OracleManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, OBdd, OBdd), OBdd>,
    cache: HashMap<(Op, OBdd, OBdd), OBdd>,
    var_to_level: Vec<u32>,
    level_to_var: Vec<u32>,
}

impl OracleManager {
    /// A manager over `num_vars` variables in natural order.
    pub fn new(num_vars: usize) -> Self {
        OracleManager::with_order((0..num_vars as u32).collect())
    }

    /// A manager with an explicit `var → level` order.
    ///
    /// # Panics
    ///
    /// Panics if `var_to_level` is not a permutation of `0..len`.
    pub fn with_order(var_to_level: Vec<u32>) -> Self {
        let n = var_to_level.len();
        let mut level_to_var = vec![u32::MAX; n];
        for (v, &l) in var_to_level.iter().enumerate() {
            assert!(
                (l as usize) < n && level_to_var[l as usize] == u32::MAX,
                "variable order must be a permutation of 0..{n}"
            );
            level_to_var[l as usize] = v as u32;
        }
        let terminal_level = n as u32;
        OracleManager {
            nodes: vec![
                Node {
                    level: terminal_level,
                    lo: OBdd::FALSE,
                    hi: OBdd::FALSE,
                },
                Node {
                    level: terminal_level,
                    lo: OBdd::TRUE,
                    hi: OBdd::TRUE,
                },
            ],
            unique: HashMap::new(),
            cache: HashMap::new(),
            var_to_level,
            level_to_var,
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.var_to_level.len()
    }

    /// Decision nodes allocated (terminals excluded; nothing is ever
    /// reclaimed here).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn level(&self, f: OBdd) -> u32 {
        self.nodes[f.0 as usize].level
    }

    fn mk(&mut self, level: u32, lo: OBdd, hi: OBdd) -> OBdd {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = OBdd(self.nodes.len() as u32);
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), id);
        id
    }

    /// The function of variable `v`.
    pub fn var(&mut self, v: usize) -> OBdd {
        let level = self.var_to_level[v];
        self.mk(level, OBdd::FALSE, OBdd::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, a: OBdd, b: OBdd) -> OBdd {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: OBdd, b: OBdd) -> OBdd {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: OBdd, b: OBdd) -> OBdd {
        self.apply(Op::Xor, a, b)
    }

    fn apply(&mut self, op: Op, a: OBdd, b: OBdd) -> OBdd {
        match op {
            Op::And => {
                if a == OBdd::FALSE || b == OBdd::FALSE {
                    return OBdd::FALSE;
                }
                if a == OBdd::TRUE {
                    return b;
                }
                if b == OBdd::TRUE || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == OBdd::TRUE || b == OBdd::TRUE {
                    return OBdd::TRUE;
                }
                if a == OBdd::FALSE {
                    return b;
                }
                if b == OBdd::FALSE || a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == OBdd::FALSE {
                    return b;
                }
                if b == OBdd::FALSE {
                    return a;
                }
                if a == b {
                    return OBdd::FALSE;
                }
            }
        }
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (la, lb) = (self.level(a), self.level(b));
        let level = la.min(lb);
        let (a0, a1) = if la == level {
            let n = self.nodes[a.0 as usize];
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if lb == level {
            let n = self.nodes[b.0 as usize];
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(level, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Existential quantification of variable `v`: `∃v. f`.
    pub fn exists(&mut self, f: OBdd, v: usize) -> OBdd {
        let target = self.var_to_level[v];
        let mut memo = HashMap::new();
        self.exists_rec(f, target, &mut memo)
    }

    fn exists_rec(&mut self, f: OBdd, target: u32, memo: &mut HashMap<OBdd, OBdd>) -> OBdd {
        let level = self.level(f);
        if level > target {
            return f;
        }
        if level == target {
            let Node { lo, hi, .. } = self.nodes[f.0 as usize];
            return self.apply(Op::Or, lo, hi);
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let Node { level, lo, hi } = self.nodes[f.0 as usize];
        let nlo = self.exists_rec(lo, target, memo);
        let nhi = self.exists_rec(hi, target, memo);
        let r = self.mk(level, nlo, nhi);
        memo.insert(f, r);
        r
    }

    /// Exact model count over all variables.
    pub fn model_count(&self, f: OBdd) -> u128 {
        let counted: Vec<usize> = (0..self.num_vars()).collect();
        self.weight_count_over(f, &counted, &[])[0]
    }

    /// Weight-stratified projected model count; semantics identical to
    /// [`crate::BddManager::weight_count_over`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the arena kernel's version.
    pub fn weight_count_over(
        &self,
        f: OBdd,
        counted: &[usize],
        indicators: &[(usize, bool)],
    ) -> Vec<u128> {
        let mut marker: Vec<Mark> = vec![Mark::Skip; self.num_vars()];
        for &v in counted {
            assert!(v < self.num_vars(), "counted variable {v} out of range");
            marker[self.var_to_level[v] as usize] = Mark::Count;
        }
        for &(v, positive) in indicators {
            assert!(v < self.num_vars(), "indicator variable {v} out of range");
            let l = self.var_to_level[v] as usize;
            assert!(
                !matches!(marker[l], Mark::Ind(_)),
                "indicator variable {v} repeated"
            );
            marker[l] = Mark::Ind(positive);
        }
        let width = indicators.len() + 1;
        let mut memo: HashMap<OBdd, Vec<u128>> = HashMap::new();
        let poly = self.count_rec(f, &marker, width, &mut memo);
        lift(poly, 0, self.level(f), &marker, width)
    }

    fn count_rec(
        &self,
        f: OBdd,
        marker: &[Mark],
        width: usize,
        memo: &mut HashMap<OBdd, Vec<u128>>,
    ) -> Vec<u128> {
        if f == OBdd::FALSE {
            return vec![0; width];
        }
        if f == OBdd::TRUE {
            let mut p = vec![0; width];
            p[0] = 1;
            return p;
        }
        if let Some(p) = memo.get(&f) {
            return p.clone();
        }
        let Node { level, lo, hi } = self.nodes[f.0 as usize];
        let lo_p = {
            let p = self.count_rec(lo, marker, width, memo);
            lift(p, level + 1, self.level(lo), marker, width)
        };
        let hi_p = {
            let p = self.count_rec(hi, marker, width, memo);
            lift(p, level + 1, self.level(hi), marker, width)
        };
        let mut p = vec![0u128; width];
        for w in 0..width {
            let (lo_w, hi_w) = match marker[level as usize] {
                Mark::Ind(true) => (lo_p[w], if w > 0 { hi_p[w - 1] } else { 0 }),
                Mark::Ind(false) => (if w > 0 { lo_p[w - 1] } else { 0 }, hi_p[w]),
                Mark::Count => (lo_p[w], hi_p[w]),
                Mark::Skip => panic!(
                    "projected-out variable {} still occurs in the diagram",
                    self.level_to_var[level as usize]
                ),
            };
            p[w] = lo_w.checked_add(hi_w).expect("model count overflows u128");
        }
        memo.insert(f, p.clone());
        p
    }
}

/// Projected CNF compilation through the oracle kernel, mirroring
/// [`crate::compile_cnf_projected`]'s bucket-elimination schedule (clause
/// order conjunction, eliminate each non-kept variable at its last use).
/// Pass `keep = None` for an unprojected compile.
pub fn oracle_compile_projected(
    cnf: &Cnf,
    var_to_level: Vec<u32>,
    keep: Option<&[usize]>,
) -> (OracleManager, OBdd) {
    let mut manager = OracleManager::with_order(var_to_level);
    let mut last_use = vec![usize::MAX; cnf.num_vars];
    if let Some(keep) = keep {
        for (ci, clause) in cnf.clauses.iter().enumerate() {
            for l in clause {
                last_use[l.var().index()] = ci;
            }
        }
        for &v in keep {
            last_use[v] = usize::MAX;
        }
    }
    let mut root = OBdd::TRUE;
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        let f = clause_bdd(&mut manager, clause);
        root = manager.and(root, f);
        if root == OBdd::FALSE {
            break;
        }
        for l in clause {
            let v = l.var().index();
            if last_use[v] == ci {
                root = manager.exists(root, v);
                last_use[v] = usize::MAX;
            }
        }
    }
    (manager, root)
}

fn clause_bdd(manager: &mut OracleManager, clause: &[Lit]) -> OBdd {
    let mut lits: Vec<(u32, bool)> = clause
        .iter()
        .map(|l| (manager.var_to_level[l.var().index()], l.is_positive()))
        .collect();
    lits.sort_unstable();
    lits.dedup();
    for pair in lits.windows(2) {
        if pair[0].0 == pair[1].0 {
            return OBdd::TRUE;
        }
    }
    let mut acc = OBdd::FALSE;
    for &(level, positive) in lits.iter().rev() {
        acc = if positive {
            manager.mk(level, acc, OBdd::TRUE)
        } else {
            manager.mk(level, OBdd::TRUE, acc)
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_a_tseitin_projection() {
        // x3 ↔ x1 ⊕ x2 with x3 asserted: projecting x3 leaves the two odd
        // assignments — the same instance the arena compiler's tests pin.
        let cnf = Cnf::parse("p cnf 3 5\n-3 1 2 0\n-3 -1 -2 0\n3 -1 2 0\n3 1 -2 0\n3 0\n").unwrap();
        let order: Vec<u32> = (0..3).collect();
        let (m, root) = oracle_compile_projected(&cnf, order, Some(&[0, 1]));
        assert_eq!(m.weight_count_over(root, &[0, 1], &[]), vec![2]);
        assert_eq!(
            m.weight_count_over(root, &[0, 1], &[(0, true), (1, true)]),
            vec![0, 2, 0]
        );
    }

    #[test]
    fn oracle_matches_basic_algebra() {
        let mut m = OracleManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        assert_eq!(m.and(b, a), ab);
        assert_eq!(m.or(ab, a), a);
        assert_eq!(m.model_count(ab), 2);
        let x = m.xor(a, b);
        assert_eq!(m.exists(x, 0), OBdd::TRUE);
    }
}
