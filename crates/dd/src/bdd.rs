//! The BDD kernel: hash-consed reduced ordered binary decision diagrams
//! over a packed arena, with a lossy apply cache, mark-and-sweep garbage
//! collection, and exact (weight-stratified) model counting.
//!
//! Nodes live in one struct-of-arrays arena owned by a [`BddManager`]
//! (see [`crate::arena`]); structural sharing is enforced by an
//! open-addressing unique table, so semantic equality of functions is
//! pointer equality of [`Bdd`] handles. The manager fixes a variable order
//! at construction ([`BddManager::with_order`] is the ordering hook used by
//! the CNF compiler's heuristics) which the sifting reorderer
//! ([`crate::reorder`]) may later permute in place; levels run top (0) to
//! bottom (`num_vars − 1`), with the terminals on the sentinel level
//! `u32::MAX`.
//!
//! All traversals — `apply`, `exists`, counting, GC marking — are
//! iterative with explicit stacks: recursion depth would otherwise scale
//! with the number of variable levels, and the frame-based CNF exports
//! routinely exceed 100k variables.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::arena::{NodeArena, UniqueTable};
use crate::cache::{pack_key, ApplyCache};
use crate::compile::CompileError;

/// A handle to a BDD node inside its [`BddManager`].
///
/// Handles are canonical: two handles are equal iff they denote the same
/// boolean function (under the manager's variable order). Handles are
/// stable across [`BddManager::reorder_sift`] (sifting rewrites nodes in place)
/// but are renumbered by [`BddManager::collect_garbage`] — hold them
/// through a collection via the root registry ([`BddManager::protect`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// True for the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The arena index (stable until the next garbage collection).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A slot in the manager's root registry: the handle it holds is treated
/// as a GC root and is updated in place when a collection renumbers the
/// arena. Obtained from [`BddManager::protect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootId(usize);

const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_XOR: u8 = 2;
const OP_EXISTS: u8 = 3;

/// Counters of the decision-diagram kernel, reported alongside
/// [`veriqec_sat::SolverStats`] by the engine's counting jobs.
///
/// Summing (via `+=` / `Sum`) aggregates per-job managers: cumulative
/// counters add naturally; `peak_nodes`, `unique_slots` and `arena_bytes`
/// then read as the combined footprint across managers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Decision nodes allocated over the manager's lifetime (shared nodes
    /// count once; reclaimed nodes still count).
    pub nodes: u64,
    /// Decision nodes currently in the arena (exact right after a
    /// collection; in between it includes garbage awaiting the sweep).
    pub live_nodes: u64,
    /// Peak simultaneous decision-node population of the arena.
    pub peak_nodes: u64,
    /// Apply-cache lookups (And/Or/Xor/Exists).
    pub cache_lookups: u64,
    /// Apply-cache hits.
    pub cache_hits: u64,
    /// Apply-cache hits whose operands arrived in non-canonical order —
    /// the share of hits owed to commutative key canonicalization.
    pub cache_swapped_hits: u64,
    /// Unique-table probe sequences (one per hash-cons attempt).
    pub unique_lookups: u64,
    /// Unique-table slots inspected across all probe sequences; divide by
    /// `unique_lookups` for the mean probe length.
    pub unique_probes: u64,
    /// Unique-table slot-array capacity.
    pub unique_slots: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Decision nodes reclaimed across all collections.
    pub gc_reclaimed: u64,
    /// Adjacent-level swaps performed by the sifting reorderer.
    pub reorder_swaps: u64,
    /// Resident bytes across the arena, unique table and apply cache.
    pub arena_bytes: u64,
}

impl DdStats {
    /// Apply-cache hit rate in `[0, 1]` (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Mean unique-table probe length (slots inspected per lookup; 0 when
    /// idle, ≥ 1 otherwise).
    pub fn unique_probe_length(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_probes as f64 / self.unique_lookups as f64
        }
    }

    /// Unique-table load factor in `[0, 1]` (live nodes over slots).
    pub fn unique_load_factor(&self) -> f64 {
        if self.unique_slots == 0 {
            0.0
        } else {
            self.live_nodes as f64 / self.unique_slots as f64
        }
    }

    /// Lowers the stats into a [`veriqec_obs::MetricsSnapshot`] under the
    /// batch reports' `dd_`-prefixed names — the one table the markdown and
    /// JSON DD columns are generated from. Counts merge additively; the
    /// derived rates (`dd_hit_rate`, `dd_probe_len`, `dd_load_factor`) are
    /// computed here once.
    pub fn to_metrics(&self) -> veriqec_obs::MetricsSnapshot {
        let mut m = veriqec_obs::MetricsSnapshot::new();
        m.push_count("dd_nodes", self.nodes);
        m.push_count("dd_peak_nodes", self.peak_nodes);
        m.push_count("dd_cache_lookups", self.cache_lookups);
        m.push_count("dd_cache_hits", self.cache_hits);
        m.push_value("dd_hit_rate", self.cache_hit_rate());
        m.push_value("dd_probe_len", self.unique_probe_length());
        m.push_value("dd_load_factor", self.unique_load_factor());
        m.push_count("dd_gc_runs", self.gc_runs);
        m.push_count("dd_gc_reclaimed", self.gc_reclaimed);
        m.push_count("dd_reorder_swaps", self.reorder_swaps);
        m.push_count("dd_arena_bytes", self.arena_bytes);
        m
    }
}

impl std::ops::AddAssign for DdStats {
    fn add_assign(&mut self, rhs: DdStats) {
        self.nodes += rhs.nodes;
        self.live_nodes += rhs.live_nodes;
        self.peak_nodes += rhs.peak_nodes;
        self.cache_lookups += rhs.cache_lookups;
        self.cache_hits += rhs.cache_hits;
        self.cache_swapped_hits += rhs.cache_swapped_hits;
        self.unique_lookups += rhs.unique_lookups;
        self.unique_probes += rhs.unique_probes;
        self.unique_slots += rhs.unique_slots;
        self.gc_runs += rhs.gc_runs;
        self.gc_reclaimed += rhs.gc_reclaimed;
        self.reorder_swaps += rhs.reorder_swaps;
        self.arena_bytes += rhs.arena_bytes;
    }
}

impl std::iter::Sum for DdStats {
    fn sum<I: Iterator<Item = DdStats>>(iter: I) -> DdStats {
        let mut total = DdStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

/// A cooperative budget for the `*_budgeted` operations: polled inside
/// `apply`/`exists` every [`OpBudget::poll_every`] node allocations, so a
/// single runaway conjunction is caught near the limit instead of after
/// it completes (the old clause-granularity blind spot).
#[derive(Clone, Debug)]
pub struct OpBudget<'a> {
    /// Abort once the arena holds this many decision nodes.
    pub node_limit: Option<usize>,
    /// Abort when any of these flags is raised.
    pub stop_flags: &'a [Arc<AtomicBool>],
    /// Node allocations between polls. The budget may overshoot by at most
    /// this many nodes.
    pub poll_every: u64,
}

/// Work items of the iterative `apply` loop.
#[derive(Clone, Copy, Debug)]
enum Frame {
    Visit { a: u32, b: u32 },
    Build { level: u32, a: u32, b: u32 },
}

/// Work items of the iterative `exists` loop.
#[derive(Clone, Copy, Debug)]
enum EFrame {
    Visit(u32),
    Build(u32),
}

/// An arena of hash-consed BDD nodes over a fixed variable order.
///
/// # Examples
///
/// ```
/// use veriqec_dd::{Bdd, BddManager};
///
/// let mut m = BddManager::new(3);
/// let (a, b, c) = (m.var(0), m.var(1), m.var(2));
/// let ab = m.and(a, b);
/// let f = m.or(ab, c);
/// assert_eq!(m.model_count(f), 5); // truth table of a·b + c has 5 ones
/// assert_eq!(m.model_count(Bdd::TRUE), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BddManager {
    pub(crate) arena: NodeArena,
    /// `(level, lo, hi) → node`, the hash-consing table.
    pub(crate) unique: UniqueTable,
    /// `(op, a, b) → result`, lossy, with commutative operands normalized.
    pub(crate) cache: ApplyCache,
    /// `var → level` (a permutation of `0..num_vars`).
    pub(crate) var_to_level: Vec<u32>,
    /// `level → var`, the inverse permutation.
    pub(crate) level_to_var: Vec<u32>,
    /// GC roots: handles held by callers across collections.
    pub(crate) roots: Vec<Option<u32>>,
    pub(crate) stats: DdStats,
    // Scratch stacks reused across iterative traversals.
    apply_frames: Vec<Frame>,
    apply_results: Vec<u32>,
    exists_frames: Vec<EFrame>,
    exists_results: Vec<u32>,
}

impl BddManager {
    /// A manager over `num_vars` variables in natural order (variable `v` at
    /// level `v`).
    pub fn new(num_vars: usize) -> Self {
        BddManager::with_order((0..num_vars as u32).collect())
    }

    /// A manager with an explicit order: `var_to_level[v]` is the level of
    /// variable `v` (level 0 is the root end). This is the ordering hook the
    /// CNF compiler's heuristics target.
    ///
    /// # Panics
    ///
    /// Panics if `var_to_level` is not a permutation of `0..len`.
    pub fn with_order(var_to_level: Vec<u32>) -> Self {
        let n = var_to_level.len();
        let mut level_to_var = vec![u32::MAX; n];
        for (v, &l) in var_to_level.iter().enumerate() {
            assert!(
                (l as usize) < n && level_to_var[l as usize] == u32::MAX,
                "variable order must be a permutation of 0..{n}"
            );
            level_to_var[l as usize] = v as u32;
        }
        BddManager {
            arena: NodeArena::new(),
            unique: UniqueTable::new(),
            cache: ApplyCache::new(),
            var_to_level,
            level_to_var,
            roots: Vec::new(),
            stats: DdStats::default(),
            apply_frames: Vec::new(),
            apply_results: Vec::new(),
            exists_frames: Vec::new(),
            exists_results: Vec::new(),
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.var_to_level.len()
    }

    /// The level of variable `v` under the manager's *current* order
    /// (sifting may move it).
    pub fn level_of(&self, v: usize) -> u32 {
        self.var_to_level[v]
    }

    /// The variable sitting at `level` (the inverse of
    /// [`BddManager::level_of`]).
    pub fn var_at_level(&self, level: u32) -> usize {
        self.level_to_var[level as usize] as usize
    }

    /// Decision nodes currently in the arena (terminals excluded; includes
    /// garbage not yet swept).
    pub fn node_count(&self) -> usize {
        self.arena.len() - 2
    }

    /// Kernel counters so far (cache/table counters sampled live).
    pub fn stats(&self) -> DdStats {
        let mut s = self.stats;
        s.live_nodes = self.node_count() as u64;
        s.cache_lookups = self.cache.lookups;
        s.cache_hits = self.cache.hits;
        s.cache_swapped_hits = self.cache.swapped_hits;
        s.unique_lookups = self.unique.lookups;
        s.unique_probes = self.unique.probes;
        s.unique_slots = self.unique.capacity() as u64;
        s.arena_bytes = (self.arena.bytes() + self.unique.bytes() + self.cache.bytes()) as u64;
        s
    }

    #[inline]
    pub(crate) fn level(&self, f: u32) -> u32 {
        self.arena.levels[f as usize]
    }

    /// The reduced node for `if var_at(level) then hi else lo`.
    pub(crate) fn mk(&mut self, level: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        debug_assert!(level < self.level(lo) && level < self.level(hi));
        self.unique.reserve(&self.arena);
        match self.unique.find(level, lo, hi, &self.arena) {
            Ok(idx) => idx,
            Err(slot) => {
                let idx = self.arena.push(level, lo, hi);
                self.unique.insert_at(slot, idx);
                self.stats.nodes += 1;
                let occupancy = (self.arena.len() - 2) as u64;
                if occupancy > self.stats.peak_nodes {
                    self.stats.peak_nodes = occupancy;
                }
                idx
            }
        }
    }

    /// Internal node constructor for the CNF compiler's clause chains
    /// (callers must keep `level` strictly above both children's levels).
    pub(crate) fn mk_raw(&mut self, level: u32, lo: Bdd, hi: Bdd) -> Bdd {
        Bdd(self.mk(level, lo.0, hi.0))
    }

    /// The function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: usize) -> Bdd {
        let level = self.var_to_level[v];
        Bdd(self.mk(level, 0, 1))
    }

    /// The literal of variable `v`: the variable itself when `positive`,
    /// its negation otherwise.
    pub fn literal(&mut self, v: usize, positive: bool) -> Bdd {
        let level = self.var_to_level[v];
        if positive {
            Bdd(self.mk(level, 0, 1))
        } else {
            Bdd(self.mk(level, 1, 0))
        }
    }

    // ------------------------------------------------------------ operations

    /// Conjunction.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Bdd(infallible(self.apply_iter(OP_AND, a.0, b.0, None)))
    }

    /// Disjunction.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Bdd(infallible(self.apply_iter(OP_OR, a.0, b.0, None)))
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Bdd(infallible(self.apply_iter(OP_XOR, a.0, b.0, None)))
    }

    /// Negation.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        Bdd(infallible(self.apply_iter(OP_XOR, a.0, 1, None)))
    }

    /// Budgeted conjunction: like [`BddManager::and`], but polls `budget`
    /// every [`OpBudget::poll_every`] node allocations.
    ///
    /// # Errors
    ///
    /// [`CompileError::NodeLimit`] / [`CompileError::Cancelled`] when the
    /// budget trips; the partially built subgraph stays in the arena as
    /// garbage for the next collection.
    pub fn and_budgeted(&mut self, a: Bdd, b: Bdd, budget: &OpBudget) -> Result<Bdd, CompileError> {
        self.apply_iter(OP_AND, a.0, b.0, Some(budget)).map(Bdd)
    }

    /// Budgeted disjunction; see [`BddManager::and_budgeted`].
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion exactly like [`BddManager::and_budgeted`].
    pub fn or_budgeted(&mut self, a: Bdd, b: Bdd, budget: &OpBudget) -> Result<Bdd, CompileError> {
        self.apply_iter(OP_OR, a.0, b.0, Some(budget)).map(Bdd)
    }

    /// Budgeted exclusive or; see [`BddManager::and_budgeted`].
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion exactly like [`BddManager::and_budgeted`].
    pub fn xor_budgeted(&mut self, a: Bdd, b: Bdd, budget: &OpBudget) -> Result<Bdd, CompileError> {
        self.apply_iter(OP_XOR, a.0, b.0, Some(budget)).map(Bdd)
    }

    /// Existential quantification of variable `v`: `∃v. f`.
    ///
    /// Used by the projected CNF compiler to eliminate auxiliary variables
    /// (Tseitin definitions, reified parities) the moment their last clause
    /// has been conjoined — the bucket-elimination discipline that keeps
    /// intermediate diagrams near the size of the final projection.
    pub fn exists(&mut self, f: Bdd, v: usize) -> Bdd {
        Bdd(infallible(self.exists_iter(f.0, v, None)))
    }

    /// Budgeted quantification; see [`BddManager::and_budgeted`].
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion exactly like [`BddManager::and_budgeted`].
    pub fn exists_budgeted(
        &mut self,
        f: Bdd,
        v: usize,
        budget: &OpBudget,
    ) -> Result<Bdd, CompileError> {
        self.exists_iter(f.0, v, Some(budget)).map(Bdd)
    }

    fn poll_budget(&self, budget: &OpBudget) -> Result<(), CompileError> {
        if budget.stop_flags.iter().any(|f| f.load(Ordering::Relaxed)) {
            return Err(CompileError::Cancelled);
        }
        if let Some(limit) = budget.node_limit {
            let nodes = self.node_count();
            if nodes > limit {
                return Err(CompileError::NodeLimit { nodes });
            }
        }
        Ok(())
    }

    /// The iterative apply loop: an explicit `Visit`/`Build` frame stack
    /// plus a result stack, so depth is heap-bounded. `Visit` resolves
    /// terminals and cache hits; `Build` consumes the two child results.
    fn apply_iter(
        &mut self,
        op: u8,
        a: u32,
        b: u32,
        budget: Option<&OpBudget>,
    ) -> Result<u32, CompileError> {
        if let Some(r) = apply_terminal(op, a, b) {
            return Ok(r);
        }
        let mut frames = std::mem::take(&mut self.apply_frames);
        let mut results = std::mem::take(&mut self.apply_results);
        frames.push(Frame::Visit { a, b });
        // Poll every `poll_every` *Build frames*: allocations never outrun
        // frames, so the node limit overshoots by at most `poll_every`, and
        // stop flags are honoured even on traversals whose `mk` calls all
        // collapse (e.g. `f ⊕ ¬f`, which allocates nothing).
        let poll_every = budget.map_or(u64::MAX, |b| b.poll_every);
        let mut since_poll = 0u64;
        let mut failed = None;
        'work: while let Some(frame) = frames.pop() {
            match frame {
                Frame::Visit { a, b } => {
                    if let Some(r) = apply_terminal(op, a, b) {
                        results.push(r);
                        continue;
                    }
                    // All the cached ops are commutative: canonicalize.
                    let (x, y, swapped) = if a <= b { (a, b, false) } else { (b, a, true) };
                    let key = pack_key(op, x, y);
                    if let Some(r) = self.cache.get(key) {
                        if swapped {
                            self.cache.swapped_hits += 1;
                        }
                        results.push(r);
                        continue;
                    }
                    let (lx, ly) = (self.level(x), self.level(y));
                    let level = lx.min(ly);
                    let (x0, x1) = if lx == level {
                        (self.arena.los[x as usize], self.arena.his[x as usize])
                    } else {
                        (x, x)
                    };
                    let (y0, y1) = if ly == level {
                        (self.arena.los[y as usize], self.arena.his[y as usize])
                    } else {
                        (y, y)
                    };
                    frames.push(Frame::Build { level, a: x, b: y });
                    frames.push(Frame::Visit { a: x1, b: y1 });
                    frames.push(Frame::Visit { a: x0, b: y0 });
                }
                Frame::Build { level, a, b } => {
                    let hi = results.pop().expect("apply: missing hi result");
                    let lo = results.pop().expect("apply: missing lo result");
                    let r = self.mk(level, lo, hi);
                    self.cache.put(pack_key(op, a, b), r);
                    results.push(r);
                    since_poll += 1;
                    if since_poll >= poll_every {
                        since_poll = 0;
                        let budget = budget.expect("a finite poll period implies a budget");
                        if let Err(e) = self.poll_budget(budget) {
                            failed = Some(e);
                            break 'work;
                        }
                    }
                }
            }
        }
        let outcome = match failed {
            Some(e) => Err(e),
            None => Ok(results.pop().expect("apply: missing final result")),
        };
        frames.clear();
        results.clear();
        self.apply_frames = frames;
        self.apply_results = results;
        outcome
    }

    /// The iterative quantification loop; memoized through the shared
    /// apply cache under an `Exists` tag keyed by *variable id* (not
    /// level), so entries stay valid across sifting.
    fn exists_iter(
        &mut self,
        f: u32,
        v: usize,
        budget: Option<&OpBudget>,
    ) -> Result<u32, CompileError> {
        let target = self.var_to_level[v];
        let vkey = v as u32;
        let mut frames = std::mem::take(&mut self.exists_frames);
        let mut results = std::mem::take(&mut self.exists_results);
        frames.push(EFrame::Visit(f));
        let poll_every = budget.map_or(u64::MAX, |b| b.poll_every);
        let mut since_poll = 0u64;
        let mut failed = None;
        'work: while let Some(frame) = frames.pop() {
            match frame {
                EFrame::Visit(f) => {
                    let level = self.level(f);
                    if level > target {
                        // The variable cannot occur below this node (this
                        // also covers the terminals).
                        results.push(f);
                        continue;
                    }
                    if level == target {
                        let (lo, hi) = (self.arena.los[f as usize], self.arena.his[f as usize]);
                        match self.apply_iter(OP_OR, lo, hi, budget) {
                            Ok(r) => results.push(r),
                            Err(e) => {
                                failed = Some(e);
                                break 'work;
                            }
                        }
                        continue;
                    }
                    let key = pack_key(OP_EXISTS, f, vkey);
                    if let Some(r) = self.cache.get(key) {
                        results.push(r);
                        continue;
                    }
                    frames.push(EFrame::Build(f));
                    frames.push(EFrame::Visit(self.arena.his[f as usize]));
                    frames.push(EFrame::Visit(self.arena.los[f as usize]));
                }
                EFrame::Build(f) => {
                    let hi = results.pop().expect("exists: missing hi result");
                    let lo = results.pop().expect("exists: missing lo result");
                    let r = self.mk(self.level(f), lo, hi);
                    self.cache.put(pack_key(OP_EXISTS, f, vkey), r);
                    results.push(r);
                    since_poll += 1;
                    if since_poll >= poll_every {
                        since_poll = 0;
                        let budget = budget.expect("a finite poll period implies a budget");
                        if let Err(e) = self.poll_budget(budget) {
                            failed = Some(e);
                            break 'work;
                        }
                    }
                }
            }
        }
        let outcome = match failed {
            Some(e) => Err(e),
            None => Ok(results.pop().expect("exists: missing final result")),
        };
        frames.clear();
        results.clear();
        self.exists_frames = frames;
        self.exists_results = results;
        outcome
    }

    // ------------------------------------------------------- roots and GC

    /// Registers `f` as a GC root: it and everything it reaches survive
    /// [`BddManager::collect_garbage`], and the registered handle is
    /// renumbered in place by the sweep (read it back with
    /// [`BddManager::root`]).
    pub fn protect(&mut self, f: Bdd) -> RootId {
        if let Some(slot) = self.roots.iter().position(Option::is_none) {
            self.roots[slot] = Some(f.0);
            RootId(slot)
        } else {
            self.roots.push(Some(f.0));
            RootId(self.roots.len() - 1)
        }
    }

    /// The current handle of a protected root (valid across collections).
    ///
    /// # Panics
    ///
    /// Panics if the slot was unprotected.
    pub fn root(&self, id: RootId) -> Bdd {
        Bdd(self.roots[id.0].expect("root slot was unprotected"))
    }

    /// Repoints a protected root at a new function.
    pub fn update_root(&mut self, id: RootId, f: Bdd) {
        self.roots[id.0] = Some(f.0);
    }

    /// Releases a root slot; the handle (and its subgraph) becomes garbage
    /// unless reachable from another root.
    pub fn unprotect(&mut self, id: RootId) {
        self.roots[id.0] = None;
    }

    /// Mark-and-sweep garbage collection with arena compaction: marks
    /// everything reachable from the protected roots, compacts survivors
    /// to the front of the arena (renumbering handles — protected roots
    /// are updated in place, all other outstanding handles dangle),
    /// rebuilds the unique table and drops the apply cache. Returns the
    /// number of nodes reclaimed.
    pub fn collect_garbage(&mut self) -> usize {
        let (marks, live) = self.mark_live();
        self.sweep(&marks, live)
    }

    /// Collects only when the dead-node share of the arena is at least
    /// `dead_ratio` (the compiler's trigger between clause conjunctions).
    /// Returns whether a sweep ran.
    pub fn collect_if_worthwhile(&mut self, dead_ratio: f64) -> bool {
        let total = self.node_count();
        if total == 0 {
            return false;
        }
        let (marks, live) = self.mark_live();
        let dead = total - live;
        if (dead as f64) < dead_ratio * total as f64 {
            return false;
        }
        self.sweep(&marks, live) > 0
    }

    /// Marks nodes reachable from the root registry; returns the mark
    /// bitset and the live decision-node count.
    fn mark_live(&self) -> (Vec<u64>, usize) {
        let len = self.arena.len();
        let mut marks = vec![0u64; len.div_ceil(64)];
        marks[0] |= 0b11; // terminals always survive
        let mut stack: Vec<u32> = self.roots.iter().flatten().copied().collect();
        let mut live = 0usize;
        while let Some(f) = stack.pop() {
            let (word, bit) = (f as usize / 64, 1u64 << (f % 64));
            if marks[word] & bit != 0 {
                continue;
            }
            marks[word] |= bit;
            live += 1; // terminals were pre-marked, so f ≥ 2 here
            stack.push(self.arena.los[f as usize]);
            stack.push(self.arena.his[f as usize]);
        }
        (marks, live)
    }

    fn sweep(&mut self, marks: &[u64], live: usize) -> usize {
        let len = self.arena.len();
        let reclaimed = len - 2 - live;
        if reclaimed == 0 {
            return 0;
        }
        // Pass 1: assign compacted indices (order-preserving). Children do
        // not necessarily precede parents once sifting has rewritten nodes
        // in place, so the full remap must exist before any node moves.
        let mut remap = vec![u32::MAX; len];
        remap[0] = 0;
        remap[1] = 1;
        let mut next = 2u32;
        for (idx, slot) in remap.iter_mut().enumerate().skip(2) {
            if marks[idx / 64] & (1 << (idx % 64)) != 0 {
                *slot = next;
                next += 1;
            }
        }
        // Pass 2: move survivors down (destination ≤ source, and every
        // source is read before anything at or above it is overwritten).
        for idx in 2..len {
            let n = remap[idx];
            if n == u32::MAX {
                continue;
            }
            let n = n as usize;
            self.arena.levels[n] = self.arena.levels[idx];
            self.arena.los[n] = remap[self.arena.los[idx] as usize];
            self.arena.his[n] = remap[self.arena.his[idx] as usize];
        }
        self.arena.truncate(next as usize);
        self.unique.rebuild(&self.arena);
        self.cache.clear();
        for r in self.roots.iter_mut().flatten() {
            *r = remap[*r as usize];
        }
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += reclaimed as u64;
        reclaimed
    }

    // ---------------------------------------------------------------- counting

    /// Exact number of satisfying assignments of `f` over all
    /// [`BddManager::num_vars`] variables.
    ///
    /// # Panics
    ///
    /// Panics if the count exceeds `u128` (only possible with more than 128
    /// variables and a near-vacuous function).
    pub fn model_count(&self, f: Bdd) -> u128 {
        self.weight_count(f, &[])[0]
    }

    /// Weight-stratified model count: `result[w]` is the number of
    /// satisfying assignments of `f` in which exactly `w` of the
    /// `indicators` literals are satisfied (a literal is `(variable,
    /// positive)`). The result has length `indicators.len() + 1` and sums to
    /// [`BddManager::model_count`]. One bottom-up pass over the diagram.
    ///
    /// # Panics
    ///
    /// Panics if an indicator variable is out of range or repeated, or if a
    /// coefficient exceeds `u128`.
    pub fn weight_count(&self, f: Bdd, indicators: &[(usize, bool)]) -> Vec<u128> {
        let counted: Vec<usize> = (0..self.num_vars()).collect();
        self.weight_count_over(f, &counted, indicators)
    }

    /// Weight-stratified *projected* model count: like
    /// [`BddManager::weight_count`], but assignments range over the
    /// `counted` variables only — every other variable must have been
    /// eliminated from `f` (see [`BddManager::exists`] and the projected
    /// CNF compiler) and contributes no factor. Indicator variables are
    /// implicitly counted.
    ///
    /// # Panics
    ///
    /// Panics if `f` still depends on a variable outside `counted` ∪
    /// `indicators`, if an indicator repeats, or on `u128` overflow.
    pub fn weight_count_over(
        &self,
        f: Bdd,
        counted: &[usize],
        indicators: &[(usize, bool)],
    ) -> Vec<u128> {
        let mut marker: Vec<Mark> = vec![Mark::Skip; self.num_vars()];
        for &v in counted {
            assert!(v < self.num_vars(), "counted variable {v} out of range");
            marker[self.var_to_level[v] as usize] = Mark::Count;
        }
        for &(v, positive) in indicators {
            assert!(v < self.num_vars(), "indicator variable {v} out of range");
            let l = self.var_to_level[v] as usize;
            assert!(
                !matches!(marker[l], Mark::Ind(_)),
                "indicator variable {v} repeated"
            );
            marker[l] = Mark::Ind(positive);
        }
        let width = indicators.len() + 1;
        let poly = self.count_iter(f.0, &marker, width);
        lift(poly, 0, self.cut_level(f.0), &marker, width)
    }

    /// The level of `f` clamped to the counting range (terminals sit on
    /// the sentinel level, but [`lift`] iterates real levels only).
    fn cut_level(&self, f: u32) -> u32 {
        self.level(f).min(self.num_vars() as u32)
    }

    /// Iterative bottom-up weight polynomial of `f` over the levels
    /// `level(f)..num_vars` (levels above `f`'s root are the caller's to
    /// account for via [`lift`]). Memoized per arena index.
    fn count_iter(&self, f: u32, marker: &[Mark], width: usize) -> Vec<u128> {
        if f == 0 {
            return vec![0; width];
        }
        if f == 1 {
            let mut p = vec![0; width];
            p[0] = 1;
            return p;
        }
        enum CFrame {
            Visit(u32),
            Build(u32),
        }
        let mut memo: Vec<Option<Box<[u128]>>> = vec![None; self.arena.len()];
        let poly_of = |memo: &[Option<Box<[u128]>>], g: u32| -> Vec<u128> {
            if g == 0 {
                vec![0; width]
            } else if g == 1 {
                let mut p = vec![0; width];
                p[0] = 1;
                p
            } else {
                memo[g as usize]
                    .as_deref()
                    .expect("child counted first")
                    .to_vec()
            }
        };
        let mut frames = vec![CFrame::Visit(f)];
        while let Some(frame) = frames.pop() {
            match frame {
                CFrame::Visit(g) => {
                    if g <= 1 || memo[g as usize].is_some() {
                        continue;
                    }
                    frames.push(CFrame::Build(g));
                    frames.push(CFrame::Visit(self.arena.his[g as usize]));
                    frames.push(CFrame::Visit(self.arena.los[g as usize]));
                }
                CFrame::Build(g) => {
                    let level = self.level(g);
                    let (lo, hi) = (self.arena.los[g as usize], self.arena.his[g as usize]);
                    let lo_p = lift(
                        poly_of(&memo, lo),
                        level + 1,
                        self.cut_level(lo),
                        marker,
                        width,
                    );
                    let hi_p = lift(
                        poly_of(&memo, hi),
                        level + 1,
                        self.cut_level(hi),
                        marker,
                        width,
                    );
                    let mut p = vec![0u128; width];
                    for w in 0..width {
                        let (lo_w, hi_w) = match marker[level as usize] {
                            // Indicator satisfied on the hi edge: hi models
                            // shift up one weight; dually for a negative
                            // indicator.
                            Mark::Ind(true) => (lo_p[w], if w > 0 { hi_p[w - 1] } else { 0 }),
                            Mark::Ind(false) => (if w > 0 { lo_p[w - 1] } else { 0 }, hi_p[w]),
                            Mark::Count => (lo_p[w], hi_p[w]),
                            Mark::Skip => panic!(
                                "projected-out variable {} still occurs in the diagram",
                                self.level_to_var[level as usize]
                            ),
                        };
                        p[w] = lo_w.checked_add(hi_w).expect("model count overflows u128");
                    }
                    memo[g as usize] = Some(p.into_boxed_slice());
                }
            }
        }
        memo[f as usize].take().expect("root counted").into_vec()
    }
}

/// Resolves an `apply` pair that needs no recursion: constants, identical
/// operands, identity/absorbing elements.
#[inline]
fn apply_terminal(op: u8, a: u32, b: u32) -> Option<u32> {
    match op {
        OP_AND => {
            if a == 0 || b == 0 {
                Some(0)
            } else if a == 1 {
                Some(b)
            } else if b == 1 || a == b {
                Some(a)
            } else {
                None
            }
        }
        OP_OR => {
            if a == 1 || b == 1 {
                Some(1)
            } else if a == 0 {
                Some(b)
            } else if b == 0 || a == b {
                Some(a)
            } else {
                None
            }
        }
        _ => {
            if a == 0 {
                Some(b)
            } else if b == 0 {
                Some(a)
            } else if a == b {
                Some(0)
            } else {
                None
            }
        }
    }
}

/// Unwraps an operation run without a budget (the only error sources are
/// budget trips, so `Err` is unreachable).
fn infallible(r: Result<u32, CompileError>) -> u32 {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("unbudgeted BDD operation failed: {e}"),
    }
}

/// How a level participates in a count: not at all (projected out), as an
/// anonymous counted variable, or as a weight indicator with a polarity.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Mark {
    Skip,
    Count,
    Ind(bool),
}

/// Accounts for the free variables at levels `from..to`: a counted level
/// doubles every coefficient, an indicator level convolves with `(1 + x)`
/// (the free variable contributes weight 0 or 1), a projected-out level
/// contributes nothing.
pub(crate) fn lift(
    mut p: Vec<u128>,
    from: u32,
    to: u32,
    marker: &[Mark],
    width: usize,
) -> Vec<u128> {
    for level in from..to {
        match marker[level as usize] {
            Mark::Ind(_) => {
                let mut next = vec![0u128; width];
                for w in 0..width {
                    let mut c = p[w];
                    if w > 0 {
                        c = c.checked_add(p[w - 1]).expect("model count overflows u128");
                    }
                    next[w] = c;
                }
                p = next;
            }
            Mark::Count => {
                for c in &mut p {
                    *c = c.checked_mul(2).expect("model count overflows u128");
                }
            }
            Mark::Skip => {}
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut m = BddManager::new(2);
        assert_eq!(m.model_count(Bdd::TRUE), 4);
        assert_eq!(m.model_count(Bdd::FALSE), 0);
        let a = m.var(0);
        assert_eq!(m.model_count(a), 2);
        let na = m.literal(0, false);
        assert_eq!(m.not(a), na);
        assert_eq!(m.model_count(na), 2);
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let lhs = m.or(ab, a); // absorption: a·b + a = a
        assert_eq!(lhs, a);
    }

    #[test]
    fn xor_chain_counts_parity() {
        // x0 ^ x1 ^ x2 = 1 has exactly half the assignments.
        let mut m = BddManager::new(3);
        let mut acc = Bdd::FALSE;
        for v in 0..3 {
            let x = m.var(v);
            acc = m.xor(acc, x);
        }
        assert_eq!(m.model_count(acc), 4);
        // An XOR chain is linear in the number of variables (the arena also
        // holds the intermediate literals/negations, hence the slack).
        assert!(m.node_count() <= 4 * 3, "{}", m.node_count());
    }

    #[test]
    fn weight_count_stratifies() {
        // f = true over 3 vars, indicators = all three positives: binomial
        // coefficients.
        let m = BddManager::new(3);
        let w = m.weight_count(Bdd::TRUE, &[(0, true), (1, true), (2, true)]);
        assert_eq!(w, vec![1, 3, 3, 1]);
    }

    #[test]
    fn weight_count_respects_polarity() {
        // f = x0 with one *negative* indicator on x0: every model has the
        // indicator unsatisfied.
        let mut m = BddManager::new(2);
        let f = m.var(0);
        assert_eq!(m.weight_count(f, &[(0, false)]), vec![2, 0]);
        assert_eq!(m.weight_count(f, &[(0, true)]), vec![0, 2]);
        // Indicator on a variable f does not mention: free, so it splits the
        // count evenly.
        assert_eq!(m.weight_count(f, &[(1, true)]), vec![1, 1]);
    }

    #[test]
    fn weight_count_sums_to_model_count() {
        let mut m = BddManager::new(4);
        let (a, b, c) = (m.var(0), m.var(1), m.var(3));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let total = m.model_count(f);
        let w = m.weight_count(f, &[(0, true), (2, false), (3, true)]);
        assert_eq!(w.iter().sum::<u128>(), total);
    }

    #[test]
    fn exists_quantifies_one_variable() {
        // ∃b. (a ∧ b) = a;  ∃a. (a ∧ b) = b;  ∃a. (a ⊕ b) = true.
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        assert_eq!(m.exists(ab, 1), a);
        assert_eq!(m.exists(ab, 0), b);
        let x = m.xor(a, b);
        assert_eq!(m.exists(x, 0), Bdd::TRUE);
        // Quantifying a variable the function ignores is the identity.
        assert_eq!(m.exists(a, 1), a);
    }

    #[test]
    #[should_panic(expected = "projected-out")]
    fn counting_over_live_projected_variable_panics() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let _ = m.weight_count_over(a, &[1], &[]);
    }

    #[test]
    fn custom_order_preserves_semantics() {
        // Same function under reversed order: same counts.
        let build = |m: &mut BddManager| {
            let (a, b, c) = (m.var(0), m.var(1), m.var(2));
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let mut natural = BddManager::new(3);
        let f1 = build(&mut natural);
        let mut reversed = BddManager::with_order(vec![2, 1, 0]);
        let f2 = build(&mut reversed);
        assert_eq!(natural.model_count(f1), reversed.model_count(f2));
        assert_eq!(
            natural.weight_count(f1, &[(1, true)]),
            reversed.weight_count(f2, &[(1, true)])
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation_order() {
        let _ = BddManager::with_order(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_repeated_indicator() {
        let m = BddManager::new(2);
        let _ = m.weight_count(Bdd::TRUE, &[(0, true), (0, false)]);
    }

    #[test]
    fn gc_reclaims_garbage_and_preserves_roots() {
        let mut m = BddManager::new(8);
        // Build a function, then a pile of garbage that only GC can drop.
        let mut f = Bdd::TRUE;
        for v in 0..8 {
            let x = m.var(v);
            f = m.and(f, x);
        }
        let count_before = m.model_count(f);
        let nodes_before = m.node_count();
        for v in 0..7 {
            let x = m.var(v);
            let y = m.var(v + 1);
            let _garbage = m.xor(x, y);
        }
        assert!(m.node_count() > nodes_before);
        let id = m.protect(f);
        let reclaimed = m.collect_garbage();
        assert!(reclaimed > 0, "xor garbage should be reclaimed");
        let f = m.root(id);
        assert_eq!(m.model_count(f), count_before);
        assert_eq!(m.node_count(), 8, "the AND chain is exactly 8 nodes");
        assert_eq!(m.stats().gc_runs, 1);
        assert_eq!(m.stats().gc_reclaimed, reclaimed as u64);
        // The manager stays fully usable after compaction.
        let x = m.var(3);
        let g = m.and(f, x);
        assert_eq!(g, f);
        m.unprotect(id);
    }

    #[test]
    fn gc_respects_dead_ratio_trigger() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let _id = m.protect(ab);
        // Everything reachable: no sweep at any threshold.
        let _also_roots = [a, b].map(|f| m.protect(f));
        assert!(!m.collect_if_worthwhile(0.0));
        assert_eq!(m.stats().gc_runs, 0);
    }

    #[test]
    fn swapped_operands_hit_the_canonical_cache_entry() {
        let mut m = BddManager::new(6);
        // Two distinct non-constant functions so the pair survives the
        // terminal fast path in both orders.
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let bc = m.and(b, c);
        let _f = m.and(ab, bc);
        let swapped_before = m.stats().cache_swapped_hits;
        let _g = m.and(bc, ab);
        let s = m.stats();
        assert!(
            s.cache_swapped_hits > swapped_before,
            "reversed operands should hit the canonicalized entry: {s:?}"
        );
        assert!(s.cache_hit_rate() > 0.0);
        assert!(s.unique_probe_length() >= 1.0);
        assert!(s.unique_load_factor() > 0.0);
    }

    #[test]
    fn budgeted_apply_trips_near_the_node_limit() {
        // Two interleaved AND chains; their conjunction allocates ~n fresh
        // nodes inside ONE apply call. The poll must trip the limit within
        // poll_every allocations, not after the call completes.
        let n = 20_000usize;
        let mut m = BddManager::new(n);
        let mut build_chain = |start: usize| {
            let mut acc = 1u32;
            for level in (start..n).step_by(2).rev() {
                acc = m.mk(level as u32, 0, acc);
            }
            Bdd(acc)
        };
        let f = build_chain(0);
        let g = build_chain(1);
        let limit = m.node_count() + 5_000;
        let budget = OpBudget {
            node_limit: Some(limit),
            stop_flags: &[],
            poll_every: 256,
        };
        let err = m.and_budgeted(f, g, &budget).unwrap_err();
        match err {
            CompileError::NodeLimit { nodes } => {
                assert!(nodes > limit, "trip implies a breach: {nodes} vs {limit}");
                assert!(
                    nodes <= limit + 256 + 2,
                    "overshoot must stay within one poll interval: {nodes} vs {limit}"
                );
            }
            other => panic!("expected NodeLimit, got {other}"),
        }
    }

    #[test]
    fn budgeted_apply_honours_stop_flags() {
        let mut m = BddManager::new(64);
        let mut f = Bdd::TRUE;
        for v in 0..64 {
            let x = m.var(v);
            f = m.and(f, x);
        }
        let g = m.not(f);
        let stop = Arc::new(AtomicBool::new(true));
        let flags = [Arc::new(AtomicBool::new(false)), stop];
        let budget = OpBudget {
            node_limit: None,
            stop_flags: &flags,
            poll_every: 1,
        };
        // A raised flag aborts as soon as the first poll fires.
        let err = m.xor_budgeted(f, g, &budget).unwrap_err();
        assert_eq!(err, CompileError::Cancelled);
    }

    #[test]
    fn deep_chains_survive_a_tiny_call_stack() {
        // 120k levels: the old recursive kernel needed ~120k stack frames
        // for a single traversal; the iterative loops run in 512 KiB.
        let handle = std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(|| {
                let n = 120_000usize;
                let mut m = BddManager::new(n);
                // Bottom-up AND chain: coefficients stay tiny, so counting
                // cannot overflow u128 despite the variable count.
                let mut acc = 1u32;
                for level in (0..n as u32).rev() {
                    acc = m.mk(level, 0, acc);
                }
                let f = Bdd(acc);
                let nf = m.not(f);
                assert_eq!(m.not(nf), f);
                // ∃x_mid over the chain: or(lo, hi) collapses one link.
                let g = m.exists(f, n / 2);
                assert_eq!(m.node_count() as u64, m.stats().nodes);
                // Weight count over two indicators walks the whole chain.
                let w = m.weight_count_over(
                    f,
                    &(0..n).collect::<Vec<_>>(),
                    &[(0, true), (n - 1, true)],
                );
                assert_eq!(w, vec![0, 0, 1]);
                let id = m.protect(g);
                m.collect_garbage();
                let g = m.root(id);
                let wg = m.weight_count_over(g, &(0..n).collect::<Vec<_>>(), &[]);
                assert_eq!(wg, vec![2]);
            })
            .expect("spawn small-stack thread");
        handle.join().expect("deep-chain thread panicked");
    }
}
