//! The BDD kernel: hash-consed reduced ordered binary decision diagrams
//! with an apply cache and exact (weight-stratified) model counting.
//!
//! Nodes live in one arena owned by a [`BddManager`]; structural sharing is
//! enforced by a unique table, so semantic equality of functions is pointer
//! equality of [`Bdd`] handles. The manager fixes a variable order at
//! construction ([`BddManager::with_order`] is the ordering hook used by the
//! CNF compiler's heuristics); levels run top (0) to bottom
//! (`num_vars − 1`), with the terminals on a virtual level `num_vars`.

use std::collections::HashMap;

/// A handle to a BDD node inside its [`BddManager`].
///
/// Handles are canonical: two handles are equal iff they denote the same
/// boolean function (under the manager's variable order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// True for the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The arena index (stable for the manager's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One decision node: branch on the variable at `level`, `lo` when false,
/// `hi` when true.
#[derive(Clone, Copy, Debug)]
struct Node {
    level: u32,
    lo: Bdd,
    hi: Bdd,
}

/// Binary operations served by the shared apply cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// Counters of the decision-diagram kernel, reported alongside
/// [`veriqec_sat::SolverStats`] by the engine's counting jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Decision nodes allocated (excluding the two terminals; shared nodes
    /// count once).
    pub nodes: u64,
    /// Apply-cache lookups.
    pub cache_lookups: u64,
    /// Apply-cache hits.
    pub cache_hits: u64,
}

impl std::ops::AddAssign for DdStats {
    fn add_assign(&mut self, rhs: DdStats) {
        self.nodes += rhs.nodes;
        self.cache_lookups += rhs.cache_lookups;
        self.cache_hits += rhs.cache_hits;
    }
}

impl std::iter::Sum for DdStats {
    fn sum<I: Iterator<Item = DdStats>>(iter: I) -> DdStats {
        let mut total = DdStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

/// An arena of hash-consed BDD nodes over a fixed variable order.
///
/// # Examples
///
/// ```
/// use veriqec_dd::{Bdd, BddManager};
///
/// let mut m = BddManager::new(3);
/// let (a, b, c) = (m.var(0), m.var(1), m.var(2));
/// let ab = m.and(a, b);
/// let f = m.or(ab, c);
/// assert_eq!(m.model_count(f), 5); // truth table of a·b + c has 5 ones
/// assert_eq!(m.model_count(Bdd::TRUE), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    /// `(level, lo, hi) → node`, the hash-consing table.
    unique: HashMap<(u32, Bdd, Bdd), Bdd>,
    /// `(op, a, b) → result`, with commutative operands normalized.
    cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    /// `var → level` (a permutation of `0..num_vars`).
    var_to_level: Vec<u32>,
    /// `level → var`, the inverse permutation.
    level_to_var: Vec<u32>,
    stats: DdStats,
}

impl BddManager {
    /// A manager over `num_vars` variables in natural order (variable `v` at
    /// level `v`).
    pub fn new(num_vars: usize) -> Self {
        BddManager::with_order((0..num_vars as u32).collect())
    }

    /// A manager with an explicit order: `var_to_level[v]` is the level of
    /// variable `v` (level 0 is the root end). This is the ordering hook the
    /// CNF compiler's heuristics target.
    ///
    /// # Panics
    ///
    /// Panics if `var_to_level` is not a permutation of `0..len`.
    pub fn with_order(var_to_level: Vec<u32>) -> Self {
        let n = var_to_level.len();
        let mut level_to_var = vec![u32::MAX; n];
        for (v, &l) in var_to_level.iter().enumerate() {
            assert!(
                (l as usize) < n && level_to_var[l as usize] == u32::MAX,
                "variable order must be a permutation of 0..{n}"
            );
            level_to_var[l as usize] = v as u32;
        }
        let terminal_level = n as u32;
        BddManager {
            nodes: vec![
                Node {
                    level: terminal_level,
                    lo: Bdd::FALSE,
                    hi: Bdd::FALSE,
                },
                Node {
                    level: terminal_level,
                    lo: Bdd::TRUE,
                    hi: Bdd::TRUE,
                },
            ],
            unique: HashMap::new(),
            cache: HashMap::new(),
            var_to_level,
            level_to_var,
            stats: DdStats::default(),
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.var_to_level.len()
    }

    /// The level of variable `v` under the manager's order.
    pub fn level_of(&self, v: usize) -> u32 {
        self.var_to_level[v]
    }

    /// The variable sitting at `level` (the inverse of
    /// [`BddManager::level_of`]).
    pub fn var_at_level(&self, level: u32) -> usize {
        self.level_to_var[level as usize] as usize
    }

    /// Live decision nodes allocated so far (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    /// Kernel counters so far.
    pub fn stats(&self) -> DdStats {
        self.stats
    }

    fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.index()].level
    }

    /// The reduced node for `if var(level) then hi else lo`.
    fn mk(&mut self, level: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(level < self.level(lo) && level < self.level(hi));
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(Node { level, lo, hi });
        self.stats.nodes += 1;
        self.unique.insert((level, lo, hi), id);
        id
    }

    /// Internal node constructor for the CNF compiler's clause chains
    /// (callers must keep `level` strictly above both children's levels).
    pub(crate) fn mk_raw(&mut self, level: u32, lo: Bdd, hi: Bdd) -> Bdd {
        self.mk(level, lo, hi)
    }

    /// The function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: usize) -> Bdd {
        let level = self.var_to_level[v];
        self.mk(level, Bdd::FALSE, Bdd::TRUE)
    }

    /// The literal of variable `v`: the variable itself when `positive`,
    /// its negation otherwise.
    pub fn literal(&mut self, v: usize, positive: bool) -> Bdd {
        let level = self.var_to_level[v];
        if positive {
            self.mk(level, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk(level, Bdd::TRUE, Bdd::FALSE)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::Xor, a, b)
    }

    /// Negation.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        self.apply(Op::Xor, a, Bdd::TRUE)
    }

    fn apply(&mut self, op: Op, a: Bdd, b: Bdd) -> Bdd {
        // Terminal/absorption cases that need no recursion.
        match op {
            Op::And => {
                if a == Bdd::FALSE || b == Bdd::FALSE {
                    return Bdd::FALSE;
                }
                if a == Bdd::TRUE {
                    return b;
                }
                if b == Bdd::TRUE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == Bdd::TRUE || b == Bdd::TRUE {
                    return Bdd::TRUE;
                }
                if a == Bdd::FALSE {
                    return b;
                }
                if b == Bdd::FALSE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == Bdd::FALSE {
                    return b;
                }
                if b == Bdd::FALSE {
                    return a;
                }
                if a == b {
                    return Bdd::FALSE;
                }
                if a == Bdd::TRUE && b == Bdd::TRUE {
                    return Bdd::FALSE;
                }
            }
        }
        // All three ops are commutative: normalize the cache key.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        self.stats.cache_lookups += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        let (la, lb) = (self.level(a), self.level(b));
        let level = la.min(lb);
        let (a0, a1) = if la == level {
            let n = self.nodes[a.index()];
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if lb == level {
            let n = self.nodes[b.index()];
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(level, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Existential quantification of variable `v`: `∃v. f`.
    ///
    /// Used by the projected CNF compiler to eliminate auxiliary variables
    /// (Tseitin definitions, reified parities) the moment their last clause
    /// has been conjoined — the bucket-elimination discipline that keeps
    /// intermediate diagrams near the size of the final projection.
    pub fn exists(&mut self, f: Bdd, v: usize) -> Bdd {
        let target = self.var_to_level[v];
        let mut memo = HashMap::new();
        self.exists_rec(f, target, &mut memo)
    }

    fn exists_rec(&mut self, f: Bdd, target: u32, memo: &mut HashMap<Bdd, Bdd>) -> Bdd {
        let level = self.level(f);
        if level > target {
            return f; // the variable cannot occur below this node
        }
        if level == target {
            let Node { lo, hi, .. } = self.nodes[f.index()];
            return self.apply(Op::Or, lo, hi);
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let Node { level, lo, hi } = self.nodes[f.index()];
        let nlo = self.exists_rec(lo, target, memo);
        let nhi = self.exists_rec(hi, target, memo);
        let r = self.mk(level, nlo, nhi);
        memo.insert(f, r);
        r
    }

    // ---------------------------------------------------------------- counting

    /// Exact number of satisfying assignments of `f` over all
    /// [`BddManager::num_vars`] variables.
    ///
    /// # Panics
    ///
    /// Panics if the count exceeds `u128` (only possible with more than 128
    /// variables and a near-vacuous function).
    pub fn model_count(&self, f: Bdd) -> u128 {
        self.weight_count(f, &[])[0]
    }

    /// Weight-stratified model count: `result[w]` is the number of
    /// satisfying assignments of `f` in which exactly `w` of the
    /// `indicators` literals are satisfied (a literal is `(variable,
    /// positive)`). The result has length `indicators.len() + 1` and sums to
    /// [`BddManager::model_count`]. One bottom-up pass over the diagram.
    ///
    /// # Panics
    ///
    /// Panics if an indicator variable is out of range or repeated, or if a
    /// coefficient exceeds `u128`.
    pub fn weight_count(&self, f: Bdd, indicators: &[(usize, bool)]) -> Vec<u128> {
        let counted: Vec<usize> = (0..self.num_vars()).collect();
        self.weight_count_over(f, &counted, indicators)
    }

    /// Weight-stratified *projected* model count: like
    /// [`BddManager::weight_count`], but assignments range over the
    /// `counted` variables only — every other variable must have been
    /// eliminated from `f` (see [`BddManager::exists`] and the projected
    /// CNF compiler) and contributes no factor. Indicator variables are
    /// implicitly counted.
    ///
    /// # Panics
    ///
    /// Panics if `f` still depends on a variable outside `counted` ∪
    /// `indicators`, if an indicator repeats, or on `u128` overflow.
    pub fn weight_count_over(
        &self,
        f: Bdd,
        counted: &[usize],
        indicators: &[(usize, bool)],
    ) -> Vec<u128> {
        let mut marker: Vec<Mark> = vec![Mark::Skip; self.num_vars()];
        for &v in counted {
            assert!(v < self.num_vars(), "counted variable {v} out of range");
            marker[self.var_to_level[v] as usize] = Mark::Count;
        }
        for &(v, positive) in indicators {
            assert!(v < self.num_vars(), "indicator variable {v} out of range");
            let l = self.var_to_level[v] as usize;
            assert!(
                !matches!(marker[l], Mark::Ind(_)),
                "indicator variable {v} repeated"
            );
            marker[l] = Mark::Ind(positive);
        }
        let width = indicators.len() + 1;
        let mut memo: HashMap<Bdd, Vec<u128>> = HashMap::new();
        let poly = self.count_rec(f, &marker, width, &mut memo);
        lift(poly, 0, self.level(f), &marker, width)
    }

    /// Weight polynomial of `f` over the variables at levels
    /// `level(f)..num_vars` (levels above `f`'s root are the caller's to
    /// account for via [`lift`]).
    fn count_rec(
        &self,
        f: Bdd,
        marker: &[Mark],
        width: usize,
        memo: &mut HashMap<Bdd, Vec<u128>>,
    ) -> Vec<u128> {
        if f == Bdd::FALSE {
            return vec![0; width];
        }
        if f == Bdd::TRUE {
            let mut p = vec![0; width];
            p[0] = 1;
            return p;
        }
        if let Some(p) = memo.get(&f) {
            return p.clone();
        }
        let Node { level, lo, hi } = self.nodes[f.index()];
        let lo_p = {
            let p = self.count_rec(lo, marker, width, memo);
            lift(p, level + 1, self.level(lo), marker, width)
        };
        let hi_p = {
            let p = self.count_rec(hi, marker, width, memo);
            lift(p, level + 1, self.level(hi), marker, width)
        };
        let mut p = vec![0u128; width];
        for w in 0..width {
            let (lo_w, hi_w) = match marker[level as usize] {
                // Indicator satisfied on the hi edge: hi models shift up one
                // weight; dually for a negative indicator.
                Mark::Ind(true) => (lo_p[w], if w > 0 { hi_p[w - 1] } else { 0 }),
                Mark::Ind(false) => (if w > 0 { lo_p[w - 1] } else { 0 }, hi_p[w]),
                Mark::Count => (lo_p[w], hi_p[w]),
                Mark::Skip => panic!(
                    "projected-out variable {} still occurs in the diagram",
                    self.level_to_var[level as usize]
                ),
            };
            p[w] = lo_w.checked_add(hi_w).expect("model count overflows u128");
        }
        memo.insert(f, p.clone());
        p
    }
}

/// How a level participates in a count: not at all (projected out), as an
/// anonymous counted variable, or as a weight indicator with a polarity.
#[derive(Clone, Copy, Debug)]
enum Mark {
    Skip,
    Count,
    Ind(bool),
}

/// Accounts for the free variables at levels `from..to`: a counted level
/// doubles every coefficient, an indicator level convolves with `(1 + x)`
/// (the free variable contributes weight 0 or 1), a projected-out level
/// contributes nothing.
fn lift(mut p: Vec<u128>, from: u32, to: u32, marker: &[Mark], width: usize) -> Vec<u128> {
    for level in from..to {
        match marker[level as usize] {
            Mark::Ind(_) => {
                let mut next = vec![0u128; width];
                for w in 0..width {
                    let mut c = p[w];
                    if w > 0 {
                        c = c.checked_add(p[w - 1]).expect("model count overflows u128");
                    }
                    next[w] = c;
                }
                p = next;
            }
            Mark::Count => {
                for c in &mut p {
                    *c = c.checked_mul(2).expect("model count overflows u128");
                }
            }
            Mark::Skip => {}
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut m = BddManager::new(2);
        assert_eq!(m.model_count(Bdd::TRUE), 4);
        assert_eq!(m.model_count(Bdd::FALSE), 0);
        let a = m.var(0);
        assert_eq!(m.model_count(a), 2);
        let na = m.literal(0, false);
        assert_eq!(m.not(a), na);
        assert_eq!(m.model_count(na), 2);
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let lhs = m.or(ab, a); // absorption: a·b + a = a
        assert_eq!(lhs, a);
    }

    #[test]
    fn xor_chain_counts_parity() {
        // x0 ^ x1 ^ x2 = 1 has exactly half the assignments.
        let mut m = BddManager::new(3);
        let mut acc = Bdd::FALSE;
        for v in 0..3 {
            let x = m.var(v);
            acc = m.xor(acc, x);
        }
        assert_eq!(m.model_count(acc), 4);
        // An XOR chain is linear in the number of variables (the arena also
        // holds the intermediate literals/negations, hence the slack).
        assert!(m.node_count() <= 4 * 3, "{}", m.node_count());
    }

    #[test]
    fn weight_count_stratifies() {
        // f = true over 3 vars, indicators = all three positives: binomial
        // coefficients.
        let m = BddManager::new(3);
        let w = m.weight_count(Bdd::TRUE, &[(0, true), (1, true), (2, true)]);
        assert_eq!(w, vec![1, 3, 3, 1]);
    }

    #[test]
    fn weight_count_respects_polarity() {
        // f = x0 with one *negative* indicator on x0: every model has the
        // indicator unsatisfied.
        let mut m = BddManager::new(2);
        let f = m.var(0);
        assert_eq!(m.weight_count(f, &[(0, false)]), vec![2, 0]);
        assert_eq!(m.weight_count(f, &[(0, true)]), vec![0, 2]);
        // Indicator on a variable f does not mention: free, so it splits the
        // count evenly.
        assert_eq!(m.weight_count(f, &[(1, true)]), vec![1, 1]);
    }

    #[test]
    fn weight_count_sums_to_model_count() {
        let mut m = BddManager::new(4);
        let (a, b, c) = (m.var(0), m.var(1), m.var(3));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let total = m.model_count(f);
        let w = m.weight_count(f, &[(0, true), (2, false), (3, true)]);
        assert_eq!(w.iter().sum::<u128>(), total);
    }

    #[test]
    fn exists_quantifies_one_variable() {
        // ∃b. (a ∧ b) = a;  ∃a. (a ∧ b) = b;  ∃a. (a ⊕ b) = true.
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        assert_eq!(m.exists(ab, 1), a);
        assert_eq!(m.exists(ab, 0), b);
        let x = m.xor(a, b);
        assert_eq!(m.exists(x, 0), Bdd::TRUE);
        // Quantifying a variable the function ignores is the identity.
        assert_eq!(m.exists(a, 1), a);
    }

    #[test]
    #[should_panic(expected = "projected-out")]
    fn counting_over_live_projected_variable_panics() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let _ = m.weight_count_over(a, &[1], &[]);
    }

    #[test]
    fn custom_order_preserves_semantics() {
        // Same function under reversed order: same counts.
        let build = |m: &mut BddManager| {
            let (a, b, c) = (m.var(0), m.var(1), m.var(2));
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let mut natural = BddManager::new(3);
        let f1 = build(&mut natural);
        let mut reversed = BddManager::with_order(vec![2, 1, 0]);
        let f2 = build(&mut reversed);
        assert_eq!(natural.model_count(f1), reversed.model_count(f2));
        assert_eq!(
            natural.weight_count(f1, &[(1, true)]),
            reversed.weight_count(f2, &[(1, true)])
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation_order() {
        let _ = BddManager::with_order(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_repeated_indicator() {
        let m = BddManager::new(2);
        let _ = m.weight_count(Bdd::TRUE, &[(0, true), (0, false)]);
    }
}
