//! CNF → BDD compilation with variable-ordering heuristics, garbage
//! collection, and growth-triggered dynamic reordering.
//!
//! The compiler consumes the SAT layer's clausal form
//! ([`veriqec_sat::Cnf`]), picks a variable order (the dominant cost factor
//! for decision diagrams), builds one linear-sized BDD per clause, and
//! conjoins them in input order; [`compile_cnf_projected`] additionally
//! eliminates designated auxiliary variables the moment their last clause
//! lands (bucket elimination), which is what keeps dense instances within
//! reach.
//!
//! The budget (node limit, stop flags) is polled *inside* every
//! conjunction and quantification, every [`CompileConfig::poll_interval`]
//! node allocations — a single runaway apply can no longer overshoot the
//! limit by more than one poll interval (the old clause-granularity blind
//! spot). Between conjunctions the compiler may run a mark-and-sweep
//! collection (when the dead-node share passes
//! [`CompileConfig::gc_dead_ratio`]) and a sifting pass (when the diagram
//! outgrows the [`ReorderConfig`] trigger), both invisible to the counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use veriqec_sat::{Cnf, Lit};

use crate::bdd::{Bdd, BddManager, OpBudget};
use crate::reorder::ReorderConfig;

/// Variable-ordering heuristics for [`compile_cnf`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// Keep the DIMACS variable numbering.
    Natural,
    /// Order variables by first occurrence scanning the clause list. The
    /// default: the SMT layer allocates auxiliaries right where they are
    /// defined, so first-use order inherits that interleaving — measured
    /// across the code zoo it is the consistent winner once projected
    /// compilation eliminates auxiliaries early.
    #[default]
    FirstUse,
    /// The FORCE heuristic (Aloul–Markov–Sakallah): iteratively place each
    /// variable at the center of gravity of its clauses, pulling
    /// definitionally-linked variables (e.g. Tseitin outputs) next to their
    /// inputs. Cheap (`O(iterations · literals)`) and the best choice for
    /// *unprojected* compilation of scattered inputs; under projected
    /// compilation its global averaging can wreck an already-good
    /// interleaving (measured: 10–100× more nodes on dense codes).
    Force,
}

/// Budget, ordering, and memory-management knobs for [`compile_cnf`].
#[derive(Clone, Debug)]
pub struct CompileConfig {
    /// Variable-ordering heuristic.
    pub order: OrderHeuristic,
    /// Refinement passes for [`OrderHeuristic::Force`].
    pub force_iterations: usize,
    /// Abort compilation once the manager holds this many nodes.
    pub node_limit: Option<usize>,
    /// Cooperative cancellation: compilation aborts when *any* of these
    /// flags is raised, so callers and drivers (e.g. the engine's per-job
    /// cancel flag) can layer their flags without displacing each other.
    /// Polled inside apply/exists every [`CompileConfig::poll_interval`]
    /// node allocations.
    pub stop_flags: Vec<Arc<AtomicBool>>,
    /// Node allocations between budget polls inside a single conjunction
    /// or quantification; the node limit can overshoot by at most this.
    pub poll_interval: u64,
    /// Run a garbage collection between conjunctions when at least this
    /// share of the arena is dead (`None` disables GC; the final diagram
    /// is then left uncompacted).
    pub gc_dead_ratio: Option<f64>,
    /// Growth-triggered sifting reordering (`None` disables it).
    pub reorder: Option<ReorderConfig>,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            order: OrderHeuristic::default(),
            force_iterations: 4,
            node_limit: None,
            stop_flags: Vec::new(),
            poll_interval: 1024,
            gc_dead_ratio: Some(0.5),
            reorder: Some(ReorderConfig::default()),
        }
    }
}

/// Why a compilation was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The node arena outgrew [`CompileConfig::node_limit`].
    NodeLimit {
        /// Nodes allocated when the limit tripped.
        nodes: usize,
    },
    /// The stop flag was raised.
    Cancelled,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NodeLimit { nodes } => {
                write!(f, "BDD compilation exceeded the node limit ({nodes} nodes)")
            }
            CompileError::Cancelled => write!(f, "BDD compilation cancelled"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled CNF: the manager owning the diagram plus the root function.
#[derive(Clone, Debug)]
pub struct CompiledCnf {
    /// The node arena (needed for every subsequent operation or count).
    pub manager: BddManager,
    /// The conjunction of all clauses.
    pub root: Bdd,
}

/// Computes a `var → level` order for `cnf` under `heuristic`.
pub fn variable_order(cnf: &Cnf, heuristic: OrderHeuristic, force_iterations: usize) -> Vec<u32> {
    let n = cnf.num_vars;
    match heuristic {
        OrderHeuristic::Natural => (0..n as u32).collect(),
        OrderHeuristic::FirstUse => {
            let mut level_of = vec![u32::MAX; n];
            let mut next = 0u32;
            for clause in &cnf.clauses {
                for l in clause {
                    let v = l.var().index();
                    if level_of[v] == u32::MAX {
                        level_of[v] = next;
                        next += 1;
                    }
                }
            }
            for l in &mut level_of {
                if *l == u32::MAX {
                    *l = next;
                    next += 1;
                }
            }
            level_of
        }
        OrderHeuristic::Force => force_order(cnf, force_iterations),
    }
}

/// The FORCE ordering: start from the natural positions and repeatedly move
/// every variable to the mean center of gravity of the clauses mentioning
/// it. Returns `var → level`.
fn force_order(cnf: &Cnf, iterations: usize) -> Vec<u32> {
    let n = cnf.num_vars;
    let mut pos: Vec<f64> = (0..n).map(|v| v as f64).collect();
    // var → indices of clauses mentioning it (deduplicated per clause).
    let mut clauses_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        let mut seen_last: Option<usize> = None;
        let mut vars: Vec<usize> = clause.iter().map(|l| l.var().index()).collect();
        vars.sort_unstable();
        for v in vars {
            if seen_last != Some(v) {
                clauses_of[v].push(ci as u32);
                seen_last = Some(v);
            }
        }
    }
    let mut cog = vec![0.0f64; cnf.clauses.len()];
    for _ in 0..iterations {
        for (ci, clause) in cnf.clauses.iter().enumerate() {
            if clause.is_empty() {
                continue;
            }
            let sum: f64 = clause.iter().map(|l| pos[l.var().index()]).sum();
            cog[ci] = sum / clause.len() as f64;
        }
        for v in 0..n {
            if clauses_of[v].is_empty() {
                continue;
            }
            let sum: f64 = clauses_of[v].iter().map(|&ci| cog[ci as usize]).sum();
            pos[v] = sum / clauses_of[v].len() as f64;
        }
    }
    // Rank positions into levels (stable: ties keep natural order).
    let mut by_pos: Vec<usize> = (0..n).collect();
    by_pos.sort_by(|&a, &b| pos[a].partial_cmp(&pos[b]).expect("positions are finite"));
    let mut level_of = vec![0u32; n];
    for (level, &v) in by_pos.iter().enumerate() {
        level_of[v] = level as u32;
    }
    level_of
}

/// Compiles a CNF into one BDD.
///
/// # Errors
///
/// Returns [`CompileError::NodeLimit`] / [`CompileError::Cancelled`] when
/// the budget in `config` is exhausted; the budget is polled inside each
/// conjunction every [`CompileConfig::poll_interval`] allocations.
pub fn compile_cnf(cnf: &Cnf, config: &CompileConfig) -> Result<CompiledCnf, CompileError> {
    let order = variable_order(cnf, config.order, config.force_iterations);
    compile_cnf_with_order(cnf, order, config)
}

/// Compiles with an explicit `var → level` order (the hook for callers that
/// know their instance's structure better than the heuristics).
///
/// # Errors
///
/// Propagates budget exhaustion exactly like [`compile_cnf`].
pub fn compile_cnf_with_order(
    cnf: &Cnf,
    var_to_level: Vec<u32>,
    config: &CompileConfig,
) -> Result<CompiledCnf, CompileError> {
    compile_projected_with_order(cnf, var_to_level, None, config)
}

/// Projected compilation: like [`compile_cnf`], but every variable *not* in
/// `keep` is existentially quantified out of the diagram as soon as its
/// last clause has been conjoined (bucket elimination). The root then
/// represents `∃aux. cnf` — its models are the assignments to the kept
/// variables extendable to full models, which is the exact per-configuration
/// count when the eliminated variables are functionally determined (Tseitin
/// definitions, reified parities) and the projected count otherwise. Count
/// it with [`crate::BddManager::weight_count_over`] over `keep`.
///
/// Early elimination is what keeps dense instances compilable: intermediate
/// diagrams track only the kept variables plus the handful of auxiliaries
/// whose definitions are still open, instead of every Tseitin chain ever
/// introduced.
///
/// # Errors
///
/// Propagates budget exhaustion exactly like [`compile_cnf`].
pub fn compile_cnf_projected(
    cnf: &Cnf,
    keep: &[usize],
    config: &CompileConfig,
) -> Result<CompiledCnf, CompileError> {
    let order = variable_order(cnf, config.order, config.force_iterations);
    compile_projected_with_order(cnf, order, Some(keep), config)
}

/// Arena size below which the compiler never bothers collecting or
/// compacting: the bookkeeping would cost more than the memory it frees.
const GC_MIN_NODES: usize = 1 << 14;

fn compile_projected_with_order(
    cnf: &Cnf,
    var_to_level: Vec<u32>,
    keep: Option<&[usize]>,
    config: &CompileConfig,
) -> Result<CompiledCnf, CompileError> {
    let _span = veriqec_obs::span("dd", "compile");
    // Cached once per compile: the clause loop below emits per-clause spans
    // and samples the live node count only when someone is watching.
    let track = veriqec_obs::enabled();
    let progress = veriqec_obs::active();
    let mut manager = BddManager::with_order(var_to_level);
    let budget = OpBudget {
        node_limit: config.node_limit,
        stop_flags: &config.stop_flags,
        poll_every: config.poll_interval.max(1),
    };
    // Last clause index mentioning each eliminable variable; `usize::MAX`
    // marks kept (or unused) variables.
    let mut last_use = vec![usize::MAX; cnf.num_vars];
    if let Some(keep) = keep {
        for (ci, clause) in cnf.clauses.iter().enumerate() {
            for l in clause {
                last_use[l.var().index()] = ci;
            }
        }
        for &v in keep {
            last_use[v] = usize::MAX;
        }
    }
    // The evolving conjunction is the compiler's only GC root: collections
    // between conjunctions sweep the dead intermediate diagrams that each
    // `and`/`exists` strands in the arena.
    let mut root = Bdd::TRUE;
    let root_id = manager.protect(root);
    let mut gc_check_at = GC_MIN_NODES;
    let mut swap_budget = config.reorder.as_ref().map_or(0, |rc| rc.swap_budget);
    let mut reorder_at = config.reorder.as_ref().map(|rc| rc.trigger_nodes);
    // One linear-sized BDD per clause, conjoined in input order: the SAT
    // layer's export lists root units first and then clauses in assertion
    // order, so definitionally-related clauses (one Tseitin chain, one
    // totalizer merge) arrive adjacently — measured across the code zoo
    // this beats any span-sorted schedule.
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        check_budget(&manager, config)?;
        // Bound (not `_`) so the span covers the whole iteration: the
        // conjunction, eliminations, and any GC/sift it triggers.
        let _clause_span = track.then(|| veriqec_obs::span_with("dd", || format!("clause:{ci}")));
        let f = clause_bdd(&mut manager, clause);
        root = manager.and_budgeted(root, f, &budget)?;
        if root == Bdd::FALSE {
            // The registry must track the FALSE terminal too: the final GC
            // below re-reads the root from it, and a stale pre-contradiction
            // entry would resurrect a satisfiable diagram.
            manager.update_root(root_id, root);
            break; // contradiction: no later clause can resurrect it
        }
        for l in clause {
            let v = l.var().index();
            if last_use[v] == ci {
                root = manager.exists_budgeted(root, v, &budget)?;
                last_use[v] = usize::MAX; // a variable may repeat in-clause
            }
        }
        manager.update_root(root_id, root);
        if let Some(ratio) = config.gc_dead_ratio {
            if manager.node_count() >= gc_check_at {
                let nodes_before = manager.node_count();
                manager.collect_if_worthwhile(ratio);
                root = manager.root(root_id);
                veriqec_obs::instant(
                    "dd",
                    "gc",
                    &[
                        ("nodes_before", nodes_before as f64),
                        ("nodes_after", manager.node_count() as f64),
                    ],
                );
                // Geometric back-off so the mark pass stays a vanishing
                // fraction of compile time whatever the dead ratio does.
                gc_check_at = (manager.node_count() * 3 / 2).max(GC_MIN_NODES);
            }
        }
        if let (Some(rc), Some(at)) = (&config.reorder, reorder_at) {
            if swap_budget > 0 && manager.node_count() >= at {
                let outcome = manager.reorder_sift(rc, &config.stop_flags, &mut swap_budget)?;
                root = manager.root(root_id);
                veriqec_obs::instant(
                    "dd",
                    "sift",
                    &[
                        ("nodes_before", outcome.nodes_before as f64),
                        ("nodes_after", outcome.nodes_after as f64),
                    ],
                );
                gc_check_at = (manager.node_count() * 3 / 2).max(GC_MIN_NODES);
                reorder_at =
                    Some(((outcome.nodes_after as f64 * rc.growth) as usize).max(rc.trigger_nodes));
            }
        }
        if progress {
            veriqec_obs::heartbeat::DD_NODES.set(manager.node_count() as u64);
        }
    }
    // Clause construction (`clause_bdd`) and terminal-case conjunctions
    // allocate outside any budgeted traversal; enforce the budget on the
    // finished diagram so even a single-clause formula reports its breach.
    check_budget(&manager, config)?;
    // Hand back a compact arena: counting allocates memo space per arena
    // slot, so sweeping the construction garbage pays for itself.
    if config.gc_dead_ratio.is_some() && manager.node_count() >= GC_MIN_NODES {
        manager.collect_garbage();
        root = manager.root(root_id);
    }
    manager.unprotect(root_id);
    Ok(CompiledCnf { manager, root })
}

fn check_budget(manager: &BddManager, config: &CompileConfig) -> Result<(), CompileError> {
    if config.stop_flags.iter().any(|f| f.load(Ordering::Relaxed)) {
        return Err(CompileError::Cancelled);
    }
    if let Some(limit) = config.node_limit {
        let nodes = manager.node_count();
        if nodes > limit {
            return Err(CompileError::NodeLimit { nodes });
        }
    }
    Ok(())
}

/// The BDD of one clause (a disjunction of literals): a single chain of
/// nodes, built bottom-up in level order.
fn clause_bdd(manager: &mut BddManager, clause: &[Lit]) -> Bdd {
    // Deduplicate per variable; opposite polarities make the clause a
    // tautology.
    let mut lits: Vec<(u32, bool)> = clause
        .iter()
        .map(|l| (manager.level_of(l.var().index()), l.is_positive()))
        .collect();
    lits.sort_unstable();
    lits.dedup();
    for pair in lits.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Bdd::TRUE;
        }
    }
    let mut acc = Bdd::FALSE;
    for &(level, positive) in lits.iter().rev() {
        acc = if positive {
            manager.mk_raw(level, acc, Bdd::TRUE)
        } else {
            manager.mk_raw(level, Bdd::TRUE, acc)
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_sat::SatResult;

    fn cnf(text: &str) -> Cnf {
        Cnf::parse(text).expect("valid DIMACS")
    }

    #[test]
    fn compiles_and_counts_a_small_instance() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2): models are x2 = 1 → 2 of 4.
        let cnf = cnf("p cnf 2 2\n1 2 0\n-1 2 0\n");
        for order in [
            OrderHeuristic::Natural,
            OrderHeuristic::FirstUse,
            OrderHeuristic::Force,
        ] {
            let compiled = compile_cnf(
                &cnf,
                &CompileConfig {
                    order,
                    ..CompileConfig::default()
                },
            )
            .unwrap();
            assert_eq!(compiled.manager.model_count(compiled.root), 2, "{order:?}");
        }
    }

    #[test]
    fn unsat_compiles_to_false() {
        let cnf = cnf("p cnf 1 2\n1 0\n-1 0\n");
        let compiled = compile_cnf(&cnf, &CompileConfig::default()).unwrap();
        assert_eq!(compiled.root, Bdd::FALSE);
        assert_eq!(cnf.into_solver().solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_contradiction() {
        let parsed = cnf("p cnf 2 1\n0\n");
        assert_eq!(parsed.clauses, vec![Vec::new()]);
        let compiled = compile_cnf(&parsed, &CompileConfig::default()).unwrap();
        assert_eq!(compiled.root, Bdd::FALSE);
    }

    #[test]
    fn tautological_clause_is_dropped() {
        let parsed = cnf("p cnf 2 1\n1 -1 0\n");
        let compiled = compile_cnf(&parsed, &CompileConfig::default()).unwrap();
        assert_eq!(compiled.root, Bdd::TRUE);
        assert_eq!(compiled.manager.model_count(compiled.root), 4);
    }

    #[test]
    fn node_limit_trips() {
        // A parity chain over 24 variables needs > 4 nodes.
        let mut text = String::from("p cnf 24 24\n");
        for v in 1..=23 {
            text.push_str(&format!("{} {} 0\n{} -{} 0\n", v, v + 1, -v, v + 1));
        }
        let parsed = cnf(&text);
        let err = compile_cnf(
            &parsed,
            &CompileConfig {
                node_limit: Some(4),
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::NodeLimit { .. }), "{err}");
    }

    #[test]
    fn node_limit_enforced_on_final_clause() {
        // A single-clause formula never reaches a second loop iteration, so
        // only the post-loop check can report the breach.
        let parsed = cnf("p cnf 3 1\n1 2 3 0\n");
        let err = compile_cnf(
            &parsed,
            &CompileConfig {
                node_limit: Some(1),
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::NodeLimit { .. }), "{err}");
    }

    #[test]
    fn node_limit_trips_inside_a_single_conjunction() {
        // Two clauses over disjoint halves of 8000 variables: their clause
        // BDDs are cheap chains, but the one conjunction joining them
        // allocates ~8000 fresh nodes. The old clause-boundary poll only
        // noticed after the whole apply finished; the in-apply poll must
        // stop within one poll interval of the limit.
        let n = 8000usize;
        let mut text = format!("p cnf {n} 2\n");
        for v in (1..=n).step_by(2) {
            text.push_str(&format!("{v} "));
        }
        text.push_str("0\n");
        for v in (2..=n).step_by(2) {
            text.push_str(&format!("{v} "));
        }
        text.push_str("0\n");
        let parsed = cnf(&text);
        let limit = n + 2000; // both clause chains fit; the conjunction doesn't
        let poll = 64u64;
        let err = compile_cnf(
            &parsed,
            &CompileConfig {
                node_limit: Some(limit),
                poll_interval: poll,
                order: OrderHeuristic::Natural,
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        match err {
            CompileError::NodeLimit { nodes } => {
                assert!(nodes > limit, "{nodes} vs {limit}");
                assert!(
                    nodes <= limit + poll as usize + 8,
                    "in-apply polling must trip near the limit: \
                     {nodes} nodes vs limit {limit} (poll {poll})"
                );
            }
            other => panic!("expected NodeLimit, got {other}"),
        }
    }

    #[test]
    fn unsat_stays_false_past_the_final_gc() {
        // Two clauses over disjoint halves of 40000 variables: conjoining
        // them allocates ~40000 nodes, pushing the arena past GC_MIN_NODES
        // before the contradicting units arrive. The contradiction break
        // must update the root registry to FALSE, or the post-loop
        // collect_garbage re-reads the stale pre-contradiction root and a
        // provably UNSAT formula compiles to a satisfiable diagram.
        let n = 40000usize;
        let mut text = format!("p cnf {n} 4\n");
        for v in (1..=n).step_by(2) {
            text.push_str(&format!("{v} "));
        }
        text.push_str("0\n");
        for v in (2..=n).step_by(2) {
            text.push_str(&format!("{v} "));
        }
        text.push_str("0\n1 0\n-1 0\n");
        let parsed = cnf(&text);
        let compiled = compile_cnf(
            &parsed,
            &CompileConfig {
                order: OrderHeuristic::Natural,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        assert_eq!(compiled.root, Bdd::FALSE);
        assert_eq!(compiled.manager.model_count(compiled.root), 0);
    }

    #[test]
    fn cancellation_aborts() {
        let parsed = cnf("p cnf 2 2\n1 2 0\n-1 2 0\n");
        let stop = Arc::new(AtomicBool::new(true));
        let err = compile_cnf(
            &parsed,
            &CompileConfig {
                stop_flags: vec![Arc::new(AtomicBool::new(false)), stop],
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, CompileError::Cancelled);
    }

    #[test]
    fn projected_compile_counts_over_kept_variables() {
        // x3 ↔ x1 ⊕ x2 (Tseitin), x3 asserted true: projecting x3 out
        // leaves the two odd assignments of (x1, x2).
        let parsed = cnf("p cnf 3 5\n-3 1 2 0\n-3 -1 -2 0\n3 -1 2 0\n3 1 -2 0\n3 0\n");
        let compiled = compile_cnf_projected(&parsed, &[0, 1], &CompileConfig::default()).unwrap();
        let m = &compiled.manager;
        assert_eq!(m.weight_count_over(compiled.root, &[0, 1], &[]), vec![2]);
        assert_eq!(
            m.weight_count_over(compiled.root, &[0, 1], &[(0, true), (1, true)]),
            vec![0, 2, 0]
        );
        // The unprojected compile agrees after doubling is accounted for:
        // x3 is determined, so full-space and projected counts coincide.
        let full = compile_cnf(&parsed, &CompileConfig::default()).unwrap();
        assert_eq!(full.manager.model_count(full.root), 2);
    }

    #[test]
    fn projection_of_undetermined_variable_counts_the_shadow() {
        // (x1 ∨ x2) with x2 projected out: x1 = 1 extends both ways, x1 = 0
        // one way — the projection has 2 models, the full space 3.
        let parsed = cnf("p cnf 2 1\n1 2 0\n");
        let compiled = compile_cnf_projected(&parsed, &[0], &CompileConfig::default()).unwrap();
        assert_eq!(
            compiled.manager.weight_count_over(compiled.root, &[0], &[]),
            vec![2]
        );
    }

    #[test]
    fn gc_and_reordering_are_invisible_to_counts() {
        // A parity ladder with Tseitin-style clauses, compiled with
        // aggressive GC + sifting vs. with both disabled: identical counts.
        let mut text = String::from("p cnf 24 24\n");
        for v in 1..=23 {
            text.push_str(&format!("{} {} 0\n{} -{} 0\n", v, v + 1, -v, v + 1));
        }
        let parsed = cnf(&text);
        let eager = CompileConfig {
            gc_dead_ratio: Some(0.0),
            reorder: Some(ReorderConfig {
                trigger_nodes: 1,
                min_level_size: 1,
                ..ReorderConfig::default()
            }),
            ..CompileConfig::default()
        };
        let plain = CompileConfig {
            gc_dead_ratio: None,
            reorder: None,
            ..CompileConfig::default()
        };
        let keep: Vec<usize> = (0..6).collect();
        let a = compile_cnf_projected(&parsed, &keep, &eager).unwrap();
        let b = compile_cnf_projected(&parsed, &keep, &plain).unwrap();
        let wa = a
            .manager
            .weight_count_over(a.root, &keep, &[(0, true), (3, false)]);
        let wb = b
            .manager
            .weight_count_over(b.root, &keep, &[(0, true), (3, false)]);
        assert_eq!(wa, wb);
        let fa = compile_cnf(&parsed, &eager).unwrap();
        let fb = compile_cnf(&parsed, &plain).unwrap();
        assert_eq!(
            fa.manager.model_count(fa.root),
            fb.manager.model_count(fb.root)
        );
    }

    #[test]
    fn force_order_is_a_permutation() {
        let parsed = cnf("p cnf 5 3\n1 5 0\n2 3 0\n4 0\n");
        let order = variable_order(&parsed, OrderHeuristic::Force, 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn force_pulls_linked_variables_together() {
        // A Tseitin-style chain x3 ↔ x1⊕x2 scattered across a wide numbering:
        // FORCE should place x9 (the output) near x1/x2, not at the far end.
        let mut text = String::from("p cnf 9 4\n");
        text.push_str("-9 1 2 0\n-9 -1 -2 0\n9 -1 2 0\n9 1 -2 0\n");
        let parsed = cnf(&text);
        let order = variable_order(&parsed, OrderHeuristic::Force, 8);
        let spread = order[8].abs_diff(order[0]).max(order[8].abs_diff(order[1]));
        assert!(
            spread <= 4,
            "FORCE left the chain output far away: {order:?}"
        );
    }
}
