//! Sifting-based dynamic variable reordering (Rudell 1993).
//!
//! Each candidate variable is moved through every position of the order by
//! repeated adjacent-level swaps, then parked at the position that
//! minimised the live node count. A swap of levels `i`/`i+1` rewrites the
//! interacting nodes of level `i` **in place** — every handle keeps
//! denoting the same boolean function — so caller-held roots and the apply
//! cache survive the permutation (the cache is still dropped at the end of
//! a pass: nodes that *died* during swaps are no longer relabelled, so
//! entries mentioning them would go stale).
//!
//! Node death is tracked by reference counts during the pass (a swap can
//! orphan cofactor nodes); dead nodes are unhooked from the unique table
//! immediately and reclaimed by the mark-and-sweep pass that closes the
//! sift, so the size signal steering the search is the true live count.
//!
//! Invariants the swap relies on (and why it preserves canonicity):
//! - children sit on strictly deeper levels, so a level-`i` node's child on
//!   level `i+1` is never another level-`i` node;
//! - a rewritten interacting node keeps at least one child on level `i+1`
//!   (both collapsing would force its old children to be equal, violating
//!   reducedness), so it can never collide with a risen level-`i+1` node,
//!   whose children are all deeper than `i+1`;
//! - two interacting nodes cannot rewrite to the same key, since equal
//!   rewritten cofactors would make their original functions equal.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::bdd::BddManager;
use crate::compile::CompileError;

/// Knobs for growth-triggered dynamic reordering.
#[derive(Clone, Debug, PartialEq)]
pub struct ReorderConfig {
    /// First sift once the compiler's diagram holds this many nodes.
    ///
    /// Deliberately high by default: sifting is a *rescue* for orders the
    /// static heuristics got wrong, not routine maintenance. It minimises
    /// the current diagram, and on instances whose clause schedule suits
    /// the static order (the zoo under first-use + projection) that local
    /// optimum makes the *remaining* conjunctions far more expensive —
    /// measured on carbon \[\[12,2,4\]\], eager sifting costs 7x. Garbage
    /// collection keeps well-ordered compilations under a few hundred
    /// thousand live nodes, so only genuinely blowing-up diagrams get here.
    pub trigger_nodes: usize,
    /// Re-trigger when the live count grows by this factor past the size
    /// reached after the previous sift.
    pub growth: f64,
    /// Abort a variable's walk in one direction once the live count
    /// exceeds this factor of its starting size (Rudell's max-growth).
    pub max_growth: f64,
    /// Total adjacent-level swaps a compilation may spend across all
    /// sifting passes (the return-to-best walks ride for free so a pass
    /// always ends in a consistent minimum).
    pub swap_budget: usize,
    /// Only sift variables whose level holds at least this many nodes.
    pub min_level_size: usize,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig {
            trigger_nodes: 1 << 20,
            growth: 2.0,
            max_growth: 1.2,
            swap_budget: 500_000,
            min_level_size: 16,
        }
    }
}

/// What one sifting pass accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiftOutcome {
    /// Adjacent-level swaps performed (exploration plus return walks).
    pub swaps: usize,
    /// Live nodes before the pass (after its opening collection).
    pub nodes_before: usize,
    /// Live nodes after the pass (after its closing collection).
    pub nodes_after: usize,
}

impl BddManager {
    /// One sifting pass over the candidate variables (largest levels
    /// first), bounded by `swap_budget` (decremented in place so repeated
    /// passes share one budget) and cancellable between variables via
    /// `stop_flags`.
    ///
    /// Every function handle survives with its meaning intact, but
    /// *unprotected* garbage is reclaimed by the pass's collections:
    /// callers must hold their diagrams via [`BddManager::protect`] and
    /// re-read them afterwards ([`BddManager::root`]).
    ///
    /// # Errors
    ///
    /// [`CompileError::Cancelled`] if a stop flag was raised; the diagram
    /// is left consistent (swap boundaries are safe points).
    pub fn reorder_sift(
        &mut self,
        cfg: &ReorderConfig,
        stop_flags: &[Arc<AtomicBool>],
        swap_budget: &mut usize,
    ) -> Result<SiftOutcome, CompileError> {
        self.collect_garbage();
        let nodes_before = self.node_count();
        let n = self.num_vars();
        if n < 2 || nodes_before == 0 {
            return Ok(SiftOutcome {
                swaps: 0,
                nodes_before,
                nodes_after: nodes_before,
            });
        }
        let mut session = Sift::new(self);
        // Largest levels first: that is where a better position pays most.
        let mut candidates: Vec<(usize, u32)> = (0..n)
            .filter(|&l| session.level_size[l] >= cfg.min_level_size.max(1))
            .map(|l| (session.level_size[l], session.m.level_to_var[l]))
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let mut cancelled = false;
        for &(_, var) in &candidates {
            if stop_flags.iter().any(|f| f.load(Ordering::Relaxed)) {
                cancelled = true;
                break;
            }
            if *swap_budget == 0 {
                break;
            }
            session.sift_var(var as usize, cfg, swap_budget);
        }
        let swaps = session.swaps;
        drop(session);
        self.stats.reorder_swaps += swaps as u64;
        // Swaps may have orphaned nodes; sweep them and (always) drop the
        // apply cache — entries can mention dead nodes whose recorded
        // levels are now stale.
        self.cache.clear();
        self.collect_garbage();
        if cancelled {
            return Err(CompileError::Cancelled);
        }
        Ok(SiftOutcome {
            swaps,
            nodes_before,
            nodes_after: self.node_count(),
        })
    }
}

/// Per-pass bookkeeping: reference counts, per-level node lists, live
/// sizes. Built from a freshly collected arena (everything live).
struct Sift<'a> {
    m: &'a mut BddManager,
    refs: Vec<u32>,
    dead: Vec<bool>,
    level_nodes: Vec<Vec<u32>>,
    level_size: Vec<usize>,
    live: usize,
    swaps: usize,
    deref_stack: Vec<u32>,
}

impl<'a> Sift<'a> {
    fn new(m: &'a mut BddManager) -> Self {
        let len = m.arena.len();
        let n = m.num_vars();
        let mut refs = vec![0u32; len];
        let mut level_nodes = vec![Vec::new(); n];
        let mut level_size = vec![0usize; n];
        for idx in 2..len {
            refs[m.arena.los[idx] as usize] += 1;
            refs[m.arena.his[idx] as usize] += 1;
            let l = m.arena.levels[idx] as usize;
            level_nodes[l].push(idx as u32);
            level_size[l] += 1;
        }
        for r in m.roots.iter().flatten() {
            refs[*r as usize] += 1;
        }
        let live = len - 2;
        Sift {
            m,
            refs,
            dead: vec![false; len],
            level_nodes,
            level_size,
            live,
            swaps: 0,
            deref_stack: Vec::new(),
        }
    }

    /// Sifts one variable: walk to the nearer end of the order, sweep to
    /// the far end, then return to the best position encountered. The
    /// exploration phases draw down `budget`; the return walk is exempt so
    /// the variable always lands somewhere deliberate.
    fn sift_var(&mut self, var: usize, cfg: &ReorderConfig, budget: &mut usize) {
        let n = self.m.num_vars();
        let start = self.m.var_to_level[var] as usize;
        let limit = ((self.live as f64) * cfg.max_growth) as usize + 16;
        let mut best_live = self.live;
        let mut best = start;
        let mut cur = start;
        let down_first = start >= n / 2;
        let phases: [isize; 2] = if down_first { [1, -1] } else { [-1, 1] };
        for dir in phases {
            loop {
                let next = cur as isize + dir;
                if next < 0 || next as usize >= n || *budget == 0 {
                    break;
                }
                self.swap(cur.min(next as usize));
                *budget -= 1;
                cur = next as usize;
                if self.live < best_live {
                    best_live = self.live;
                    best = cur;
                }
                if self.live > limit {
                    break;
                }
            }
        }
        while cur != best {
            let dir: isize = if best > cur { 1 } else { -1 };
            let next = (cur as isize + dir) as usize;
            self.swap(cur.min(next));
            cur = next;
        }
        debug_assert_eq!(
            self.live, best_live,
            "returning to a position must reproduce its size"
        );
    }

    /// Swaps levels `i` and `i + 1` in place.
    fn swap(&mut self, i: usize) {
        let li = i as u32;
        let lj = li + 1;
        let upper = std::mem::take(&mut self.level_nodes[i]);
        let lower = std::mem::take(&mut self.level_nodes[i + 1]);

        // Partition the upper level: nodes with a child on level i+1 must
        // be rewritten; the rest just sink one level unchanged.
        let mut interacting = Vec::new();
        let mut moved = Vec::new();
        for &f in &upper {
            if self.dead[f as usize] {
                continue;
            }
            let (lo, hi) = (self.m.arena.los[f as usize], self.m.arena.his[f as usize]);
            if self.m.arena.levels[lo as usize] == lj || self.m.arena.levels[hi as usize] == lj {
                interacting.push(f);
            } else {
                moved.push(f);
            }
        }

        // Unhook both levels from the unique table before relabelling.
        for &f in interacting.iter().chain(&moved) {
            self.m.unique.remove(
                li,
                self.m.arena.los[f as usize],
                self.m.arena.his[f as usize],
                f,
            );
        }
        let mut new_upper: Vec<u32> = Vec::with_capacity(lower.len() + interacting.len());
        for &w in &lower {
            if self.dead[w as usize] {
                continue;
            }
            self.m.unique.remove(
                lj,
                self.m.arena.los[w as usize],
                self.m.arena.his[w as usize],
                w,
            );
            new_upper.push(w);
        }

        // The two variables trade places.
        let u = self.m.level_to_var[i];
        let v = self.m.level_to_var[i + 1];
        self.m.level_to_var[i] = v;
        self.m.level_to_var[i + 1] = u;
        self.m.var_to_level[u as usize] = lj;
        self.m.var_to_level[v as usize] = li;

        // Old lower nodes rise unchanged (their children are strictly
        // deeper than the old level i+1, so they cannot mention `u`).
        for &w in &new_upper {
            self.m.arena.levels[w as usize] = li;
            let (lo, hi) = (self.m.arena.los[w as usize], self.m.arena.his[w as usize]);
            self.m.unique.insert(li, lo, hi, w, &self.m.arena);
        }
        // Non-interacting upper nodes sink unchanged.
        for &f in &moved {
            self.m.arena.levels[f as usize] = lj;
            let (lo, hi) = (self.m.arena.los[f as usize], self.m.arena.his[f as usize]);
            self.m.unique.insert(lj, lo, hi, f, &self.m.arena);
        }
        self.level_size[i] = new_upper.len();
        self.level_size[i + 1] = moved.len();
        // `level_nodes[i + 1]` is empty right now (taken above); the sunk
        // nodes go back in, and the rewrite loop below appends the fresh
        // G-nodes it allocates via `lookup_or_create` — do not overwrite
        // the list after that loop, or those nodes vanish from the
        // per-level bookkeeping and later swaps corrupt their labels.
        self.level_nodes[i + 1] = moved;

        // Rewrite each interacting node in place: f = ite(u, f1, f0)
        // becomes ite(v, G1, G0) with G_b = ite(u, f1_b, f0_b).
        for &f in &interacting {
            let (f0, f1) = (self.m.arena.los[f as usize], self.m.arena.his[f as usize]);
            // Cofactors w.r.t. v, whose nodes now sit on level i.
            let (f00, f01) = if self.m.arena.levels[f0 as usize] == li {
                (self.m.arena.los[f0 as usize], self.m.arena.his[f0 as usize])
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.m.arena.levels[f1 as usize] == li {
                (self.m.arena.los[f1 as usize], self.m.arena.his[f1 as usize])
            } else {
                (f1, f1)
            };
            let g0 = if f00 == f10 {
                f00
            } else {
                self.lookup_or_create(lj, f00, f10)
            };
            let g1 = if f01 == f11 {
                f01
            } else {
                self.lookup_or_create(lj, f01, f11)
            };
            debug_assert_ne!(g0, g1, "an interacting node cannot become redundant");
            // New children gain references before the old children lose
            // theirs, so shared grandchildren never dip to zero in between.
            self.refs[g0 as usize] += 1;
            self.refs[g1 as usize] += 1;
            self.deref(f0);
            self.deref(f1);
            self.m.arena.los[f as usize] = g0;
            self.m.arena.his[f as usize] = g1;
            self.m.unique.insert(li, g0, g1, f, &self.m.arena);
            new_upper.push(f);
            self.level_size[i] += 1;
        }
        self.level_nodes[i] = new_upper;
        self.swaps += 1;
    }

    /// Finds the node `(level, lo, hi)` in the unique table or allocates
    /// it, wiring the session bookkeeping (refcounts, level lists).
    fn lookup_or_create(&mut self, level: u32, lo: u32, hi: u32) -> u32 {
        debug_assert_ne!(lo, hi);
        self.m.unique.reserve(&self.m.arena);
        match self.m.unique.find(level, lo, hi, &self.m.arena) {
            Ok(idx) => idx,
            Err(slot) => {
                let idx = self.m.arena.push(level, lo, hi);
                self.m.unique.insert_at(slot, idx);
                self.m.stats.nodes += 1;
                let occupancy = (self.m.arena.len() - 2) as u64;
                if occupancy > self.m.stats.peak_nodes {
                    self.m.stats.peak_nodes = occupancy;
                }
                self.refs.push(0);
                self.dead.push(false);
                self.refs[lo as usize] += 1;
                self.refs[hi as usize] += 1;
                self.level_nodes[level as usize].push(idx);
                self.level_size[level as usize] += 1;
                self.live += 1;
                idx
            }
        }
    }

    /// Drops one reference to `start`, cascading: a node whose count hits
    /// zero dies (unhooked from the unique table, excluded from the size
    /// signal) and releases its own children. Iterative — cascades can be
    /// as deep as the order.
    fn deref(&mut self, start: u32) {
        self.deref_stack.push(start);
        while let Some(x) = self.deref_stack.pop() {
            if x <= 1 {
                continue;
            }
            let xi = x as usize;
            debug_assert!(self.refs[xi] > 0, "deref of an unreferenced node");
            self.refs[xi] -= 1;
            if self.refs[xi] == 0 && !self.dead[xi] {
                self.dead[xi] = true;
                let level = self.m.arena.levels[xi];
                self.m
                    .unique
                    .remove(level, self.m.arena.los[xi], self.m.arena.his[xi], x);
                self.level_size[level as usize] -= 1;
                self.live -= 1;
                self.deref_stack.push(self.m.arena.los[xi]);
                self.deref_stack.push(self.m.arena.his[xi]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;

    /// The classic sifting benchmark: ⋁ᵢ aᵢ·bᵢ is linear when partners are
    /// adjacent and exponential when all a's precede all b's.
    fn conjoined_pairs(m: &mut BddManager, pairs: usize) -> Bdd {
        let mut f = Bdd::FALSE;
        for i in 0..pairs {
            let a = m.var(i);
            let b = m.var(pairs + i);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        f
    }

    #[test]
    fn sifting_shrinks_a_bad_order_and_preserves_counts() {
        let pairs = 8;
        let mut m = BddManager::new(2 * pairs);
        let f = conjoined_pairs(&mut m, pairs);
        let count = m.model_count(f);
        let weights = m.weight_count(f, &[(0, true), (pairs, true), (1, false)]);
        let id = m.protect(f);
        let cfg = ReorderConfig {
            min_level_size: 1,
            ..ReorderConfig::default()
        };
        let mut budget = cfg.swap_budget;
        let out = m.reorder_sift(&cfg, &[], &mut budget).unwrap();
        assert!(out.swaps > 0);
        assert!(
            out.nodes_after * 2 < out.nodes_before,
            "interleaving the pairs must at least halve the diagram: {out:?}"
        );
        let f = m.root(id);
        assert_eq!(m.model_count(f), count);
        assert_eq!(
            m.weight_count(f, &[(0, true), (pairs, true), (1, false)]),
            weights
        );
        assert_eq!(m.stats().reorder_swaps, out.swaps as u64);
        // The manager stays fully operational under the permuted order.
        let g = m.not(f);
        assert_eq!(m.model_count(g), (1u128 << (2 * pairs)) - count);
    }

    #[test]
    fn sifting_is_a_no_op_on_an_already_good_order() {
        // Partners adjacent: the linear order is (near) optimal, so
        // sifting must not make it worse.
        let pairs = 6;
        // a_i at level 2i, b_i right below it at 2i + 1.
        let mut var_to_level = vec![0u32; 2 * pairs];
        for i in 0..pairs {
            var_to_level[i] = 2 * i as u32;
            var_to_level[pairs + i] = 2 * i as u32 + 1;
        }
        let mut m = BddManager::with_order(var_to_level);
        let f = conjoined_pairs(&mut m, pairs);
        let count = m.model_count(f);
        let id = m.protect(f);
        let cfg = ReorderConfig {
            min_level_size: 1,
            ..ReorderConfig::default()
        };
        let mut budget = cfg.swap_budget;
        let out = m.reorder_sift(&cfg, &[], &mut budget).unwrap();
        assert!(out.nodes_after <= out.nodes_before);
        assert_eq!(m.model_count(m.root(id)), count);
    }

    #[test]
    fn sifting_respects_the_swap_budget() {
        let pairs = 6;
        let mut m = BddManager::new(2 * pairs);
        let f = conjoined_pairs(&mut m, pairs);
        let _id = m.protect(f);
        let cfg = ReorderConfig {
            min_level_size: 1,
            ..ReorderConfig::default()
        };
        let mut budget = 5usize;
        let out = m.reorder_sift(&cfg, &[], &mut budget).unwrap();
        assert_eq!(budget, 0);
        // Exploration stopped at 5 draws; only return walks ride on top,
        // and a return walk never exceeds the exploration that led out.
        assert!(out.swaps <= 10, "{out:?}");
    }

    #[test]
    fn sifting_cancels_between_variables() {
        let pairs = 6;
        let mut m = BddManager::new(2 * pairs);
        let f = conjoined_pairs(&mut m, pairs);
        let id = m.protect(f);
        let count = m.model_count(f);
        let stop = Arc::new(AtomicBool::new(true));
        let mut budget = 1_000_000usize;
        let err = m
            .reorder_sift(&ReorderConfig::default(), &[stop], &mut budget)
            .unwrap_err();
        assert_eq!(err, CompileError::Cancelled);
        // Cancellation leaves a consistent diagram behind.
        assert_eq!(m.model_count(m.root(id)), count);
    }
}
