//! Packed node storage for the BDD kernel: a struct-of-arrays arena plus an
//! open-addressing unique table.
//!
//! The arena keeps the three node words (`level`, `lo`, `hi`) in parallel
//! `Vec<u32>`s so traversals touch only the columns they need (counting
//! never reads levels of terminals, reordering rewrites `lo`/`hi` in place
//! without moving records). Node handles are plain arena indices; the two
//! terminals occupy indices 0 and 1 with the sentinel level
//! [`TERMINAL_LEVEL`], so `level(child) > level(parent)` holds uniformly
//! without a per-manager "virtual terminal level".
//!
//! The unique table is a linear-probe open-addressing table of arena
//! indices, sized by powers of two, with a cheap multiplicative hash over
//! the three node words — replacing the SipHash `HashMap` whose per-probe
//! cost dominated `mk` in the old kernel. Deletion (needed by the sifting
//! reorderer, which unhooks nodes mid-swap) uses tombstones; rehashing
//! drops them.

/// Sentinel level of the two terminal nodes: compares greater than every
/// real level, so "the variable cannot occur below this node" checks need
/// no knowledge of the variable count.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Struct-of-arrays node storage. Index 0 is the FALSE terminal, index 1
/// the TRUE terminal; decision nodes start at index 2.
#[derive(Clone, Debug)]
pub(crate) struct NodeArena {
    pub levels: Vec<u32>,
    pub los: Vec<u32>,
    pub his: Vec<u32>,
}

impl NodeArena {
    pub fn new() -> Self {
        NodeArena {
            levels: vec![TERMINAL_LEVEL, TERMINAL_LEVEL],
            los: vec![0, 1],
            his: vec![0, 1],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    #[inline]
    pub fn push(&mut self, level: u32, lo: u32, hi: u32) -> u32 {
        let idx = self.levels.len() as u32;
        self.levels.push(level);
        self.los.push(lo);
        self.his.push(hi);
        idx
    }

    pub fn truncate(&mut self, len: usize) {
        self.levels.truncate(len);
        self.los.truncate(len);
        self.his.truncate(len);
    }

    /// Bytes held by the three columns (capacity, not length — this is the
    /// resident footprint the reports care about).
    pub fn bytes(&self) -> usize {
        (self.levels.capacity() + self.los.capacity() + self.his.capacity())
            * std::mem::size_of::<u32>()
    }
}

const EMPTY: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX - 1;

/// Multiplicative mixing of the three node words; the high bits index the
/// power-of-two slot array.
#[inline]
fn hash_key(level: u32, lo: u32, hi: u32) -> u64 {
    let mut h = (lo as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (hi as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= (level as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 29;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// The hash-consing table: maps `(level, lo, hi)` to the arena index of the
/// unique node with those words. Slots hold arena indices; the key words
/// live in the arena itself, so the table is a flat `Vec<u32>` with no
/// duplicated key storage.
#[derive(Clone, Debug)]
pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    mask: usize,
    /// Live entries (excludes tombstones).
    occupied: usize,
    tombstones: usize,
    /// Total probe sequences started (one per `find`).
    pub lookups: u64,
    /// Total slots inspected across all probe sequences.
    pub probes: u64,
}

impl UniqueTable {
    pub fn new() -> Self {
        UniqueTable::with_pow2(1 << 12)
    }

    fn with_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        UniqueTable {
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            occupied: 0,
            tombstones: 0,
            lookups: 0,
            probes: 0,
        }
    }

    /// Live (non-tombstone) entries; test-only — production code tracks
    /// node counts through the arena.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.occupied
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u32>()
    }

    /// Grows (or compacts tombstones away) so one more insert keeps the
    /// load factor at or below 1/2. Call before [`UniqueTable::find`] when
    /// an insert may follow — rehashing invalidates previously returned
    /// slot indices.
    pub fn reserve(&mut self, arena: &NodeArena) {
        if (self.occupied + self.tombstones + 1) * 2 <= self.slots.len() {
            return;
        }
        // Double only when live entries justify it; otherwise a same-size
        // rehash just purges tombstones left behind by sifting.
        let cap = if (self.occupied + 1) * 2 > self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        self.rehash(cap, arena);
    }

    fn rehash(&mut self, cap: usize, arena: &NodeArena) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.mask = cap - 1;
        self.tombstones = 0;
        for idx in old {
            if idx == EMPTY || idx == TOMBSTONE {
                continue;
            }
            let i = idx as usize;
            let mut slot =
                hash_key(arena.levels[i], arena.los[i], arena.his[i]) as usize & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = idx;
        }
    }

    /// Looks up `(level, lo, hi)`: `Ok(index)` of the existing node, or
    /// `Err(slot)` where it should be inserted ([`UniqueTable::reserve`]
    /// first; any intervening mutation invalidates the slot).
    #[inline]
    pub fn find(&mut self, level: u32, lo: u32, hi: u32, arena: &NodeArena) -> Result<u32, usize> {
        self.lookups += 1;
        let mut slot = hash_key(level, lo, hi) as usize & self.mask;
        let mut insert_at = usize::MAX;
        loop {
            self.probes += 1;
            let entry = self.slots[slot];
            if entry == EMPTY {
                return Err(if insert_at != usize::MAX {
                    insert_at
                } else {
                    slot
                });
            }
            if entry == TOMBSTONE {
                if insert_at == usize::MAX {
                    insert_at = slot;
                }
            } else {
                let i = entry as usize;
                if arena.levels[i] == level && arena.los[i] == lo && arena.his[i] == hi {
                    return Ok(entry);
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Fills the slot returned by a failed [`UniqueTable::find`].
    #[inline]
    pub fn insert_at(&mut self, slot: usize, idx: u32) {
        if self.slots[slot] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.slots[slot] = idx;
        self.occupied += 1;
    }

    /// Inserts a node known to be absent (rebuilds, sifting relabels).
    pub fn insert(&mut self, level: u32, lo: u32, hi: u32, idx: u32, arena: &NodeArena) {
        self.reserve(arena);
        match self.find(level, lo, hi, arena) {
            Ok(existing) => {
                debug_assert_eq!(existing, idx, "duplicate unique-table entry");
            }
            Err(slot) => self.insert_at(slot, idx),
        }
    }

    /// Unhooks node `idx` (whose words are `(level, lo, hi)`), leaving a
    /// tombstone. Used by sifting when a level's nodes are relabelled or
    /// die, and by GC's cascade-free rebuild path.
    pub fn remove(&mut self, level: u32, lo: u32, hi: u32, idx: u32) {
        let mut slot = hash_key(level, lo, hi) as usize & self.mask;
        loop {
            let entry = self.slots[slot];
            if entry == idx {
                self.slots[slot] = TOMBSTONE;
                self.occupied -= 1;
                self.tombstones += 1;
                return;
            }
            debug_assert!(
                entry != EMPTY,
                "removing a node absent from the unique table"
            );
            if entry == EMPTY {
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Rebuilds the table from scratch over the (compacted) arena — every
    /// decision node is reinserted, tombstones and stale handles vanish.
    pub fn rebuild(&mut self, arena: &NodeArena) {
        let need = (arena.len().max(1) * 4).next_power_of_two().max(1 << 12);
        self.slots.clear();
        self.slots.resize(need, EMPTY);
        self.mask = need - 1;
        self.occupied = arena.len() - 2;
        self.tombstones = 0;
        for i in 2..arena.len() {
            let mut slot =
                hash_key(arena.levels[i], arena.los[i], arena.his[i]) as usize & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = i as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_insert_remove_roundtrip() {
        let mut arena = NodeArena::new();
        let mut table = UniqueTable::new();
        let idx = arena.push(3, 0, 1);
        let slot = table.find(3, 0, 1, &arena).unwrap_err();
        table.insert_at(slot, idx);
        assert_eq!(table.find(3, 0, 1, &arena), Ok(idx));
        assert_eq!(table.len(), 1);
        table.remove(3, 0, 1, idx);
        assert!(table.find(3, 0, 1, &arena).is_err());
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut arena = NodeArena::new();
        let mut table = UniqueTable::with_pow2(4);
        for level in 0..1000u32 {
            table.reserve(&arena);
            let slot = table.find(level, 0, 1, &arena).unwrap_err();
            let idx = arena.push(level, 0, 1);
            table.insert_at(slot, idx);
        }
        assert_eq!(table.len(), 1000);
        assert!(table.capacity() >= 2000);
        for level in 0..1000u32 {
            assert!(table.find(level, 0, 1, &arena).is_ok());
        }
    }

    #[test]
    fn tombstones_are_compacted_by_reserve() {
        let mut arena = NodeArena::new();
        let mut table = UniqueTable::with_pow2(8);
        // Fill and empty the table repeatedly: without tombstone
        // compaction the probe chains would saturate.
        for round in 0..100u32 {
            let level = round;
            table.reserve(&arena);
            let slot = table.find(level, 0, 1, &arena).unwrap_err();
            let idx = arena.push(level, 0, 1);
            table.insert_at(slot, idx);
            table.remove(level, 0, 1, idx);
        }
        assert_eq!(table.len(), 0);
        assert!(table.capacity() <= 16, "{}", table.capacity());
    }
}
