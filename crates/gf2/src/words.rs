//! Word-level GF(2) kernels shared by [`crate::BitVec`] and the bit-packed
//! XOR-affine phases in `veriqec_cexpr`.
//!
//! Everything in this module operates on raw little-endian `u64` slices
//! (bit `i` lives in word `i / 64` at position `i % 64`), so callers with
//! different container shapes — fixed inline arrays, heap vectors, matrix
//! rows — all funnel through the same XOR / popcount / bit-scan loops.
//!
//! The bulk kernels (`xor_into`, `popcount`, `dot`, `is_zero`) process
//! [`LANE_WORDS`]` = 4` words per step with a scalar tail, written as
//! manual lane unrolls so the compiler emits 256-bit vector code without
//! any external SIMD crate. The straight one-word-at-a-time loops are kept
//! in [`scalar`] as the differential-test oracle and the microbenchmark
//! baseline; every widened kernel is property-tested against its scalar
//! twin on random lengths, including non-multiple-of-4 tails.

/// Bits per storage word.
pub const BITS: usize = 64;

/// Words processed per unrolled lane step of the bulk kernels (4 × u64 =
/// one 256-bit vector register).
pub const LANE_WORDS: usize = 4;

/// Reference one-word-at-a-time kernels: the pre-widening loops, kept as
/// the oracle for the 4-lane differential proptests and as the baseline
/// side of the `tables kernels` microbenchmarks.
pub mod scalar {
    /// One-word-at-a-time [`super::xor_into`].
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than `src`.
    #[inline]
    pub fn xor_into(dst: &mut [u64], src: &[u64]) {
        assert!(dst.len() >= src.len(), "xor_into: destination too short");
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    /// One-word-at-a-time [`super::popcount`].
    #[inline]
    pub fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// One-word-at-a-time [`super::dot`].
    #[inline]
    pub fn dot(a: &[u64], b: &[u64]) -> bool {
        a.iter()
            .zip(b)
            .fold(0u32, |acc, (x, y)| acc ^ (x & y).count_ones())
            & 1
            == 1
    }

    /// One-word-at-a-time [`super::is_zero`].
    #[inline]
    pub fn is_zero(words: &[u64]) -> bool {
        words.iter().all(|&w| w == 0)
    }
}

/// XORs `src` into the front of `dst`, four words per lane step.
///
/// # Panics
///
/// Panics if `dst` is shorter than `src` (callers grow the destination
/// first; silently dropping high words would corrupt the value).
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    assert!(dst.len() >= src.len(), "xor_into: destination too short");
    let n = src.len();
    let mut dst4 = dst[..n].chunks_exact_mut(LANE_WORDS);
    let mut src4 = src.chunks_exact(LANE_WORDS);
    for (d, s) in dst4.by_ref().zip(src4.by_ref()) {
        d[0] ^= s[0];
        d[1] ^= s[1];
        d[2] ^= s[2];
        d[3] ^= s[3];
    }
    for (d, s) in dst4.into_remainder().iter_mut().zip(src4.remainder()) {
        *d ^= s;
    }
}

/// XORs one fixed inline lane into another — the allocation-free fast path
/// for `veriqec_cexpr::Affine` forms whose variable ids fit the inline
/// span (`LANE_WORDS * 64 = 256` ids).
#[inline]
pub fn xor_lane(dst: &mut [u64; LANE_WORDS], src: &[u64; LANE_WORDS]) {
    dst[0] ^= src[0];
    dst[1] ^= src[1];
    dst[2] ^= src[2];
    dst[3] ^= src[3];
}

/// Number of set bits across the slice, four partial counters per lane
/// step (summed once at the end, so the lanes stay independent).
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    let mut c = [0usize; LANE_WORDS];
    let mut it = words.chunks_exact(LANE_WORDS);
    for w in it.by_ref() {
        c[0] += w[0].count_ones() as usize;
        c[1] += w[1].count_ones() as usize;
        c[2] += w[2].count_ones() as usize;
        c[3] += w[3].count_ones() as usize;
    }
    let mut total = c[0] + c[1] + c[2] + c[3];
    for w in it.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

/// True when no bit is set; OR-accumulates four words per lane step.
#[inline]
pub fn is_zero(words: &[u64]) -> bool {
    let mut it = words.chunks_exact(LANE_WORDS);
    let mut acc = 0u64;
    for w in it.by_ref() {
        acc |= w[0] | w[1] | w[2] | w[3];
    }
    for &w in it.remainder() {
        acc |= w;
    }
    acc == 0
}

/// Length of the slice with trailing zero words trimmed: the smallest `n`
/// such that `words[n..]` is all zeros.
#[inline]
pub fn significant_len(words: &[u64]) -> usize {
    words.len() - words.iter().rev().take_while(|&&w| w == 0).count()
}

/// Reads bit `i`, treating out-of-range bits as 0.
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words
        .get(i / BITS)
        .is_some_and(|w| (w >> (i % BITS)) & 1 == 1)
}

/// Index of the lowest bit set in both slices (`a AND b`), if any; the
/// shorter slice is implicitly zero-extended.
#[inline]
pub fn first_common_one(a: &[u64], b: &[u64]) -> Option<usize> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let w = x & y;
        if w != 0 {
            return Some(i * BITS + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Parity of the bitwise AND of two slices (the GF(2) inner product); the
/// shorter slice is implicitly zero-extended. Four independent parity
/// accumulators per lane step, folded once at the end.
#[inline]
pub fn dot(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let mut a4 = a[..n].chunks_exact(LANE_WORDS);
    let mut b4 = b[..n].chunks_exact(LANE_WORDS);
    let mut c = [0u32; LANE_WORDS];
    for (x, y) in a4.by_ref().zip(b4.by_ref()) {
        c[0] ^= (x[0] & y[0]).count_ones();
        c[1] ^= (x[1] & y[1]).count_ones();
        c[2] ^= (x[2] & y[2]).count_ones();
        c[3] ^= (x[3] & y[3]).count_ones();
    }
    let mut acc = c[0] ^ c[1] ^ c[2] ^ c[3];
    for (x, y) in a4.remainder().iter().zip(b4.remainder()) {
        acc ^= (x & y).count_ones();
    }
    acc & 1 == 1
}

/// Iterator over the indices of set bits in a word slice, ascending.
///
/// This is the single bit-scan loop behind [`crate::BitVec::iter_ones`] and
/// `veriqec_cexpr::Affine::vars`: it skips zero words wholesale and peels
/// set bits off each nonzero word with `trailing_zeros`.
#[derive(Clone)]
pub struct WordOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> WordOnes<'a> {
    /// Creates an iterator over the set bits of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        WordOnes {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for WordOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_popcount_roundtrip() {
        let mut a = [0b1010u64, 0];
        xor_into(&mut a, &[0b0110, 1]);
        assert_eq!(a, [0b1100, 1]);
        assert_eq!(popcount(&a), 3);
        assert!(!is_zero(&a));
        assert!(is_zero(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "destination too short")]
    fn xor_into_rejects_short_destination() {
        xor_into(&mut [0u64], &[1, 2]);
    }

    #[test]
    fn significant_len_trims_trailing_zeros() {
        assert_eq!(significant_len(&[1, 0, 2, 0, 0]), 3);
        assert_eq!(significant_len(&[0, 0]), 0);
        assert_eq!(significant_len(&[]), 0);
    }

    #[test]
    fn get_bit_is_total() {
        let w = [1u64 << 63, 1];
        assert!(get_bit(&w, 63));
        assert!(get_bit(&w, 64));
        assert!(!get_bit(&w, 65));
        assert!(!get_bit(&w, 100_000));
    }

    #[test]
    fn dot_zero_extends() {
        assert!(dot(&[0b11], &[0b01, 0xFF]));
        assert!(!dot(&[0b11], &[0b11, 0xFF]));
    }

    #[test]
    fn first_common_one_scans_words() {
        assert_eq!(first_common_one(&[0b100, 0], &[0b110, 1]), Some(2));
        assert_eq!(first_common_one(&[0, 1 << 3], &[0, 1 << 3]), Some(67));
        assert_eq!(first_common_one(&[0b01], &[0b10]), None);
        assert_eq!(first_common_one(&[], &[1]), None);
    }

    #[test]
    fn word_ones_crosses_words() {
        let w = [1u64 | (1 << 63), 0, 1 << 5];
        let ones: Vec<usize> = WordOnes::new(&w).collect();
        assert_eq!(ones, vec![0, 63, 133]);
        assert!(WordOnes::new(&[]).next().is_none());
    }

    #[test]
    fn xor_lane_matches_xor_into() {
        let mut a = [1u64, 2, 3, 4];
        let mut b = a;
        xor_lane(&mut a, &[5, 6, 7, 8]);
        xor_into(&mut b, &[5, 6, 7, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn lane_kernels_handle_exact_multiples_and_tails() {
        // Lengths straddling the 4-word lane boundary.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 11, 12] {
            let a: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let b: Vec<u64> = (0..len as u64).map(|i| !i ^ 0xABCD).collect();
            let mut wide = a.clone();
            let mut narrow = a.clone();
            xor_into(&mut wide, &b);
            scalar::xor_into(&mut narrow, &b);
            assert_eq!(wide, narrow, "len {len}");
            assert_eq!(popcount(&a), scalar::popcount(&a), "len {len}");
            assert_eq!(dot(&a, &b), scalar::dot(&a, &b), "len {len}");
            assert_eq!(is_zero(&a), scalar::is_zero(&a), "len {len}");
        }
    }
}

#[cfg(test)]
mod lane_proptests {
    //! The 4-lane kernels must agree bit for bit with the one-word scalar
    //! loops on every input shape — random lengths (including tails that
    //! are not a multiple of 4 words), mismatched operand lengths for
    //! `dot`, and dense/sparse contents.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn widened_xor_matches_scalar(
            dst in proptest::collection::vec(any::<u64>(), 0..13),
            src_extra in 0usize..4,
            seed in any::<u64>(),
        ) {
            // src no longer than dst (the panic contract), arbitrary tail.
            let src_len = dst.len().saturating_sub(src_extra);
            let src: Vec<u64> = (0..src_len as u64)
                .map(|i| seed.wrapping_mul(i.wrapping_add(0x9E37_79B9)))
                .collect();
            let mut wide = dst.clone();
            let mut narrow = dst.clone();
            xor_into(&mut wide, &src);
            scalar::xor_into(&mut narrow, &src);
            prop_assert_eq!(wide, narrow);
        }

        #[test]
        fn widened_popcount_and_is_zero_match_scalar(
            words in proptest::collection::vec(any::<u64>(), 0..13),
        ) {
            prop_assert_eq!(popcount(&words), scalar::popcount(&words));
            prop_assert_eq!(is_zero(&words), scalar::is_zero(&words));
        }

        #[test]
        fn widened_dot_matches_scalar(
            a in proptest::collection::vec(any::<u64>(), 0..13),
            b in proptest::collection::vec(any::<u64>(), 0..13),
        ) {
            prop_assert_eq!(dot(&a, &b), scalar::dot(&a, &b));
        }
    }
}
