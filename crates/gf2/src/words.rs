//! Word-level GF(2) kernels shared by [`crate::BitVec`] and the bit-packed
//! XOR-affine phases in `veriqec_cexpr`.
//!
//! Everything in this module operates on raw little-endian `u64` slices
//! (bit `i` lives in word `i / 64` at position `i % 64`), so callers with
//! different container shapes — fixed inline arrays, heap vectors, matrix
//! rows — all funnel through the same XOR / popcount / bit-scan loops.

/// Bits per storage word.
pub const BITS: usize = 64;

/// XORs `src` into the front of `dst`.
///
/// # Panics
///
/// Panics if `dst` is shorter than `src` (callers grow the destination
/// first; silently dropping high words would corrupt the value).
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    assert!(dst.len() >= src.len(), "xor_into: destination too short");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Number of set bits across the slice.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// True when no bit is set.
#[inline]
pub fn is_zero(words: &[u64]) -> bool {
    words.iter().all(|&w| w == 0)
}

/// Length of the slice with trailing zero words trimmed: the smallest `n`
/// such that `words[n..]` is all zeros.
#[inline]
pub fn significant_len(words: &[u64]) -> usize {
    words.len() - words.iter().rev().take_while(|&&w| w == 0).count()
}

/// Reads bit `i`, treating out-of-range bits as 0.
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words
        .get(i / BITS)
        .is_some_and(|w| (w >> (i % BITS)) & 1 == 1)
}

/// Index of the lowest bit set in both slices (`a AND b`), if any; the
/// shorter slice is implicitly zero-extended.
#[inline]
pub fn first_common_one(a: &[u64], b: &[u64]) -> Option<usize> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let w = x & y;
        if w != 0 {
            return Some(i * BITS + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Parity of the bitwise AND of two slices (the GF(2) inner product); the
/// shorter slice is implicitly zero-extended.
#[inline]
pub fn dot(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .zip(b)
        .fold(0u32, |acc, (x, y)| acc ^ (x & y).count_ones())
        & 1
        == 1
}

/// Iterator over the indices of set bits in a word slice, ascending.
///
/// This is the single bit-scan loop behind [`crate::BitVec::iter_ones`] and
/// `veriqec_cexpr::Affine::vars`: it skips zero words wholesale and peels
/// set bits off each nonzero word with `trailing_zeros`.
#[derive(Clone)]
pub struct WordOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> WordOnes<'a> {
    /// Creates an iterator over the set bits of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        WordOnes {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for WordOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_popcount_roundtrip() {
        let mut a = [0b1010u64, 0];
        xor_into(&mut a, &[0b0110, 1]);
        assert_eq!(a, [0b1100, 1]);
        assert_eq!(popcount(&a), 3);
        assert!(!is_zero(&a));
        assert!(is_zero(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "destination too short")]
    fn xor_into_rejects_short_destination() {
        xor_into(&mut [0u64], &[1, 2]);
    }

    #[test]
    fn significant_len_trims_trailing_zeros() {
        assert_eq!(significant_len(&[1, 0, 2, 0, 0]), 3);
        assert_eq!(significant_len(&[0, 0]), 0);
        assert_eq!(significant_len(&[]), 0);
    }

    #[test]
    fn get_bit_is_total() {
        let w = [1u64 << 63, 1];
        assert!(get_bit(&w, 63));
        assert!(get_bit(&w, 64));
        assert!(!get_bit(&w, 65));
        assert!(!get_bit(&w, 100_000));
    }

    #[test]
    fn dot_zero_extends() {
        assert!(dot(&[0b11], &[0b01, 0xFF]));
        assert!(!dot(&[0b11], &[0b11, 0xFF]));
    }

    #[test]
    fn first_common_one_scans_words() {
        assert_eq!(first_common_one(&[0b100, 0], &[0b110, 1]), Some(2));
        assert_eq!(first_common_one(&[0, 1 << 3], &[0, 1 << 3]), Some(67));
        assert_eq!(first_common_one(&[0b01], &[0b10]), None);
        assert_eq!(first_common_one(&[], &[1]), None);
    }

    #[test]
    fn word_ones_crosses_words() {
        let w = [1u64 | (1 << 63), 0, 1 << 5];
        let ones: Vec<usize> = WordOnes::new(&w).collect();
        assert_eq!(ones, vec![0, 63, 133]);
        assert!(WordOnes::new(&[]).next().is_none());
    }
}
