//! Bit-packed linear algebra over GF(2).
//!
//! This crate is the lowest-level substrate of the Veri-QEC reproduction:
//! everything from the symplectic representation of Pauli operators to
//! parity-check matrices, decoder conditions and the generator-decomposition
//! step of the verification-condition reduction is built on [`BitVec`] and
//! [`BitMatrix`].
//!
//! # Examples
//!
//! ```
//! use veriqec_gf2::{BitMatrix, BitVec};
//!
//! // Syndrome computation for the 3-bit repetition code.
//! let h = BitMatrix::parse(&["110", "011"]);
//! let error = BitVec::parse("010");
//! assert_eq!(h.mul_vec(&error).to_string(), "11");
//! ```

mod bitvec;
mod matrix;
pub mod words;

pub use bitvec::{BitVec, IterOnes};
pub use matrix::BitMatrix;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bitvec(len: usize) -> impl Strategy<Value = BitVec> {
        proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
    }

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
        proptest::collection::vec(arb_bitvec(cols), rows).prop_map(BitMatrix::from_rows)
    }

    proptest! {
        #[test]
        fn xor_is_involutive(a in arb_bitvec(40), b in arb_bitvec(40)) {
            prop_assert_eq!(a.xored(&b).xored(&b), a);
        }

        #[test]
        fn dot_is_bilinear(a in arb_bitvec(30), b in arb_bitvec(30), c in arb_bitvec(30)) {
            // <a + b, c> = <a,c> + <b,c>
            prop_assert_eq!(a.xored(&b).dot(&c), a.dot(&c) ^ b.dot(&c));
        }

        #[test]
        fn weight_matches_iter_ones(a in arb_bitvec(100)) {
            prop_assert_eq!(a.weight(), a.iter_ones().count());
        }

        #[test]
        fn rref_preserves_row_space(m in arb_matrix(5, 8)) {
            let mut r = m.clone();
            r.rref();
            for row in m.iter() {
                prop_assert!(r.row_space_contains(row));
            }
            for row in r.iter().filter(|r| !r.is_zero()) {
                prop_assert!(m.row_space_contains(row));
            }
        }

        #[test]
        fn rank_bounded(m in arb_matrix(6, 9)) {
            let rk = m.rank();
            prop_assert!(rk <= 6);
            prop_assert_eq!(rk, m.transpose().rank());
        }

        #[test]
        fn solve_returns_actual_solutions(m in arb_matrix(5, 7), x in arb_bitvec(7)) {
            // Construct a consistent system and verify the returned solution.
            let b = m.mul_vec(&x);
            let sol = m.solve(&b).expect("constructed to be consistent");
            prop_assert_eq!(m.mul_vec(&sol), b);
        }

        #[test]
        fn nullspace_dimension_theorem(m in arb_matrix(6, 10)) {
            prop_assert_eq!(m.rank() + m.nullspace().len(), 10);
            for v in m.nullspace() {
                prop_assert!(m.mul_vec(&v).is_zero());
            }
        }

        #[test]
        fn matrix_mul_associates_with_vec(m in arb_matrix(4, 5), n in arb_matrix(5, 6), v in arb_bitvec(6)) {
            prop_assert_eq!(m.mul(&n).mul_vec(&v), m.mul_vec(&n.mul_vec(&v)));
        }

        #[test]
        fn blocked_rref_is_block_size_invariant(m in arb_matrix(9, 140), block in 1usize..6) {
            // Wide enough to span three storage words, so the windowed XOR
            // start offsets actually vary. block=1 is plain per-pivot
            // back-substitution — the oracle for every other block size.
            let mut unit = m.clone();
            let mut blocked = m;
            let up = unit.rref_blocked(1);
            let bp = blocked.rref_blocked(block);
            prop_assert_eq!(up, bp);
            prop_assert_eq!(unit, blocked);
        }
    }
}
