//! Bit-packed vectors over GF(2).

use crate::words::{self, WordOnes, BITS};
use std::fmt;

/// A fixed-length vector over GF(2), packed into 64-bit blocks.
///
/// `BitVec` is the workhorse of the symplectic Pauli representation and of
/// all parity-check-matrix manipulation in this workspace.
///
/// # Examples
///
/// ```
/// use veriqec_gf2::BitVec;
/// let mut v = BitVec::zeros(70);
/// v.set(3, true);
/// v.set(69, true);
/// assert_eq!(v.weight(), 2);
/// assert!(v.get(3) && v.get(69) && !v.get(4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Creates a vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Creates a vector of length `len` with exactly the listed positions set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_ones(len: usize, ones: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    /// Parses a string of `'0'`/`'1'` characters (other characters are ignored
    /// separators, so `"101 10"` is accepted).
    pub fn parse(s: &str) -> Self {
        BitVec::from_bools(s.chars().filter_map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        }))
    }

    /// Builds a vector of length `len` directly from storage words (bit `i`
    /// in word `i / 64` at position `i % 64`). Bits at positions `>= len`
    /// are masked off; missing high words are zero-filled.
    pub fn from_words(len: usize, mut blocks: Vec<u64>) -> Self {
        let n_blocks = len.div_ceil(BITS);
        blocks.resize(n_blocks, 0);
        if !len.is_multiple_of(BITS) {
            if let Some(last) = blocks.last_mut() {
                *last &= (1u64 << (len % BITS)) - 1;
            }
        }
        BitVec { blocks, len }
    }

    /// The raw storage words (little-endian bit order). Bits at positions
    /// `>= len()` are guaranteed zero.
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.blocks[i / BITS] >> (i % BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % BITS);
        if value {
            self.blocks[i / BITS] |= mask;
        } else {
            self.blocks[i / BITS] &= !mask;
        }
    }

    /// Flips bit `i` and returns its new value.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor_assign");
        words::xor_into(&mut self.blocks, &other.blocks);
    }

    /// In-place XOR with another vector of the same length, starting at
    /// storage word `from_word` (bits below `from_word * 64` are left
    /// untouched in `self` and ignored in `other`).
    ///
    /// This is the windowed kernel of the blocked elimination in
    /// [`crate::BitMatrix`]: when the source row is known to have a zero
    /// prefix (an echelon-form pivot row), skipping its leading zero words
    /// does the same XOR with a fraction of the memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign_from_word(&mut self, other: &BitVec, from_word: usize) {
        assert_eq!(
            self.len, other.len,
            "length mismatch in xor_assign_from_word"
        );
        let start = from_word.min(self.blocks.len());
        words::xor_into(&mut self.blocks[start..], &other.blocks[start..]);
    }

    /// Returns `self XOR other`.
    pub fn xored(&self, other: &BitVec) -> BitVec {
        let mut r = self.clone();
        r.xor_assign(other);
        r
    }

    /// Returns `self AND other`.
    pub fn anded(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch in anded");
        let mut r = self.clone();
        for (a, b) in r.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
        r
    }

    /// Returns `self OR other`.
    pub fn ored(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch in ored");
        let mut r = self.clone();
        for (a, b) in r.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
        r
    }

    /// Hamming weight (number of set bits).
    pub fn weight(&self) -> usize {
        words::popcount(&self.blocks)
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        words::is_zero(&self.blocks)
    }

    /// Inner product over GF(2): parity of the AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in dot");
        words::dot(&self.blocks, &other.blocks)
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        WordOnes::new(&self.blocks)
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Index of the lowest bit set in both `self` and `mask`, if any — a
    /// word-level scan, no per-bit probing.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn first_one_masked(&self, mask: &BitVec) -> Option<usize> {
        assert_eq!(self.len, mask.len, "length mismatch in first_one_masked");
        words::first_common_one(&self.blocks, &mask.blocks)
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut r = BitVec::zeros(self.len + other.len);
        for i in self.iter_ones() {
            r.set(i, true);
        }
        for i in other.iter_ones() {
            r.set(self.len + i, true);
        }
        r
    }

    /// Extracts bits `[start, start+len)` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.len, "slice out of range");
        let mut r = BitVec::zeros(len);
        for i in 0..len {
            if self.get(start + i) {
                r.set(i, true);
            }
        }
        r
    }

    /// Collects into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over set-bit indices of a [`BitVec`]. Produced by
/// [`BitVec::iter_ones`]; the bit-scan loop itself lives in
/// [`crate::words::WordOnes`] and is shared with the packed affine phases.
/// (`BitVec` keeps all bits at positions `>= len()` zero, so no length guard
/// is needed here.)
pub type IterOnes<'a> = WordOnes<'a>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.weight(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 7);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let v = BitVec::parse("1010 0111");
        assert_eq!(v.to_string(), "10100111");
        assert_eq!(v.len(), 8);
        assert_eq!(v.weight(), 5);
    }

    #[test]
    fn xor_and_dot() {
        let a = BitVec::parse("1100");
        let b = BitVec::parse("1010");
        assert_eq!(a.xored(&b).to_string(), "0110");
        assert!(a.dot(&b)); // overlap in position 0 only -> parity 1
        let c = BitVec::parse("0011");
        assert!(!a.dot(&c));
    }

    #[test]
    fn iter_ones_crosses_blocks() {
        let v = BitVec::from_ones(200, &[0, 63, 64, 150, 199]);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 150, 199]);
    }

    #[test]
    fn concat_and_slice() {
        let a = BitVec::parse("101");
        let b = BitVec::parse("01");
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "10101");
        assert_eq!(c.slice(1, 3).to_string(), "010");
    }

    #[test]
    fn from_words_masks_and_pads() {
        let v = BitVec::from_words(70, vec![u64::MAX, u64::MAX]);
        assert_eq!(v.len(), 70);
        assert_eq!(v.weight(), 70);
        assert_eq!(v.as_words()[1], (1u64 << 6) - 1);
        let w = BitVec::from_words(130, vec![1]);
        assert_eq!(w.as_words().len(), 3);
        assert_eq!(w.weight(), 1);
    }

    #[test]
    fn xor_assign_from_word_skips_prefix() {
        let a = BitVec::from_ones(200, &[1, 64, 130, 199]);
        let b = BitVec::from_ones(200, &[1, 65, 130]);
        // Window starting at word 1 leaves bits 0..64 of `a` untouched and
        // ignores bits 0..64 of `b`; above that it is a plain XOR.
        let mut windowed = a.clone();
        windowed.xor_assign_from_word(&b, 1);
        let mut expect = a.clone();
        expect.xor_assign(&b);
        expect.set(1, true); // undo the bit-1 toggle that the window skipped
        assert_eq!(windowed, expect);
        // Window 0 is exactly xor_assign; out-of-range windows are no-ops.
        let mut full = a.clone();
        full.xor_assign_from_word(&b, 0);
        assert_eq!(full, a.xored(&b));
        let mut none = a.clone();
        none.xor_assign_from_word(&b, 100);
        assert_eq!(none, a);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(5);
        assert!(v.flip(2));
        assert!(!v.flip(2));
        assert!(v.is_zero());
    }
}
