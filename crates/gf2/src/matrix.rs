//! Dense GF(2) matrices with row-reduction, solving and nullspace computation.

use crate::words::BITS;
use crate::BitVec;
use std::fmt;

/// Pivot-block width used by [`BitMatrix::rref`]. Back-substitution applies
/// this many pivot rows to each target row per sweep, so a block of target
/// rows and the pivot block stay resident in cache together.
const RREF_BLOCK: usize = 32;

/// A dense matrix over GF(2), stored as a list of bit-packed rows.
///
/// Used for parity-check matrices, symplectic check matrices and the
/// generator-decomposition step of the verification-condition reduction
/// (case 2 of §5.1 in the paper).
///
/// # Examples
///
/// ```
/// use veriqec_gf2::BitMatrix;
/// // The parity-check matrix of the [7,4,3] Hamming code.
/// let h = BitMatrix::parse(&[
///     "1010101",
///     "0110011",
///     "0001111",
/// ]);
/// assert_eq!(h.rank(), 3);
/// assert_eq!(h.nullspace().len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must have equal length"
        );
        BitMatrix { rows, cols }
    }

    /// Parses rows of `'0'`/`'1'` strings (whitespace ignored).
    pub fn parse(rows: &[&str]) -> Self {
        BitMatrix::from_rows(rows.iter().map(|s| BitVec::parse(s)).collect())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        self.rows[r].set(c, v);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BitVec> {
        self.rows.iter()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from `num_cols` (unless the matrix is empty).
    pub fn push_row(&mut self, row: BitVec) {
        if self.rows.is_empty() && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.rows.push(row);
    }

    /// XORs row `src` into row `dst`.
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "cannot xor a row into itself");
        let (a, b) = if src < dst {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        };
        b.xor_assign(a);
    }

    /// XORs row `src` into row `dst`, starting at storage word `from_word`.
    /// Only valid as a full row operation when row `src` is zero below
    /// `from_word * 64` (an echelon-form pivot row), which is how the
    /// elimination passes use it.
    fn xor_row_into_from_word(&mut self, src: usize, dst: usize, from_word: usize) {
        debug_assert_ne!(src, dst, "cannot xor a row into itself");
        let (a, b) = if src < dst {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        };
        b.xor_assign_from_word(a, from_word);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter_ones() {
                t.set(c, r, true);
            }
        }
        t
    }

    /// Matrix-vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        BitVec::from_bools(self.rows.iter().map(|r| r.dot(v)))
    }

    /// Matrix-matrix product over GF(2).
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows.len(), "dimension mismatch in mul");
        let ot = other.transpose();
        let mut out = BitMatrix::zeros(self.rows.len(), other.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, col) in ot.rows.iter().enumerate() {
                if row.dot(col) {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// In-place reduction to *reduced row echelon form*.
    ///
    /// Returns the pivot columns, one per nonzero row of the result; rows are
    /// permuted so that row `i` has its pivot at `pivots[i]` and zero rows sink
    /// to the bottom.
    ///
    /// Delegates to [`BitMatrix::rref_blocked`] with a cache-sized pivot
    /// block; the result (row permutation included) is identical to classic
    /// one-pivot-at-a-time Gauss–Jordan.
    pub fn rref(&mut self) -> Vec<usize> {
        self.rref_blocked(RREF_BLOCK)
    }

    /// Cache-blocked Gauss–Jordan elimination.
    ///
    /// Two passes instead of the classic eliminate-everything-at-pivot-time
    /// loop:
    ///
    /// 1. **Forward, windowed.** Eliminate only *below* each pivot, and start
    ///    every row XOR at the pivot column's storage word — the pivot row is
    ///    in echelon form, so its words below the pivot column are zero and
    ///    the XOR skips them. This halves the memory traffic of the forward
    ///    pass on average.
    /// 2. **Back-substitution, blocked right-to-left.** Take the pivots in
    ///    blocks of `block` (rightmost block first), finish the block's own
    ///    rows against each other (descending, so each used row is already
    ///    fully reduced), then sweep each earlier row once against the whole
    ///    block. The block's pivot rows stay hot in cache across the sweep
    ///    instead of being streamed in again for every pivot.
    ///
    /// Pivot selection — and therefore the row permutation and the final
    /// RREF — matches the unblocked elimination exactly: candidate rows have
    /// been reduced against all earlier pivots in both variants by the time
    /// a column is searched, and elimination above the pivot never affects
    /// the search. `block` must be at least 1; `rref_blocked(1)` is plain
    /// per-pivot back-substitution and is used as the differential oracle in
    /// the tests.
    pub fn rref_blocked(&mut self, block: usize) -> Vec<usize> {
        assert!(block >= 1, "block must be at least 1");
        let mut pivots = Vec::new();
        let mut next_row = 0;
        for col in 0..self.cols {
            let Some(pivot_row) = (next_row..self.rows.len()).find(|&r| self.rows[r].get(col))
            else {
                continue;
            };
            self.rows.swap(next_row, pivot_row);
            let word = col / BITS;
            for r in next_row + 1..self.rows.len() {
                if self.rows[r].get(col) {
                    self.xor_row_into_from_word(next_row, r, word);
                }
            }
            pivots.push(col);
            next_row += 1;
            if next_row == self.rows.len() {
                break;
            }
        }
        let mut hi = pivots.len();
        while hi > 0 {
            let lo = hi.saturating_sub(block);
            for i in (lo..hi).rev() {
                for (j, &pivot) in pivots.iter().enumerate().take(hi).skip(i + 1) {
                    if self.rows[i].get(pivot) {
                        self.xor_row_into_from_word(j, i, pivot / BITS);
                    }
                }
            }
            for r in 0..lo {
                for (j, &pivot) in pivots.iter().enumerate().take(hi).skip(lo) {
                    if self.rows[r].get(pivot) {
                        self.xor_row_into_from_word(j, r, pivot / BITS);
                    }
                }
            }
            hi = lo;
        }
        pivots
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.clone().rref().len()
    }

    /// Partial Gaussian elimination restricted to the columns set in `mask`:
    /// a single forward pass over the rows where each row is reduced against
    /// the pivots found so far (word-level first-set-bit scans and row XORs)
    /// until it either runs out of masked bits — a *residual* row — or
    /// claims an unpivoted masked column and becomes that column's frozen
    /// pivot. Pivot rows are never modified after they are claimed.
    ///
    /// Returns `(column, pivot_row)` pairs in discovery (row) order. This is
    /// the elimination shape of the branch-resolution step in
    /// `veriqec_vcgen` (`ReducedVc::resolve_branches`), where each pivot row
    /// becomes a pinning constraint and the residual rows the genuine proof
    /// obligations. After the call, residual rows contain no masked column
    /// that found a pivot.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != num_cols`.
    pub fn pivot_reduce_masked(&mut self, mask: &BitVec) -> Vec<(usize, usize)> {
        assert_eq!(mask.len(), self.cols, "mask width mismatch");
        let mut pivot_of: Vec<Option<usize>> = vec![None; self.cols];
        let mut pivots = Vec::new();
        for r in 0..self.rows.len() {
            // Each XOR clears the row's lowest masked bit and can only
            // introduce masked bits above it (the pivot's own lowest masked
            // bit is the one being cleared), so this loop terminates.
            while let Some(c) = self.rows[r].first_one_masked(mask) {
                match pivot_of[c] {
                    Some(p) => self.xor_row_into(p, r),
                    None => {
                        pivot_of[c] = Some(r);
                        pivots.push((c, r));
                        break;
                    }
                }
            }
        }
        pivots
    }

    /// Solves `self * x = b`, returning one solution if the system is consistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != num_rows`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows.len(), "dimension mismatch in solve");
        // Row-reduce the augmented matrix [A | b].
        let mut aug = BitMatrix::from_rows(
            self.rows
                .iter()
                .zip(b.to_bools())
                .map(|(row, bi)| row.concat(&BitVec::from_bools([bi])))
                .collect(),
        );
        let pivots = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for (i, &p) in pivots.iter().enumerate() {
            if aug.rows[i].get(self.cols) {
                x.set(p, true);
            }
        }
        Some(x)
    }

    /// A basis of the (right) nullspace: all `v` with `self * v = 0`.
    pub fn nullspace(&self) -> Vec<BitVec> {
        let mut m = self.clone();
        let pivots = m.rref();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in (0..self.cols).filter(|c| !pivot_set.contains(c)) {
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            for (i, &p) in pivots.iter().enumerate() {
                if m.rows[i].get(free) {
                    v.set(p, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Horizontally concatenates `self | other`.
    pub fn hstack(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows.len(), other.rows.len(), "row count mismatch");
        BitMatrix::from_rows(
            self.rows
                .iter()
                .zip(&other.rows)
                .map(|(a, b)| a.concat(b))
                .collect(),
        )
    }

    /// Vertically stacks `self` on top of `other`.
    pub fn vstack(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        BitMatrix::from_rows(rows)
    }

    /// True if `v` lies in the row space.
    pub fn row_space_contains(&self, v: &BitVec) -> bool {
        self.transpose().solve(v).is_some()
    }

    /// Expresses `v` as a combination of the rows: returns `c` with
    /// `c * self = v` (as a row-selector vector), if one exists.
    pub fn express_in_rows(&self, v: &BitVec) -> Option<BitVec> {
        self.transpose().solve(v)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows.len(), self.cols)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rref_identity_is_fixed_point() {
        let mut m = BitMatrix::identity(4);
        let pivots = m.rref();
        assert_eq!(pivots, vec![0, 1, 2, 3]);
        assert_eq!(m, BitMatrix::identity(4));
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMatrix::parse(&["110", "011", "101"]); // row3 = row1 + row2
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn solve_consistent_system() {
        let m = BitMatrix::parse(&["110", "011"]);
        let b = BitVec::parse("11");
        let x = m.solve(&b).expect("consistent");
        assert_eq!(m.mul_vec(&x), b);
    }

    #[test]
    fn solve_inconsistent_system() {
        let m = BitMatrix::parse(&["110", "110"]);
        let b = BitVec::parse("10");
        assert!(m.solve(&b).is_none());
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let m = BitMatrix::parse(&["1010101", "0110011", "0001111"]);
        let ns = m.nullspace();
        assert_eq!(ns.len(), 4);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
        // Basis is independent.
        assert_eq!(BitMatrix::from_rows(ns).rank(), 4);
    }

    #[test]
    fn transpose_involution() {
        let m = BitMatrix::parse(&["101", "010"]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_against_identity() {
        let m = BitMatrix::parse(&["101", "110"]);
        assert_eq!(m.mul(&BitMatrix::identity(3)), m);
    }

    #[test]
    fn pivot_reduce_masked_pins_and_clears() {
        // Rows: s+a, s+b, a+b over columns [s, a, b]; only column s masked.
        let mut m = BitMatrix::parse(&["110", "101", "011"]);
        let pivots = m.pivot_reduce_masked(&BitVec::parse("100"));
        assert_eq!(pivots, vec![(0, 0)]);
        // Pivot row untouched; row 1 had col 0 cleared (now a+b); row 2 untouched.
        assert_eq!(m.row(0).to_string(), "110");
        assert_eq!(m.row(1).to_string(), "011");
        assert_eq!(m.row(2).to_string(), "011");
    }

    #[test]
    fn pivot_reduce_masked_freezes_pivot_rows() {
        // Eliminating col 1 after col 0 must not fold back into row 0's pin.
        let mut m = BitMatrix::parse(&["110", "011"]);
        let pivots = m.pivot_reduce_masked(&BitVec::parse("110"));
        assert_eq!(pivots, vec![(0, 0), (1, 1)]);
        assert_eq!(m.row(0).to_string(), "110");
        assert_eq!(m.row(1).to_string(), "011");
    }

    #[test]
    fn pivot_reduce_masked_chains_reductions() {
        // Row 2 = row0 ^ row1 over the masked columns: it must reduce to its
        // unmasked residue through two chained XORs.
        let mut m = BitMatrix::parse(&["1001", "0101", "1100"]);
        let pivots = m.pivot_reduce_masked(&BitVec::parse("1110"));
        assert_eq!(pivots, vec![(0, 0), (1, 1)]);
        // row2: ^row0 -> 0101, ^row1 -> 0000... then col-3 residue: 1001^0101^1100 = 0000.
        assert!(m.row(2).is_zero());
        // Residual rows carry no pivoted masked column.
        for &(c, _) in &pivots {
            assert!(!m.row(2).get(c));
        }
    }

    /// The pre-blocking Gauss–Jordan loop, kept verbatim as the oracle for
    /// the blocked elimination.
    fn rref_reference(m: &mut BitMatrix) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut next_row = 0;
        for col in 0..m.cols {
            let Some(pivot_row) = (next_row..m.rows.len()).find(|&r| m.rows[r].get(col)) else {
                continue;
            };
            m.rows.swap(next_row, pivot_row);
            for r in 0..m.rows.len() {
                if r != next_row && m.rows[r].get(col) {
                    m.xor_row_into(next_row, r);
                }
            }
            pivots.push(col);
            next_row += 1;
            if next_row == m.rows.len() {
                break;
            }
        }
        pivots
    }

    #[test]
    fn blocked_rref_matches_reference_on_fixed_cases() {
        let cases: &[&[&str]] = &[
            &["1010101", "0110011", "0001111"],
            &["110", "011", "101"],
            &["0000", "0000"],
            &["1"],
            &["01", "10", "11"],
        ];
        for rows in cases {
            for block in [1, 2, 3, 64] {
                let mut blocked = BitMatrix::parse(rows);
                let mut reference = BitMatrix::parse(rows);
                let bp = blocked.rref_blocked(block);
                let rp = rref_reference(&mut reference);
                assert_eq!(bp, rp, "pivots, block {block}");
                assert_eq!(blocked, reference, "rref, block {block}");
            }
        }
    }

    #[test]
    fn express_in_rows_finds_combination() {
        let m = BitMatrix::parse(&["1100", "0110", "0011"]);
        let v = BitVec::parse("1010"); // rows 0 + 1
        let c = m.express_in_rows(&v).expect("in row space");
        let mut acc = BitVec::zeros(4);
        for i in c.iter_ones() {
            acc.xor_assign(m.row(i));
        }
        assert_eq!(acc, v);
        assert!(m.express_in_rows(&BitVec::parse("1000")).is_none());
    }
}
