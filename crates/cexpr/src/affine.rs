//! XOR-affine boolean forms: the phases `(-1)^φ` of symbolic Pauli operators.
//!
//! Every proof rule of the paper's Fig. 3 that a QEC program exercises maps a
//! phase `φ` to `φ ⊕ δ` with `δ` affine in the classical variables, so the
//! whole weakest-precondition pipeline can carry phases in this closed form.
//!
//! The variable set is stored as a dense bit-packed word set (bit `i` set ⇔
//! `VarId(i)` occurs), sharing the word kernels of [`veriqec_gf2::words`]:
//! XOR of two forms is a handful of 64-bit word XORs, membership is a bit
//! test, and iteration is a word scan. Forms over variable ids below 256
//! live in a fixed inline 4-word lane — one XOR step of the widened
//! [`veriqec_gf2::words`] kernels, and wide enough for the full syndrome
//! variable space of a `d = 7` surface-code cycle — with no heap
//! allocation; larger id spaces (multi-cycle, multi-block scenarios) spill
//! to a heap vector. Two inline forms combine through
//! [`veriqec_gf2::words::xor_lane`], a fixed-shape 4×u64 XOR with no length
//! dispatch at all. `VarId`s are allocated densely by `VarTable`, which
//! keeps the bitset dense in practice.

use crate::{BExp, CMem, VarId};
use std::cmp::Ordering;
use std::fmt;
use veriqec_gf2::words::{self, WordOnes, BITS, LANE_WORDS};

/// Word count of the inline small-form representation: variable ids below
/// `4 * 64 = 256` never allocate. Matches
/// [`veriqec_gf2::words::LANE_WORDS`] so an inline×inline XOR is exactly
/// one lane step of the widened kernels.
const INLINE_WORDS: usize = LANE_WORDS;

/// The packed variable set of an [`Affine`] form.
///
/// Canonical-form invariant (maintained by [`Affine::normalize`]): `Heap` is
/// used exactly when more than [`INLINE_WORDS`] significant words are needed,
/// and a `Heap` vector never has a zero last word. Every set of variables
/// therefore has a unique representation, which lets `PartialEq`/`Eq`/`Hash`
/// be derived structurally.
#[derive(Clone, PartialEq, Eq, Hash)]
enum VarWords {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

impl VarWords {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            VarWords::Inline(w) => w,
            VarWords::Heap(v) => v,
        }
    }
}

/// An affine form over GF(2): `c ⊕ v₁ ⊕ v₂ ⊕ …` with distinct variables.
///
/// # Examples
///
/// ```
/// use veriqec_cexpr::{Affine, VarId};
/// let e = Affine::var(VarId(0)) ^ Affine::var(VarId(1)) ^ Affine::one();
/// assert_eq!(e.to_string(), "1 + v0 + v1");
/// // x ⊕ x = 0
/// assert!((Affine::var(VarId(0)) ^ Affine::var(VarId(0))).is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    constant: bool,
    vars: VarWords,
}

impl Default for Affine {
    fn default() -> Self {
        Affine {
            constant: false,
            vars: VarWords::Inline([0; INLINE_WORDS]),
        }
    }
}

impl Affine {
    /// The zero form (phase `+1`).
    pub fn zero() -> Self {
        Affine::default()
    }

    /// The constant-one form (phase `-1`).
    pub fn one() -> Self {
        Affine::constant(true)
    }

    /// A single variable.
    pub fn var(v: VarId) -> Self {
        let mut a = Affine::zero();
        a.xor_var(v);
        a
    }

    /// A constant.
    pub fn constant(c: bool) -> Self {
        Affine {
            constant: c,
            vars: VarWords::Inline([0; INLINE_WORDS]),
        }
    }

    /// The XOR of several variables.
    pub fn sum_vars<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        let mut a = Affine::zero();
        for v in vars {
            a.xor_var(v);
        }
        a
    }

    /// The raw storage words of the variable set.
    #[inline]
    fn words(&self) -> &[u64] {
        self.vars.as_slice()
    }

    /// Grows the representation so at least `min_words` words are
    /// addressable, returning the mutable word slice.
    #[inline]
    fn words_mut(&mut self, min_words: usize) -> &mut [u64] {
        if min_words > INLINE_WORDS {
            if let VarWords::Inline(w) = self.vars {
                let mut v = w.to_vec();
                v.resize(min_words, 0);
                self.vars = VarWords::Heap(v);
            }
        }
        match &mut self.vars {
            VarWords::Inline(w) => w,
            VarWords::Heap(v) => {
                if v.len() < min_words {
                    v.resize(min_words, 0);
                }
                v
            }
        }
    }

    /// Restores the canonical-form invariant after a mutation: heap storage
    /// is trimmed of trailing zero words and demoted to the inline pair when
    /// it fits.
    #[inline]
    fn normalize(&mut self) {
        if let VarWords::Heap(v) = &mut self.vars {
            let sig = words::significant_len(v);
            if sig <= INLINE_WORDS {
                let mut w = [0u64; INLINE_WORDS];
                w[..sig].copy_from_slice(&v[..sig]);
                self.vars = VarWords::Inline(w);
            } else {
                v.truncate(sig);
            }
        }
    }

    /// True when this is the constant 0.
    pub fn is_zero(&self) -> bool {
        !self.constant && self.is_constant()
    }

    /// True when this is the constant 1.
    pub fn is_one(&self) -> bool {
        self.constant && self.is_constant()
    }

    /// True when no variables occur.
    pub fn is_constant(&self) -> bool {
        words::is_zero(self.words())
    }

    /// The constant part.
    pub fn constant_part(&self) -> bool {
        self.constant
    }

    /// The set of variables with odd coefficient, ascending. This is a word
    /// scan over the packed set — no per-element tree walk.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        WordOnes::new(self.words()).map(|i| VarId(i as u32))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        words::popcount(self.words())
    }

    /// The largest variable occurring in the form, if any.
    pub fn max_var(&self) -> Option<VarId> {
        let w = self.words();
        let sig = words::significant_len(w);
        if sig == 0 {
            return None;
        }
        let top = w[sig - 1];
        Some(VarId(
            ((sig - 1) * BITS + (BITS - 1 - top.leading_zeros() as usize)) as u32,
        ))
    }

    /// True when `v` occurs in the form.
    pub fn contains(&self, v: VarId) -> bool {
        words::get_bit(self.words(), v.0 as usize)
    }

    /// The lowest variable occurring in both `self` and `mask` — a
    /// word-level scan, no per-variable probing. The workhorse of the
    /// branch-resolution elimination in `veriqec_vcgen`, where `mask` is the
    /// XOR of the or-bound syndrome variables.
    pub fn first_var_masked(&self, mask: &Affine) -> Option<VarId> {
        words::first_common_one(self.words(), mask.words()).map(|i| VarId(i as u32))
    }

    /// XORs in a single variable.
    pub fn xor_var(&mut self, v: VarId) {
        let i = v.0 as usize;
        self.words_mut(i / BITS + 1)[i / BITS] ^= 1u64 << (i % BITS);
        self.normalize();
    }

    /// XORs in a constant.
    pub fn xor_const(&mut self, c: bool) {
        self.constant ^= c;
    }

    /// Conditionally XORs another form: `self ⊕= cond · other` where `cond`
    /// is a compile-time boolean. A convenience for phase-update rules.
    pub fn xor_if(&mut self, cond: bool, other: &Affine) {
        if cond {
            *self ^= other;
        }
    }

    /// Substitutes variable `v` by another affine form.
    pub fn subst(&self, v: VarId, e: &Affine) -> Affine {
        if !self.contains(v) {
            return self.clone();
        }
        let mut out = self.clone();
        out.xor_var(v);
        out ^= e;
        out
    }

    /// Evaluates under a classical memory.
    pub fn eval(&self, m: &CMem) -> bool {
        self.vars()
            .fold(self.constant, |acc, v| acc ^ m.get(v).as_bool())
    }

    /// Converts to a general boolean expression (an XOR chain).
    pub fn to_bexp(&self) -> BExp {
        self.vars().fold(BExp::Const(self.constant), |acc, v| {
            BExp::xor(acc, BExp::var(v))
        })
    }

    /// Packs the form into a check-matrix row of `width + 1` columns:
    /// columns `0..width` are the variables (column = variable id) and the
    /// final column holds the constant. Inverse of [`Affine::from_row`].
    ///
    /// # Panics
    ///
    /// Panics if a variable id is `>= width`.
    pub fn to_row(&self, width: usize) -> veriqec_gf2::BitVec {
        assert!(
            self.max_var().is_none_or(|v| (v.0 as usize) < width),
            "variable id out of range for row width {width}"
        );
        // Single zero-filled allocation of the exact row width; the packed
        // variable words drop straight in.
        let n_blocks = (width + 1).div_ceil(BITS);
        let mut blocks = vec![0u64; n_blocks];
        let w = self.words();
        let k = w.len().min(n_blocks);
        blocks[..k].copy_from_slice(&w[..k]);
        if self.constant {
            blocks[width / BITS] |= 1u64 << (width % BITS);
        }
        veriqec_gf2::BitVec::from_words(width + 1, blocks)
    }

    /// Unpacks a check-matrix row produced by [`Affine::to_row`] (last
    /// column = constant, earlier columns = variable ids). Rows whose
    /// variables fit the inline span come back allocation-free.
    pub fn from_row(row: &veriqec_gf2::BitVec) -> Affine {
        assert!(!row.is_empty(), "row must have a constant column");
        let width = row.len() - 1;
        let constant = row.get(width);
        let w = row.as_words();
        let sig = words::significant_len(w);
        let mut a = Affine::constant(constant);
        let dst = a.words_mut(sig.max(1));
        dst[..sig].copy_from_slice(&w[..sig]);
        // Clear the constant bit out of the variable words.
        if width / BITS < dst.len() {
            dst[width / BITS] &= !(1u64 << (width % BITS));
        }
        a.normalize();
        a
    }
}

impl std::ops::BitXorAssign<&Affine> for Affine {
    fn bitxor_assign(&mut self, rhs: &Affine) {
        self.constant ^= rhs.constant;
        // Inline×inline — the per-gate common case — is a fixed 4-word lane
        // XOR: no significant-length scan, no growth check, no normalize
        // (inline is always canonical).
        if let (VarWords::Inline(dst), VarWords::Inline(src)) = (&mut self.vars, &rhs.vars) {
            words::xor_lane(dst, src);
            return;
        }
        let rw = rhs.words();
        let sig = words::significant_len(rw);
        words::xor_into(self.words_mut(sig), &rw[..sig]);
        self.normalize();
    }
}

impl std::ops::BitXorAssign for Affine {
    fn bitxor_assign(&mut self, rhs: Affine) {
        *self ^= &rhs;
    }
}

impl std::ops::BitXor for Affine {
    type Output = Affine;

    fn bitxor(mut self, rhs: Affine) -> Affine {
        self ^= &rhs;
        self
    }
}

impl std::ops::BitXor<&Affine> for Affine {
    type Output = Affine;

    fn bitxor(mut self, rhs: &Affine) -> Affine {
        self ^= rhs;
        self
    }
}

// Order mirrors the historical `(bool, BTreeSet<VarId>)` derive: constant
// first, then the sorted variable sequences compared lexicographically.
impl Ord for Affine {
    fn cmp(&self, other: &Self) -> Ordering {
        self.constant
            .cmp(&other.constant)
            .then_with(|| WordOnes::new(self.words()).cmp(WordOnes::new(other.words())))
    }
}

impl PartialOrd for Affine {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        if self.constant {
            write!(f, "1")?;
            first = false;
        }
        for v in self.vars() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "v{}", v.0)?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<VarId> for Affine {
    fn from(v: VarId) -> Self {
        Affine::var(v)
    }
}

impl From<bool> for Affine {
    fn from(c: bool) -> Self {
        Affine::constant(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn xor_cancels_duplicates() {
        let a = Affine::var(VarId(1)) ^ Affine::var(VarId(2)) ^ Affine::var(VarId(1));
        assert_eq!(a, Affine::var(VarId(2)));
    }

    #[test]
    fn subst_expands() {
        // (v0 ⊕ v1)[v0 := v1 ⊕ 1] = 1
        let a = Affine::var(VarId(0)) ^ Affine::var(VarId(1));
        let r = a.subst(VarId(0), &(Affine::var(VarId(1)) ^ Affine::one()));
        assert!(r.is_one());
    }

    #[test]
    fn eval_and_to_bexp_agree() {
        let a = Affine::var(VarId(0)) ^ Affine::var(VarId(1)) ^ Affine::one();
        for bits in 0..4u8 {
            let mut m = CMem::new();
            m.set(VarId(0), Value::Bool(bits & 1 == 1));
            m.set(VarId(1), Value::Bool(bits & 2 == 2));
            assert_eq!(a.eval(&m), a.to_bexp().eval(&m));
        }
    }

    #[test]
    fn subst_absent_var_is_identity() {
        let a = Affine::var(VarId(3));
        assert_eq!(a.subst(VarId(9), &Affine::one()), a);
    }

    #[test]
    fn large_ids_spill_to_heap_and_demote_back() {
        let mut a = Affine::var(VarId(5));
        a.xor_var(VarId(1000));
        assert!(matches!(a.vars, VarWords::Heap(_)));
        assert!(a.contains(VarId(1000)) && a.contains(VarId(5)));
        assert_eq!(a.max_var(), Some(VarId(1000)));
        a.xor_var(VarId(1000)); // removing the high bit demotes to inline
        assert!(matches!(a.vars, VarWords::Inline(_)));
        assert_eq!(a, Affine::var(VarId(5)));
        assert_eq!(a.max_var(), Some(VarId(5)));
    }

    #[test]
    fn inline_span_covers_ids_below_256() {
        // Ids up to 255 stay in the fixed 4-word lane; 256 spills.
        let mut a = Affine::var(VarId(255));
        assert!(matches!(a.vars, VarWords::Inline(_)));
        a.xor_var(VarId(256));
        assert!(matches!(a.vars, VarWords::Heap(_)));
        assert!(a.contains(VarId(255)) && a.contains(VarId(256)));
    }

    #[test]
    fn inline_fast_path_matches_general_xor() {
        // Inline×inline takes the fixed-lane path; forcing one operand to
        // heap width first takes the general path. Same result either way.
        let a = Affine::var(VarId(7)) ^ Affine::var(VarId(200)) ^ Affine::one();
        let b = Affine::var(VarId(200)) ^ Affine::var(VarId(63));
        let mut fast = a.clone();
        fast ^= &b;
        let mut general = a.clone();
        general.xor_var(VarId(300)); // promote to heap
        assert!(matches!(general.vars, VarWords::Heap(_)));
        general ^= &b; // heap×inline: the general path
        general.xor_var(VarId(300)); // drop the spill bit, demote back
        assert_eq!(fast, general);
        assert_eq!(
            fast,
            Affine::var(VarId(7)) ^ Affine::var(VarId(63)) ^ Affine::one()
        );
    }

    #[test]
    fn canonical_form_makes_eq_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Build the same value along two different mutation paths.
        let mut a = Affine::var(VarId(200));
        a.xor_var(VarId(3));
        a.xor_var(VarId(200)); // heap → inline demotion
        let b = Affine::var(VarId(3));
        assert_eq!(a, b);
        let hash = |x: &Affine| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn ord_matches_set_lexicographic_order() {
        let v = |i| Affine::var(VarId(i));
        // {1} < {1,2} < {2}; constant dominates.
        assert!(v(1) < (v(1) ^ v(2)));
        assert!((v(1) ^ v(2)) < v(2));
        assert!(Affine::zero() < Affine::one());
        assert!(v(1) < (Affine::one() ^ v(1)));
    }

    #[test]
    fn row_roundtrip_preserves_form() {
        let a = Affine::var(VarId(0)) ^ Affine::var(VarId(130)) ^ Affine::one();
        let row = a.to_row(131);
        assert_eq!(row.len(), 132);
        assert!(row.get(131)); // constant column
        assert_eq!(Affine::from_row(&row), a);
        // Constant lands exactly on a word boundary too.
        let b = Affine::var(VarId(63));
        assert_eq!(Affine::from_row(&b.to_row(64)), b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn to_row_rejects_narrow_width() {
        let _ = Affine::var(VarId(9)).to_row(9);
    }
}
