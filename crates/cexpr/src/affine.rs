//! XOR-affine boolean forms: the phases `(-1)^φ` of symbolic Pauli operators.
//!
//! Every proof rule of the paper's Fig. 3 that a QEC program exercises maps a
//! phase `φ` to `φ ⊕ δ` with `δ` affine in the classical variables, so the
//! whole weakest-precondition pipeline can carry phases in this closed form.

use crate::{BExp, CMem, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// An affine form over GF(2): `c ⊕ v₁ ⊕ v₂ ⊕ …` with distinct variables.
///
/// # Examples
///
/// ```
/// use veriqec_cexpr::{Affine, VarId};
/// let e = Affine::var(VarId(0)) ^ Affine::var(VarId(1)) ^ Affine::one();
/// assert_eq!(e.to_string(), "1 + v0 + v1");
/// // x ⊕ x = 0
/// assert!((Affine::var(VarId(0)) ^ Affine::var(VarId(0))).is_zero());
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Affine {
    constant: bool,
    vars: BTreeSet<VarId>,
}

impl Affine {
    /// The zero form (phase `+1`).
    pub fn zero() -> Self {
        Affine::default()
    }

    /// The constant-one form (phase `-1`).
    pub fn one() -> Self {
        Affine {
            constant: true,
            vars: BTreeSet::new(),
        }
    }

    /// A single variable.
    pub fn var(v: VarId) -> Self {
        Affine {
            constant: false,
            vars: BTreeSet::from([v]),
        }
    }

    /// A constant.
    pub fn constant(c: bool) -> Self {
        Affine {
            constant: c,
            vars: BTreeSet::new(),
        }
    }

    /// The XOR of several variables.
    pub fn sum_vars<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        vars.into_iter()
            .fold(Affine::zero(), |acc, v| acc ^ Affine::var(v))
    }

    /// True when this is the constant 0.
    pub fn is_zero(&self) -> bool {
        !self.constant && self.vars.is_empty()
    }

    /// True when this is the constant 1.
    pub fn is_one(&self) -> bool {
        self.constant && self.vars.is_empty()
    }

    /// True when no variables occur.
    pub fn is_constant(&self) -> bool {
        self.vars.is_empty()
    }

    /// The constant part.
    pub fn constant_part(&self) -> bool {
        self.constant
    }

    /// The set of variables with odd coefficient.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars.iter().copied()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// True when `v` occurs in the form.
    pub fn contains(&self, v: VarId) -> bool {
        self.vars.contains(&v)
    }

    /// XORs in a single variable.
    pub fn xor_var(&mut self, v: VarId) {
        if !self.vars.remove(&v) {
            self.vars.insert(v);
        }
    }

    /// XORs in a constant.
    pub fn xor_const(&mut self, c: bool) {
        self.constant ^= c;
    }

    /// Conditionally XORs another form: `self ⊕= cond · other` where `cond`
    /// is a compile-time boolean. A convenience for phase-update rules.
    pub fn xor_if(&mut self, cond: bool, other: &Affine) {
        if cond {
            *self = self.clone() ^ other.clone();
        }
    }

    /// Substitutes variable `v` by another affine form.
    pub fn subst(&self, v: VarId, e: &Affine) -> Affine {
        if !self.vars.contains(&v) {
            return self.clone();
        }
        let mut out = self.clone();
        out.vars.remove(&v);
        out ^ e.clone()
    }

    /// Evaluates under a classical memory.
    pub fn eval(&self, m: &CMem) -> bool {
        self.vars
            .iter()
            .fold(self.constant, |acc, &v| acc ^ m.get(v).as_bool())
    }

    /// Converts to a general boolean expression (an XOR chain).
    pub fn to_bexp(&self) -> BExp {
        self.vars
            .iter()
            .fold(BExp::Const(self.constant), |acc, &v| {
                BExp::xor(acc, BExp::var(v))
            })
    }
}

impl std::ops::BitXor for Affine {
    type Output = Affine;

    fn bitxor(self, rhs: Affine) -> Affine {
        let mut out = Affine {
            constant: self.constant ^ rhs.constant,
            vars: self.vars,
        };
        for v in rhs.vars {
            out.xor_var(v);
        }
        out
    }
}

impl std::ops::BitXorAssign for Affine {
    fn bitxor_assign(&mut self, rhs: Affine) {
        self.constant ^= rhs.constant;
        for v in rhs.vars {
            self.xor_var(v);
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        if self.constant {
            write!(f, "1")?;
            first = false;
        }
        for v in &self.vars {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "v{}", v.0)?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<VarId> for Affine {
    fn from(v: VarId) -> Self {
        Affine::var(v)
    }
}

impl From<bool> for Affine {
    fn from(c: bool) -> Self {
        Affine::constant(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn xor_cancels_duplicates() {
        let a = Affine::var(VarId(1)) ^ Affine::var(VarId(2)) ^ Affine::var(VarId(1));
        assert_eq!(a, Affine::var(VarId(2)));
    }

    #[test]
    fn subst_expands() {
        // (v0 ⊕ v1)[v0 := v1 ⊕ 1] = 1
        let a = Affine::var(VarId(0)) ^ Affine::var(VarId(1));
        let r = a.subst(VarId(0), &(Affine::var(VarId(1)) ^ Affine::one()));
        assert!(r.is_one());
    }

    #[test]
    fn eval_and_to_bexp_agree() {
        let a = Affine::var(VarId(0)) ^ Affine::var(VarId(1)) ^ Affine::one();
        for bits in 0..4u8 {
            let mut m = CMem::new();
            m.set(VarId(0), Value::Bool(bits & 1 == 1));
            m.set(VarId(1), Value::Bool(bits & 2 == 2));
            assert_eq!(a.eval(&m), a.to_bexp().eval(&m));
        }
    }

    #[test]
    fn subst_absent_var_is_identity() {
        let a = Affine::var(VarId(3));
        assert_eq!(a.subst(VarId(9), &Affine::one()), a);
    }
}
