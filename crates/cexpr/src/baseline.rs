//! Reference model of [`crate::Affine`] backed by a `BTreeSet<VarId>`.
//!
//! This is the representation the pipeline carried before phases were
//! bit-packed: a sorted tree set of variable ids, rebalanced and reallocated
//! on every XOR. It is kept (out of the hot path) for two purposes:
//!
//! * **differential property tests** — the packed [`crate::Affine`] must be
//!   extensionally equal to this model under arbitrary XOR/subst/eval
//!   sequences (see the crate's proptests);
//! * **the `phase_kernels` benchmark** — the baseline side of the
//!   packed-vs-set speedup measurement on XOR-chain and branch-resolution
//!   kernels.
//!
//! Do not use it in production code; it exists to be slow in an honest way.

use crate::{CMem, VarId};
use std::collections::BTreeSet;

/// A set-backed affine form over GF(2): `c ⊕ v₁ ⊕ v₂ ⊕ …`.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SetAffine {
    constant: bool,
    vars: BTreeSet<VarId>,
}

impl SetAffine {
    /// The zero form.
    pub fn zero() -> Self {
        SetAffine::default()
    }

    /// A single variable.
    pub fn var(v: VarId) -> Self {
        SetAffine {
            constant: false,
            vars: BTreeSet::from([v]),
        }
    }

    /// A constant.
    pub fn constant(c: bool) -> Self {
        SetAffine {
            constant: c,
            vars: BTreeSet::new(),
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> bool {
        self.constant
    }

    /// True when this is the constant 0.
    pub fn is_zero(&self) -> bool {
        !self.constant && self.vars.is_empty()
    }

    /// True when `v` occurs in the form.
    pub fn contains(&self, v: VarId) -> bool {
        self.vars.contains(&v)
    }

    /// The variables with odd coefficient, ascending.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars.iter().copied()
    }

    /// XORs in a single variable.
    pub fn xor_var(&mut self, v: VarId) {
        if !self.vars.remove(&v) {
            self.vars.insert(v);
        }
    }

    /// XORs in a constant.
    pub fn xor_const(&mut self, c: bool) {
        self.constant ^= c;
    }

    /// Substitutes variable `v` by another form.
    pub fn subst(&self, v: VarId, e: &SetAffine) -> SetAffine {
        if !self.vars.contains(&v) {
            return self.clone();
        }
        let mut out = self.clone();
        out.vars.remove(&v);
        out ^ e.clone()
    }

    /// Evaluates under a classical memory.
    pub fn eval(&self, m: &CMem) -> bool {
        self.vars
            .iter()
            .fold(self.constant, |acc, &v| acc ^ m.get(v).as_bool())
    }

    /// Converts to the packed representation.
    pub fn to_packed(&self) -> crate::Affine {
        let mut a = crate::Affine::constant(self.constant);
        for &v in &self.vars {
            a.xor_var(v);
        }
        a
    }
}

impl std::ops::BitXor for SetAffine {
    type Output = SetAffine;

    fn bitxor(self, rhs: SetAffine) -> SetAffine {
        let mut out = SetAffine {
            constant: self.constant ^ rhs.constant,
            vars: self.vars,
        };
        for v in rhs.vars {
            out.xor_var(v);
        }
        out
    }
}

impl std::ops::BitXorAssign for SetAffine {
    fn bitxor_assign(&mut self, rhs: SetAffine) {
        self.constant ^= rhs.constant;
        for v in rhs.vars {
            self.xor_var(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_packed_preserves_extension() {
        let mut s = SetAffine::var(VarId(3));
        s.xor_var(VarId(200));
        s.xor_const(true);
        let p = s.to_packed();
        assert_eq!(p.constant_part(), s.constant_part());
        assert_eq!(p.vars().collect::<Vec<_>>(), s.vars().collect::<Vec<_>>());
    }
}
