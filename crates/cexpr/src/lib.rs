//! Classical expressions and memories for QEC program verification.
//!
//! This crate implements the classical side of the paper's hybrid
//! classical–quantum language (Appendix A.1): integer and boolean expression
//! ASTs ([`IExp`], [`BExp`]), classical memories ([`CMem`]), a variable
//! registry ([`VarTable`]) and the XOR-affine forms ([`Affine`]) used as the
//! symbolic phases of Pauli expressions throughout the verification pipeline.
//!
//! # Examples
//!
//! ```
//! use veriqec_cexpr::{Affine, BExp, CMem, IExp, Value, VarRole, VarTable};
//!
//! let mut vt = VarTable::new();
//! let e1 = vt.fresh("e_1", VarRole::Error);
//! let e2 = vt.fresh("e_2", VarRole::Error);
//!
//! // The error-weight constraint  e_1 + e_2 <= 1.
//! let pc = BExp::weight_le([e1, e2], 1);
//! let mut m = CMem::new();
//! m.set(e1, Value::Bool(true));
//! assert!(pc.eval(&m));
//!
//! // A symbolic phase (-1)^(e_1 ⊕ e_2).
//! let phi = Affine::var(e1) ^ Affine::var(e2);
//! assert!(phi.eval(&m));
//! ```

mod affine;
pub mod baseline;
mod expr;
mod mem;
mod vars;

pub use affine::Affine;
pub use expr::{BExp, IExp};
pub use mem::{CMem, Value};
pub use vars::{VarId, VarRole, VarTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_affine() -> impl Strategy<Value = Affine> {
        (
            any::<bool>(),
            proptest::collection::btree_set(0u32..8, 0..5),
        )
            .prop_map(|(c, vars)| {
                let mut a = Affine::constant(c);
                for v in vars {
                    a.xor_var(VarId(v));
                }
                a
            })
    }

    fn arb_mem() -> impl Strategy<Value = CMem> {
        proptest::collection::vec(any::<bool>(), 8).prop_map(|bits| {
            bits.into_iter()
                .enumerate()
                .map(|(i, b)| (VarId(i as u32), Value::Bool(b)))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn affine_xor_is_pointwise(a in arb_affine(), b in arb_affine(), m in arb_mem()) {
            prop_assert_eq!((a.clone() ^ b.clone()).eval(&m), a.eval(&m) ^ b.eval(&m));
        }

        #[test]
        fn affine_subst_is_semantic(a in arb_affine(), e in arb_affine(), m in arb_mem(), v in 0u32..8) {
            // a[v := e] evaluated at m equals a evaluated at m[v := e(m)].
            let v = VarId(v);
            let m2 = m.updated(v, Value::Bool(e.eval(&m)));
            prop_assert_eq!(a.subst(v, &e).eval(&m), a.eval(&m2));
        }

        #[test]
        fn to_bexp_roundtrip(a in arb_affine(), m in arb_mem()) {
            prop_assert_eq!(a.to_bexp().eval(&m), a.eval(&m));
        }
    }
}

#[cfg(test)]
mod packed_vs_set_model {
    //! Differential tests: the packed [`Affine`] must be extensionally equal
    //! to the [`baseline::SetAffine`] reference model under arbitrary
    //! operation sequences, including ids far beyond the inline 128-bit span.

    use super::*;
    use baseline::SetAffine;
    use proptest::prelude::*;

    /// One mutation step applied to both representations.
    #[derive(Clone, Debug)]
    enum Op {
        XorVar(u32),
        XorConst(bool),
        XorForm(Vec<u32>, bool),
        Subst(u32, Vec<u32>, bool),
    }

    fn arb_var() -> impl Strategy<Value = u32> {
        // Mix of inline-range and heap-range ids, crossing word boundaries.
        proptest::sample::select(vec![0u32, 1, 7, 63, 64, 65, 127, 128, 129, 200, 500])
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        (
            0u32..4,
            arb_var(),
            proptest::collection::vec(arb_var(), 0..4),
            any::<bool>(),
        )
            .prop_map(|(tag, v, vs, c)| match tag {
                0 => Op::XorVar(v),
                1 => Op::XorConst(c),
                2 => Op::XorForm(vs, c),
                _ => Op::Subst(v, vs, c),
            })
    }

    fn agree(p: &Affine, s: &SetAffine) -> Result<(), String> {
        if p.constant_part() != s.constant_part() {
            return Err(format!("constant mismatch: {p} vs {s:?}"));
        }
        let pv: Vec<VarId> = p.vars().collect();
        let sv: Vec<VarId> = s.vars().collect();
        if pv != sv {
            return Err(format!("var-set mismatch: {pv:?} vs {sv:?}"));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn packed_equals_set_model(ops in proptest::collection::vec(arb_op(), 0..24)) {
            let mut p = Affine::zero();
            let mut s = SetAffine::zero();
            for op in ops {
                match op {
                    Op::XorVar(v) => {
                        p.xor_var(VarId(v));
                        s.xor_var(VarId(v));
                    }
                    Op::XorConst(c) => {
                        p.xor_const(c);
                        s.xor_const(c);
                    }
                    Op::XorForm(vs, c) => {
                        let mut dp = Affine::constant(c);
                        let mut ds = SetAffine::constant(c);
                        for v in vs {
                            dp.xor_var(VarId(v));
                            ds.xor_var(VarId(v));
                        }
                        p ^= &dp;
                        s ^= ds;
                    }
                    Op::Subst(v, vs, c) => {
                        let mut ep = Affine::constant(c);
                        let mut es = SetAffine::constant(c);
                        for w in vs {
                            ep.xor_var(VarId(w));
                            es.xor_var(VarId(w));
                        }
                        p = p.subst(VarId(v), &ep);
                        s = s.subst(VarId(v), &es);
                    }
                }
                agree(&p, &s)?;
                prop_assert_eq!(&p, &s.to_packed());
            }
            // Evaluation agrees on a spot-check memory (odd-id vars true).
            let mut m = CMem::new();
            for v in p.vars() {
                m.set(v, Value::Bool(v.0 % 2 == 1));
            }
            prop_assert_eq!(p.eval(&m), s.eval(&m));
            prop_assert_eq!(p.num_vars(), s.vars().count());
            prop_assert_eq!(p.is_zero(), s.is_zero());
        }
    }
}
