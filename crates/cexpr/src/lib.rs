//! Classical expressions and memories for QEC program verification.
//!
//! This crate implements the classical side of the paper's hybrid
//! classical–quantum language (Appendix A.1): integer and boolean expression
//! ASTs ([`IExp`], [`BExp`]), classical memories ([`CMem`]), a variable
//! registry ([`VarTable`]) and the XOR-affine forms ([`Affine`]) used as the
//! symbolic phases of Pauli expressions throughout the verification pipeline.
//!
//! # Examples
//!
//! ```
//! use veriqec_cexpr::{Affine, BExp, CMem, IExp, Value, VarRole, VarTable};
//!
//! let mut vt = VarTable::new();
//! let e1 = vt.fresh("e_1", VarRole::Error);
//! let e2 = vt.fresh("e_2", VarRole::Error);
//!
//! // The error-weight constraint  e_1 + e_2 <= 1.
//! let pc = BExp::weight_le([e1, e2], 1);
//! let mut m = CMem::new();
//! m.set(e1, Value::Bool(true));
//! assert!(pc.eval(&m));
//!
//! // A symbolic phase (-1)^(e_1 ⊕ e_2).
//! let phi = Affine::var(e1) ^ Affine::var(e2);
//! assert!(phi.eval(&m));
//! ```

mod affine;
mod expr;
mod mem;
mod vars;

pub use affine::Affine;
pub use expr::{BExp, IExp};
pub use mem::{CMem, Value};
pub use vars::{VarId, VarRole, VarTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_affine() -> impl Strategy<Value = Affine> {
        (
            any::<bool>(),
            proptest::collection::btree_set(0u32..8, 0..5),
        )
            .prop_map(|(c, vars)| {
                let mut a = Affine::constant(c);
                for v in vars {
                    a.xor_var(VarId(v));
                }
                a
            })
    }

    fn arb_mem() -> impl Strategy<Value = CMem> {
        proptest::collection::vec(any::<bool>(), 8).prop_map(|bits| {
            bits.into_iter()
                .enumerate()
                .map(|(i, b)| (VarId(i as u32), Value::Bool(b)))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn affine_xor_is_pointwise(a in arb_affine(), b in arb_affine(), m in arb_mem()) {
            prop_assert_eq!((a.clone() ^ b.clone()).eval(&m), a.eval(&m) ^ b.eval(&m));
        }

        #[test]
        fn affine_subst_is_semantic(a in arb_affine(), e in arb_affine(), m in arb_mem(), v in 0u32..8) {
            // a[v := e] evaluated at m equals a evaluated at m[v := e(m)].
            let v = VarId(v);
            let m2 = m.updated(v, Value::Bool(e.eval(&m)));
            prop_assert_eq!(a.subst(v, &e).eval(&m), a.eval(&m2));
        }

        #[test]
        fn to_bexp_roundtrip(a in arb_affine(), m in arb_mem()) {
            prop_assert_eq!(a.to_bexp().eval(&m), a.eval(&m));
        }
    }
}
