//! Boolean and integer expression ASTs (Appendix A.1 of the paper).

use crate::{CMem, Value, VarId};
use std::fmt;
use std::sync::Arc as Rc;

/// Integer expressions `IExp` (Appendix A.1).
///
/// Grammar: constants, variables, negation, sums and products. Boolean
/// variables coerce to integers (`true` = 1, `false` = 0), matching the paper.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum IExp {
    /// Integer literal.
    Const(i64),
    /// Program variable (boolean variables coerce to 0/1).
    Var(VarId),
    /// Arithmetic negation.
    Neg(Rc<IExp>),
    /// Sum.
    Add(Rc<IExp>, Rc<IExp>),
    /// Product.
    Mul(Rc<IExp>, Rc<IExp>),
}

/// Boolean expressions `BExp` (Appendix A.1), extended with XOR, which the
/// tool layer uses to express GF(2) phase equations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BExp {
    /// Boolean literal.
    Const(bool),
    /// Program variable.
    Var(VarId),
    /// Integer equality.
    Eq(Rc<IExp>, Rc<IExp>),
    /// Integer less-or-equal.
    Le(Rc<IExp>, Rc<IExp>),
    /// Logical negation.
    Not(Rc<BExp>),
    /// Conjunction.
    And(Rc<BExp>, Rc<BExp>),
    /// Disjunction.
    Or(Rc<BExp>, Rc<BExp>),
    /// Classical implication.
    Implies(Rc<BExp>, Rc<BExp>),
    /// Exclusive or (GF(2) sum).
    Xor(Rc<BExp>, Rc<BExp>),
}

impl IExp {
    /// Integer constant.
    pub fn constant(c: i64) -> Self {
        IExp::Const(c)
    }

    /// Variable reference.
    pub fn var(v: VarId) -> Self {
        IExp::Var(v)
    }

    /// Sum of a sequence of expressions (empty sum is 0).
    pub fn sum<I: IntoIterator<Item = IExp>>(terms: I) -> Self {
        let mut it = terms.into_iter();
        let Some(first) = it.next() else {
            return IExp::Const(0);
        };
        it.fold(first, |acc, t| IExp::Add(Rc::new(acc), Rc::new(t)))
    }

    /// Sum of variables, e.g. `Σ e_i`.
    pub fn sum_vars<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        IExp::sum(vars.into_iter().map(IExp::Var))
    }

    /// Evaluates under a classical memory.
    ///
    /// # Panics
    ///
    /// Panics if a variable is unbound in `m`.
    pub fn eval(&self, m: &CMem) -> i64 {
        match self {
            IExp::Const(c) => *c,
            IExp::Var(v) => m.get(*v).as_int(),
            IExp::Neg(e) => -e.eval(m),
            IExp::Add(a, b) => a.eval(m) + b.eval(m),
            IExp::Mul(a, b) => a.eval(m) * b.eval(m),
        }
    }

    /// Substitutes variable `v` by expression `e`.
    pub fn subst(&self, v: VarId, e: &IExp) -> IExp {
        match self {
            IExp::Const(_) => self.clone(),
            IExp::Var(w) => {
                if *w == v {
                    e.clone()
                } else {
                    self.clone()
                }
            }
            IExp::Neg(a) => IExp::Neg(Rc::new(a.subst(v, e))),
            IExp::Add(a, b) => IExp::Add(Rc::new(a.subst(v, e)), Rc::new(b.subst(v, e))),
            IExp::Mul(a, b) => IExp::Mul(Rc::new(a.subst(v, e)), Rc::new(b.subst(v, e))),
        }
    }

    /// Collects free variables into `out`.
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        match self {
            IExp::Const(_) => {}
            IExp::Var(v) => out.push(*v),
            IExp::Neg(a) => a.free_vars(out),
            IExp::Add(a, b) | IExp::Mul(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }

    /// Normalizes to a *linear form* `Σ coeff_i · v_i + c` if the expression
    /// is linear; returns `None` when a product of two non-constant
    /// subexpressions occurs.
    pub fn linearize(&self) -> Option<(Vec<(VarId, i64)>, i64)> {
        match self {
            IExp::Const(c) => Some((vec![], *c)),
            IExp::Var(v) => Some((vec![(*v, 1)], 0)),
            IExp::Neg(a) => {
                let (mut terms, c) = a.linearize()?;
                for t in &mut terms {
                    t.1 = -t.1;
                }
                Some((terms, -c))
            }
            IExp::Add(a, b) => {
                let (mut ta, ca) = a.linearize()?;
                let (tb, cb) = b.linearize()?;
                ta.extend(tb);
                Some((merge_linear(ta), ca + cb))
            }
            IExp::Mul(a, b) => {
                let la = a.linearize()?;
                let lb = b.linearize()?;
                match (la.0.is_empty(), lb.0.is_empty()) {
                    (true, _) => {
                        let k = la.1;
                        let (mut terms, c) = lb;
                        for t in &mut terms {
                            t.1 *= k;
                        }
                        Some((merge_linear(terms), c * k))
                    }
                    (_, true) => {
                        let k = lb.1;
                        let (mut terms, c) = la;
                        for t in &mut terms {
                            t.1 *= k;
                        }
                        Some((merge_linear(terms), c * k))
                    }
                    _ => None,
                }
            }
        }
    }
}

fn merge_linear(mut terms: Vec<(VarId, i64)>) -> Vec<(VarId, i64)> {
    terms.sort_by_key(|t| t.0);
    let mut out: Vec<(VarId, i64)> = Vec::with_capacity(terms.len());
    for (v, c) in terms {
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 += c,
            _ => out.push((v, c)),
        }
    }
    out.retain(|t| t.1 != 0);
    out
}

impl BExp {
    /// Boolean literal `true`.
    pub fn tt() -> Self {
        BExp::Const(true)
    }

    /// Boolean literal `false`.
    pub fn ff() -> Self {
        BExp::Const(false)
    }

    /// Variable reference.
    pub fn var(v: VarId) -> Self {
        BExp::Var(v)
    }

    /// `a == b` on integer expressions.
    pub fn eq(a: IExp, b: IExp) -> Self {
        BExp::Eq(Rc::new(a), Rc::new(b))
    }

    /// `a <= b` on integer expressions.
    pub fn le(a: IExp, b: IExp) -> Self {
        BExp::Le(Rc::new(a), Rc::new(b))
    }

    /// Logical negation (with constant folding).
    ///
    /// An associated constructor (`BExp::not(a)`), not a method — `Not` is
    /// deliberately not implemented because all `BExp` combinators take
    /// operands by value.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: BExp) -> Self {
        match a {
            BExp::Const(c) => BExp::Const(!c),
            other => BExp::Not(Rc::new(other)),
        }
    }

    /// Conjunction (with unit folding).
    pub fn and(a: BExp, b: BExp) -> Self {
        match (a, b) {
            (BExp::Const(true), x) | (x, BExp::Const(true)) => x,
            (BExp::Const(false), _) | (_, BExp::Const(false)) => BExp::ff(),
            (a, b) => BExp::And(Rc::new(a), Rc::new(b)),
        }
    }

    /// Disjunction (with unit folding).
    pub fn or(a: BExp, b: BExp) -> Self {
        match (a, b) {
            (BExp::Const(false), x) | (x, BExp::Const(false)) => x,
            (BExp::Const(true), _) | (_, BExp::Const(true)) => BExp::tt(),
            (a, b) => BExp::Or(Rc::new(a), Rc::new(b)),
        }
    }

    /// Classical implication.
    pub fn implies(a: BExp, b: BExp) -> Self {
        match (a, b) {
            (BExp::Const(true), x) => x,
            (BExp::Const(false), _) => BExp::tt(),
            (_, BExp::Const(true)) => BExp::tt(),
            (a, BExp::Const(false)) => BExp::not(a),
            (a, b) => BExp::Implies(Rc::new(a), Rc::new(b)),
        }
    }

    /// Exclusive or (with unit folding).
    pub fn xor(a: BExp, b: BExp) -> Self {
        match (a, b) {
            (BExp::Const(false), x) | (x, BExp::Const(false)) => x,
            (BExp::Const(true), x) | (x, BExp::Const(true)) => BExp::not(x),
            (a, b) => BExp::Xor(Rc::new(a), Rc::new(b)),
        }
    }

    /// Conjunction of a sequence (empty conjunction is `true`).
    pub fn conj<I: IntoIterator<Item = BExp>>(terms: I) -> Self {
        terms.into_iter().fold(BExp::tt(), BExp::and)
    }

    /// Disjunction of a sequence (empty disjunction is `false`).
    pub fn disj<I: IntoIterator<Item = BExp>>(terms: I) -> Self {
        terms.into_iter().fold(BExp::ff(), BExp::or)
    }

    /// `Σ vars <= k` — the standard error-weight constraint.
    pub fn weight_le<I: IntoIterator<Item = VarId>>(vars: I, k: i64) -> Self {
        BExp::le(IExp::sum_vars(vars), IExp::constant(k))
    }

    /// Evaluates under a classical memory.
    ///
    /// # Panics
    ///
    /// Panics if a variable is unbound in `m`.
    pub fn eval(&self, m: &CMem) -> bool {
        match self {
            BExp::Const(c) => *c,
            BExp::Var(v) => m.get(*v).as_bool(),
            BExp::Eq(a, b) => a.eval(m) == b.eval(m),
            BExp::Le(a, b) => a.eval(m) <= b.eval(m),
            BExp::Not(a) => !a.eval(m),
            BExp::And(a, b) => a.eval(m) && b.eval(m),
            BExp::Or(a, b) => a.eval(m) || b.eval(m),
            BExp::Implies(a, b) => !a.eval(m) || b.eval(m),
            BExp::Xor(a, b) => a.eval(m) ^ b.eval(m),
        }
    }

    /// Substitutes boolean variable `v` by boolean expression `e`.
    ///
    /// Note: if `v` also occurs inside integer subexpressions (via coercion),
    /// it is substituted there only when `e` is itself a variable or constant;
    /// otherwise the occurrence is left untouched and a panic is raised to
    /// avoid a silently wrong result.
    ///
    /// # Panics
    ///
    /// Panics when `v` occurs in an integer context and `e` is not atomic.
    pub fn subst(&self, v: VarId, e: &BExp) -> BExp {
        let ie: Option<IExp> = match e {
            BExp::Var(w) => Some(IExp::Var(*w)),
            BExp::Const(c) => Some(IExp::Const(i64::from(*c))),
            _ => None,
        };
        let subst_i = |a: &IExp| -> IExp {
            let mut vars = Vec::new();
            a.free_vars(&mut vars);
            if vars.contains(&v) {
                let ie = ie
                    .clone()
                    .expect("cannot substitute non-atomic boolean into integer context");
                a.subst(v, &ie)
            } else {
                a.clone()
            }
        };
        match self {
            BExp::Const(_) => self.clone(),
            BExp::Var(w) => {
                if *w == v {
                    e.clone()
                } else {
                    self.clone()
                }
            }
            BExp::Eq(a, b) => BExp::Eq(Rc::new(subst_i(a)), Rc::new(subst_i(b))),
            BExp::Le(a, b) => BExp::Le(Rc::new(subst_i(a)), Rc::new(subst_i(b))),
            BExp::Not(a) => BExp::not(a.subst(v, e)),
            BExp::And(a, b) => BExp::and(a.subst(v, e), b.subst(v, e)),
            BExp::Or(a, b) => BExp::or(a.subst(v, e), b.subst(v, e)),
            BExp::Implies(a, b) => BExp::implies(a.subst(v, e), b.subst(v, e)),
            BExp::Xor(a, b) => BExp::xor(a.subst(v, e), b.subst(v, e)),
        }
    }

    /// Collects free variables into `out` (may contain duplicates).
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        match self {
            BExp::Const(_) => {}
            BExp::Var(v) => out.push(*v),
            BExp::Eq(a, b) | BExp::Le(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            BExp::Not(a) => a.free_vars(out),
            BExp::And(a, b) | BExp::Or(a, b) | BExp::Implies(a, b) | BExp::Xor(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

impl From<Value> for BExp {
    fn from(v: Value) -> Self {
        BExp::Const(v.as_bool())
    }
}

struct NameDisplay<'a, T>(&'a T, Option<&'a crate::VarTable>);

impl fmt::Display for IExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", NameDisplay(self, None))
    }
}

impl fmt::Display for BExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", NameDisplay(self, None))
    }
}

impl fmt::Debug for IExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Debug for BExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for NameDisplay<'_, IExp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: VarId| -> String {
            match self.1 {
                Some(vt) => vt.name(v).to_string(),
                None => format!("v{}", v.0),
            }
        };
        match self.0 {
            IExp::Const(c) => write!(f, "{c}"),
            IExp::Var(v) => write!(f, "{}", name(*v)),
            IExp::Neg(a) => write!(f, "-({})", NameDisplay(a.as_ref(), self.1)),
            IExp::Add(a, b) => write!(
                f,
                "({} + {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            IExp::Mul(a, b) => write!(
                f,
                "({} * {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
        }
    }
}

impl fmt::Display for NameDisplay<'_, BExp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: VarId| -> String {
            match self.1 {
                Some(vt) => vt.name(v).to_string(),
                None => format!("v{}", v.0),
            }
        };
        match self.0 {
            BExp::Const(c) => write!(f, "{c}"),
            BExp::Var(v) => write!(f, "{}", name(*v)),
            BExp::Eq(a, b) => write!(
                f,
                "{} == {}",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            BExp::Le(a, b) => write!(
                f,
                "{} <= {}",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            BExp::Not(a) => write!(f, "!({})", NameDisplay(a.as_ref(), self.1)),
            BExp::And(a, b) => write!(
                f,
                "({} && {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            BExp::Or(a, b) => write!(
                f,
                "({} || {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            BExp::Implies(a, b) => write!(
                f,
                "({} -> {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
            BExp::Xor(a, b) => write!(
                f,
                "({} ^ {})",
                NameDisplay(a.as_ref(), self.1),
                NameDisplay(b.as_ref(), self.1)
            ),
        }
    }
}

impl BExp {
    /// Pretty-prints with variable names resolved through `vt`.
    pub fn display_with(&self, vt: &crate::VarTable) -> String {
        format!("{}", NameDisplay(self, Some(vt)))
    }
}

impl IExp {
    /// Pretty-prints with variable names resolved through `vt`.
    pub fn display_with(&self, vt: &crate::VarTable) -> String {
        format!("{}", NameDisplay(self, Some(vt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarRole, VarTable};

    fn setup() -> (VarTable, VarId, VarId, VarId) {
        let mut vt = VarTable::new();
        let a = vt.fresh("a", VarRole::Aux);
        let b = vt.fresh("b", VarRole::Aux);
        let c = vt.fresh("c", VarRole::Aux);
        (vt, a, b, c)
    }

    #[test]
    fn eval_arith_and_bool() {
        let (_, a, b, _) = setup();
        let mut m = CMem::new();
        m.set(a, Value::Int(2));
        m.set(b, Value::Bool(true));
        let e = IExp::Add(
            Rc::new(IExp::Var(a)),
            Rc::new(IExp::Mul(Rc::new(IExp::Var(b)), Rc::new(IExp::Const(3)))),
        );
        assert_eq!(e.eval(&m), 5);
        let be = BExp::le(e, IExp::constant(5));
        assert!(be.eval(&m));
    }

    #[test]
    fn subst_bool_var() {
        let (_, a, b, _) = setup();
        let e = BExp::and(BExp::var(a), BExp::var(b));
        let e2 = e.subst(a, &BExp::Const(true));
        assert_eq!(e2, BExp::var(b));
    }

    #[test]
    fn subst_in_integer_context_with_atomic_rhs() {
        let (_, a, b, _) = setup();
        let e = BExp::weight_le([a, b], 1);
        let e2 = e.subst(a, &BExp::Const(false));
        let mut m = CMem::new();
        m.set(b, Value::Bool(true));
        assert!(e2.eval(&m));
    }

    #[test]
    fn linearize_sums() {
        let (_, a, b, _) = setup();
        let e = IExp::sum([IExp::var(a), IExp::var(b), IExp::var(a), IExp::constant(4)]);
        let (terms, c) = e.linearize().unwrap();
        assert_eq!(c, 4);
        assert_eq!(terms, vec![(a, 2), (b, 1)]);
    }

    #[test]
    fn linearize_rejects_products() {
        let (_, a, b, _) = setup();
        let e = IExp::Mul(Rc::new(IExp::var(a)), Rc::new(IExp::var(b)));
        assert!(e.linearize().is_none());
    }

    #[test]
    fn constant_folding_in_builders() {
        let (_, a, _, _) = setup();
        assert_eq!(BExp::and(BExp::tt(), BExp::var(a)), BExp::var(a));
        assert_eq!(BExp::or(BExp::tt(), BExp::var(a)), BExp::tt());
        assert_eq!(BExp::xor(BExp::ff(), BExp::var(a)), BExp::var(a));
        assert_eq!(BExp::implies(BExp::ff(), BExp::var(a)), BExp::tt());
    }

    #[test]
    fn display_with_names() {
        let (vt, a, b, _) = setup();
        let e = BExp::xor(BExp::var(a), BExp::var(b));
        assert_eq!(e.display_with(&vt), "(a ^ b)");
    }
}
