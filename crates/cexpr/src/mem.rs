//! Classical memory (`CMem` in the paper): a map from variables to values.

use crate::VarId;
use std::collections::BTreeMap;
use std::fmt;

/// A classical value: integer or boolean, with the paper's coercion
/// (`true` = 1, `false` = 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Coerces to an integer.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Bool(b) => i64::from(b),
        }
    }

    /// Coerces to a boolean (integers: nonzero is `true`).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Bool(b) => b,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// A state of the classical memory: a finite map `VarId -> Value`.
///
/// Unbound variables default to `false`/`0`, which keeps evaluation total and
/// mirrors how the SMT layer treats unconstrained variables in models.
///
/// # Examples
///
/// ```
/// use veriqec_cexpr::{CMem, Value, VarId};
/// let mut m = CMem::new();
/// m.set(VarId(0), Value::Bool(true));
/// assert!(m.get(VarId(0)).as_bool());
/// assert_eq!(m.get(VarId(7)).as_int(), 0); // default
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct CMem {
    vals: BTreeMap<VarId, Value>,
}

impl CMem {
    /// Creates an empty memory (all variables default to 0/false).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a variable (default `Bool(false)` when unbound).
    pub fn get(&self, v: VarId) -> Value {
        self.vals.get(&v).copied().unwrap_or(Value::Bool(false))
    }

    /// Writes a variable.
    pub fn set(&mut self, v: VarId, val: Value) {
        self.vals.insert(v, val);
    }

    /// Returns an updated copy — the `m[v := val]` notation of the paper.
    pub fn updated(&self, v: VarId, val: Value) -> CMem {
        let mut m = self.clone();
        m.set(v, val);
        m
    }

    /// Iterates over explicit bindings.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.vals.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no variable is explicitly bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

impl fmt::Debug for CMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CMem{{")?;
        for (i, (k, v)) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Value::Int(n) => write!(f, "v{}={n}", k.0)?,
                Value::Bool(b) => write!(f, "v{}={}", k.0, if *b { 1 } else { 0 })?,
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<(VarId, Value)> for CMem {
    fn from_iter<I: IntoIterator<Item = (VarId, Value)>>(iter: I) -> Self {
        CMem {
            vals: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let m = CMem::new();
        assert_eq!(m.get(VarId(3)), Value::Bool(false));
    }

    #[test]
    fn updated_is_persistent() {
        let m = CMem::new();
        let m2 = m.updated(VarId(1), Value::Int(5));
        assert_eq!(m.get(VarId(1)).as_int(), 0);
        assert_eq!(m2.get(VarId(1)).as_int(), 5);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_int(), 1);
        assert!(Value::Int(2).as_bool());
        assert!(!Value::Int(0).as_bool());
    }
}
