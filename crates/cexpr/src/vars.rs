//! Variable identities and the variable registry.

use std::collections::HashMap;
use std::fmt;

/// Identity of a classical program variable.
///
/// `VarId`s are allocated by a [`VarTable`]; they are cheap copyable handles
/// used throughout expressions, symbolic phases and SMT encodings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The role a classical variable plays in a QEC verification problem.
///
/// Roles drive quantifier/constraint placement in the final verification
/// condition (e.g. error indicators are constrained by the error-weight bound,
/// syndromes are measurement outcomes, corrections are decoder outputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarRole {
    /// Error-injection indicator (`e_i` in the paper).
    Error,
    /// Propagated-error indicator from a previous cycle (`ep_i`).
    Propagation,
    /// Syndrome: outcome of a stabilizer measurement (`s_i`).
    Syndrome,
    /// Measurement-flip indicator of a faulty measurement
    /// (`m_i` in `x := meas[P] ⊕ m_i`): constrained by the measurement-error
    /// weight budget, separately from data errors.
    MeasError,
    /// Correction indicator produced by a decoder (`x_i` / `z_i`).
    Correction,
    /// Free parameter of the specification (e.g. the logical phase `b`).
    Param,
    /// Anything else (loop counters, scratch variables).
    Aux,
}

/// A registry mapping variable names to [`VarId`]s, with per-variable roles.
///
/// # Examples
///
/// ```
/// use veriqec_cexpr::{VarRole, VarTable};
/// let mut vt = VarTable::new();
/// let e1 = vt.fresh("e_1", VarRole::Error);
/// assert_eq!(vt.lookup("e_1"), Some(e1));
/// assert_eq!(vt.name(e1), "e_1");
/// assert_eq!(vt.role(e1), VarRole::Error);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    roles: Vec<VarRole>,
    by_name: HashMap<String, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new variable with the given name, or returns the existing
    /// id if the name is already registered (the role is left unchanged in
    /// that case).
    pub fn fresh(&mut self, name: &str, role: VarRole) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.roles.push(role);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Allocates a numbered family member, e.g. `fresh_indexed("e", 3)` ->
    /// variable `e_3`.
    pub fn fresh_indexed(&mut self, family: &str, index: usize, role: VarRole) -> VarId {
        self.fresh(&format!("{family}_{index}"), role)
    }

    /// Looks up a variable by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The role of a variable.
    pub fn role(&self, id: VarId) -> VarRole {
        self.roles[id.0 as usize]
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All variables with a given role.
    pub fn with_role(&self, role: VarRole) -> Vec<VarId> {
        (0..self.names.len() as u32)
            .map(VarId)
            .filter(|&v| self.role(v) == role)
            .collect()
    }

    /// Iterates over all variable ids.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32).map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_idempotent_per_name() {
        let mut vt = VarTable::new();
        let a = vt.fresh("x", VarRole::Aux);
        let b = vt.fresh("x", VarRole::Aux);
        assert_eq!(a, b);
        assert_eq!(vt.len(), 1);
    }

    #[test]
    fn roles_are_filterable() {
        let mut vt = VarTable::new();
        let e1 = vt.fresh_indexed("e", 1, VarRole::Error);
        let e2 = vt.fresh_indexed("e", 2, VarRole::Error);
        let s1 = vt.fresh_indexed("s", 1, VarRole::Syndrome);
        assert_eq!(vt.with_role(VarRole::Error), vec![e1, e2]);
        assert_eq!(vt.with_role(VarRole::Syndrome), vec![s1]);
        assert_eq!(vt.name(e2), "e_2");
    }
}
