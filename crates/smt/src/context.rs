//! The encoding context: classical expressions → CNF → CDCL solver.

use std::collections::HashMap;
use std::fmt;

use veriqec_cexpr::{Affine, BExp, CMem, IExp, Value, VarId};
use veriqec_sat::{Lit, SatResult, Solver, SolverConfig};

/// Error raised when an expression falls outside the encodable fragment.
///
/// The fragment is: boolean structure over boolean variables, XOR/affine
/// forms, and (in)equalities between *linear* integer expressions whose
/// variables are boolean indicators with small non-negative coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// Description of the offending construct.
    pub message: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression outside the SMT fragment: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

/// Result of a [`SmtContext::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// Satisfiable; a model is available through [`SmtContext::model`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Resource budget exhausted.
    Unknown,
}

impl CheckResult {
    /// True for [`CheckResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == CheckResult::Sat
    }

    /// True for [`CheckResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == CheckResult::Unsat
    }
}

/// An incremental SMT-style solving context.
///
/// Wraps a [`veriqec_sat::Solver`], maps [`VarId`]s to SAT variables lazily,
/// and offers assertion of boolean expressions, affine GF(2) equations and
/// cardinality constraints. See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct SmtContext {
    solver: Solver,
    varmap: HashMap<VarId, veriqec_sat::Var>,
    tracked: Vec<VarId>,
    true_lit: Option<Lit>,
}

impl Default for SmtContext {
    fn default() -> Self {
        Self::new()
    }
}

impl SmtContext {
    /// Creates a context with the default solver configuration.
    pub fn new() -> Self {
        SmtContext::with_config(SolverConfig::default())
    }

    /// Creates a context with an explicit solver configuration (used by the
    /// ablation benchmarks).
    pub fn with_config(config: SolverConfig) -> Self {
        SmtContext {
            solver: Solver::with_config(config),
            varmap: HashMap::new(),
            tracked: Vec::new(),
            true_lit: None,
        }
    }

    /// Installs a cooperative stop flag on the underlying solver: when the
    /// flag is raised, an in-flight [`SmtContext::check`] aborts at the next
    /// conflict/decision boundary with [`CheckResult::Unknown`]. Used by the
    /// parallel driver to cancel workers stuck inside a long subtask.
    pub fn set_stop_flag(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.solver.set_stop_flag(flag);
    }

    /// The SAT literal representing the constant `true`.
    pub fn lit_true(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.solver.new_var().positive();
        self.solver.add_clause([l]);
        self.true_lit = Some(l);
        l
    }

    /// The SAT literal of a (boolean) classical variable, allocated on first use.
    pub fn lit_of(&mut self, v: VarId) -> Lit {
        if let Some(&sv) = self.varmap.get(&v) {
            return sv.positive();
        }
        let sv = self.solver.new_var();
        self.varmap.insert(v, sv);
        self.tracked.push(v);
        sv.positive()
    }

    /// A fresh auxiliary literal (not tied to any classical variable).
    pub fn fresh_lit(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// Adds a raw clause of SAT literals.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    // ---------------------------------------------------------------- Tseitin

    fn tseitin_not(&mut self, a: Lit) -> Lit {
        !a
    }

    fn tseitin_and(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.fresh_lit();
        self.solver.add_clause([!x, a]);
        self.solver.add_clause([!x, b]);
        self.solver.add_clause([x, !a, !b]);
        x
    }

    fn tseitin_or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.tseitin_and(!a, !b)
    }

    fn tseitin_xor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.fresh_lit();
        self.solver.add_clause([!x, a, b]);
        self.solver.add_clause([!x, !a, !b]);
        self.solver.add_clause([x, !a, b]);
        self.solver.add_clause([x, a, !b]);
        x
    }

    /// Reifies a conjunction of literals into a single literal.
    pub fn reify_conj(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.lit_true(),
            [l] => *l,
            _ => {
                let x = self.fresh_lit();
                for &l in lits {
                    self.solver.add_clause([!x, l]);
                }
                let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                clause.push(x);
                self.solver.add_clause(clause);
                x
            }
        }
    }

    /// Reifies a disjunction of literals into a single literal.
    pub fn reify_disj(&mut self, lits: &[Lit]) -> Lit {
        let neg: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.reify_conj(&neg)
    }

    // ----------------------------------------------------------- affine / XOR

    /// Reifies an XOR-affine form into a literal.
    ///
    /// `Affine::vars` scans the packed word representation directly, so the
    /// XOR chain is emitted straight off set-bit positions — no intermediate
    /// set walk or collection.
    pub fn reify_affine(&mut self, a: &Affine) -> Lit {
        let mut acc: Option<Lit> = None;
        for v in a.vars() {
            let l = self.lit_of(v);
            acc = Some(match acc {
                None => l,
                Some(p) => self.tseitin_xor(p, l),
            });
        }
        let base = match acc {
            Some(l) => l,
            None => !self.lit_true(), // constant-0 form so far
        };
        if a.constant_part() {
            !base
        } else {
            base
        }
    }

    /// Asserts `affine = value`.
    pub fn assert_affine_eq(&mut self, a: &Affine, value: bool) {
        let l = self.reify_affine(a);
        self.solver.add_clause([if value { l } else { !l }]);
    }

    // ----------------------------------------------------------- cardinality

    /// Builds a reusable cardinality constraint over `lits`: the totalizer
    /// is encoded once and the returned handle turns weight bounds into
    /// *assumption literals*, so one incremental context can be queried
    /// under many different bounds without re-encoding (the engine layer's
    /// weight sweeps are built on this).
    pub fn cardinality(&mut self, lits: &[Lit]) -> CardinalityHandle {
        let outputs = self.totalizer(lits);
        let lit_false = !self.lit_true();
        CardinalityHandle { outputs, lit_false }
    }

    /// Builds a totalizer over `lits`: output `o[i]` is true iff at least
    /// `i+1` of the inputs are true. Fully reified (both directions).
    pub fn totalizer(&mut self, lits: &[Lit]) -> Vec<Lit> {
        match lits.len() {
            0 => Vec::new(),
            1 => vec![lits[0]],
            n => {
                let (l, r) = lits.split_at(n / 2);
                let a = self.totalizer(l);
                let b = self.totalizer(r);
                self.merge_totalizer(&a, &b)
            }
        }
    }

    fn merge_totalizer(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let p = a.len();
        let q = b.len();
        let out: Vec<Lit> = (0..p + q).map(|_| self.fresh_lit()).collect();
        // Forward: a_i ∧ b_j  →  out_{i+j}   (1-indexed counts; a_0/b_0 = true)
        for i in 0..=p {
            for j in 0..=q {
                if i + j == 0 {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!a[i - 1]);
                }
                if j > 0 {
                    clause.push(!b[j - 1]);
                }
                clause.push(out[i + j - 1]);
                self.solver.add_clause(clause);
            }
        }
        // Backward: out_{i+j+1} → a_{i+1} ∨ b_{j+1}   (a_{p+1}/b_{q+1} = false)
        for i in 0..=p {
            for j in 0..=q {
                if i + j + 1 > p + q {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                clause.push(!out[i + j]);
                if i < p {
                    clause.push(a[i]);
                }
                if j < q {
                    clause.push(b[j]);
                }
                self.solver.add_clause(clause);
            }
        }
        out
    }

    /// Asserts `Σ lits <= k`.
    pub fn assert_at_most(&mut self, lits: &[Lit], k: i64) {
        if k >= lits.len() as i64 {
            return; // trivially true: no totalizer needed
        }
        if k < 0 {
            // Infeasible: one false unit clause, no totalizer.
            let f = !self.lit_true();
            self.solver.add_clause([f]);
            return;
        }
        let h = self.cardinality(lits);
        if let Some(l) = h.at_most(k) {
            self.solver.add_clause([l]);
        }
    }

    /// Asserts `Σ lits >= k`.
    pub fn assert_at_least(&mut self, lits: &[Lit], k: i64) {
        if k <= 0 {
            return; // trivially true: no totalizer needed
        }
        if k > lits.len() as i64 {
            let f = !self.lit_true();
            self.solver.add_clause([f]);
            return;
        }
        let h = self.cardinality(lits);
        if let Some(l) = h.at_least(k) {
            self.solver.add_clause([l]);
        }
    }

    /// Asserts `Σ lits == k` (one shared totalizer for both directions).
    pub fn assert_exactly(&mut self, lits: &[Lit], k: i64) {
        if k < 0 || k > lits.len() as i64 {
            let f = !self.lit_true();
            self.solver.add_clause([f]);
            return;
        }
        let h = self.cardinality(lits);
        for l in [h.at_most(k), h.at_least(k)].into_iter().flatten() {
            self.solver.add_clause([l]);
        }
    }

    /// Asserts `Σ a + offset <= Σ b` (the minimum-weight decoder condition
    /// `Σ corrections <= Σ errors` uses `offset == 0`).
    pub fn assert_sum_le_sum(&mut self, a: &[Lit], b: &[Lit], offset: i64) {
        let l = self.reify_sum_le_sum(a, b, offset);
        self.solver.add_clause([l]);
    }

    /// Reified form of `Σ a + offset <= Σ b`.
    pub fn reify_sum_le_sum(&mut self, a: &[Lit], b: &[Lit], offset: i64) -> Lit {
        let ta = self.totalizer(a);
        let tb = self.totalizer(b);
        // Condition: for every count c >= 1:  (Σa >= c)  →  (Σb >= c + offset).
        // With totalizers: ta[c-1] → tb[c+offset-1]; out-of-range tb index:
        //  - c+offset <= 0: implication trivially true;
        //  - c+offset > |b|: implication is ¬ta[c-1].
        let mut conj: Vec<Lit> = Vec::new();
        // Also when offset > 0 and a is empty: need Σb >= offset.
        if offset > 0 {
            if offset as usize > tb.len() {
                let f = !self.lit_true();
                conj.push(f);
            } else {
                conj.push(tb[offset as usize - 1]);
            }
        }
        for c in 1..=ta.len() as i64 {
            let rhs_idx = c + offset;
            if rhs_idx <= 0 {
                continue;
            }
            if rhs_idx as usize > tb.len() {
                conj.push(!ta[c as usize - 1]);
            } else {
                let implication = self.tseitin_or(!ta[c as usize - 1], tb[rhs_idx as usize - 1]);
                conj.push(implication);
            }
        }
        self.reify_conj(&conj)
    }

    // -------------------------------------------------------- BExp encoding

    /// Reifies an arbitrary boolean expression into a literal.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] for integer subexpressions outside the linear
    /// indicator fragment (products of variables, negative coefficients on
    /// both sides after normalization are handled; genuinely nonlinear terms
    /// are not).
    pub fn reify(&mut self, e: &BExp) -> Result<Lit, EncodeError> {
        match e {
            BExp::Const(true) => Ok(self.lit_true()),
            BExp::Const(false) => Ok(!self.lit_true()),
            BExp::Var(v) => Ok(self.lit_of(*v)),
            BExp::Not(a) => {
                let l = self.reify(a)?;
                Ok(self.tseitin_not(l))
            }
            BExp::And(a, b) => {
                let la = self.reify(a)?;
                let lb = self.reify(b)?;
                Ok(self.tseitin_and(la, lb))
            }
            BExp::Or(a, b) => {
                let la = self.reify(a)?;
                let lb = self.reify(b)?;
                Ok(self.tseitin_or(la, lb))
            }
            BExp::Implies(a, b) => {
                let la = self.reify(a)?;
                let lb = self.reify(b)?;
                Ok(self.tseitin_or(!la, lb))
            }
            BExp::Xor(a, b) => {
                let la = self.reify(a)?;
                let lb = self.reify(b)?;
                Ok(self.tseitin_xor(la, lb))
            }
            BExp::Le(a, b) => self.reify_linear_cmp(a, b, false),
            BExp::Eq(a, b) => {
                let le = self.reify_linear_cmp(a, b, false)?;
                let ge = self.reify_linear_cmp(b, a, false)?;
                Ok(self.tseitin_and(le, ge))
            }
        }
    }

    /// Reifies `a <= b` for linear integer expressions over boolean indicators.
    fn reify_linear_cmp(&mut self, a: &IExp, b: &IExp, _strict: bool) -> Result<Lit, EncodeError> {
        let (ta, ca) = a.linearize().ok_or_else(|| EncodeError {
            message: format!("nonlinear integer expression: {a}"),
        })?;
        let (tb, cb) = b.linearize().ok_or_else(|| EncodeError {
            message: format!("nonlinear integer expression: {b}"),
        })?;
        // Normalize: move negative-coefficient terms to the other side.
        let mut lhs: Vec<Lit> = Vec::new();
        let mut rhs: Vec<Lit> = Vec::new();
        let expand = |terms: &[(VarId, i64)],
                      pos_side: &mut Vec<Lit>,
                      neg_side: &mut Vec<Lit>,
                      me: &mut Self|
         -> Result<(), EncodeError> {
            for &(v, c) in terms {
                let lit = me.lit_of(v);
                let reps = c.unsigned_abs();
                if reps > 64 {
                    return Err(EncodeError {
                        message: format!("coefficient {c} too large for unary encoding"),
                    });
                }
                for _ in 0..reps {
                    if c > 0 {
                        pos_side.push(lit);
                    } else {
                        neg_side.push(lit);
                    }
                }
            }
            Ok(())
        };
        expand(&ta, &mut lhs, &mut rhs, self)?;
        expand(&tb, &mut rhs, &mut lhs, self)?;
        // lhs + ca <= rhs + cb   ⇔   Σ lhs + (ca - cb) <= Σ rhs
        Ok(self.reify_sum_le_sum(&lhs, &rhs, ca - cb))
    }

    /// Asserts a boolean expression.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] from [`SmtContext::reify`].
    pub fn assert(&mut self, e: &BExp) -> Result<(), EncodeError> {
        let l = self.reify(e)?;
        self.solver.add_clause([l]);
        Ok(())
    }

    /// Asserts the negation of a boolean expression.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] from [`SmtContext::reify`].
    pub fn assert_not(&mut self, e: &BExp) -> Result<(), EncodeError> {
        let l = self.reify(e)?;
        self.solver.add_clause([!l]);
        Ok(())
    }

    // ---------------------------------------------------------------- solving

    /// Checks satisfiability under optional assumption literals.
    pub fn check(&mut self, assumptions: &[Lit]) -> CheckResult {
        let _span = veriqec_obs::span("smt", "check");
        match self.solver.solve(assumptions) {
            SatResult::Sat => CheckResult::Sat,
            SatResult::Unsat => CheckResult::Unsat,
            SatResult::Unknown => CheckResult::Unknown,
        }
    }

    /// Why the last [`SmtContext::check`] returned
    /// [`CheckResult::Unknown`] (see [`veriqec_sat::UnknownCause`]).
    pub fn unknown_cause(&self) -> Option<veriqec_sat::UnknownCause> {
        self.solver.unknown_cause()
    }

    /// Extracts the model restricted to classical variables seen so far.
    ///
    /// Call only after a [`CheckResult::Sat`] result; variables the solver
    /// never saw default to `false`.
    pub fn model(&self) -> CMem {
        let mut m = CMem::new();
        for &v in &self.tracked {
            let sv = self.varmap[&v];
            let val = self.solver.model_value(sv.positive()).unwrap_or(false);
            m.set(v, Value::Bool(val));
        }
        m
    }

    /// Number of SAT variables allocated (classical + auxiliary).
    pub fn num_sat_vars(&self) -> usize {
        self.solver.num_vars()
    }

    // ------------------------------------------------------------- counting

    /// Exports the assembled clause set as a model-equivalent CNF (see
    /// [`veriqec_sat::Solver::export_cnf`]). Together with
    /// [`SmtContext::sat_lit`] this is the hand-off to the decision-diagram
    /// counting backend: every auxiliary variable this context introduces
    /// (Tseitin definitions, totalizer outputs) is functionally determined
    /// by the classical variables, so the exported CNF has exactly one model
    /// per satisfying assignment of the classical variables.
    pub fn export_cnf(&self) -> veriqec_sat::Cnf {
        let _span = veriqec_obs::span("smt", "export_cnf");
        self.solver.export_cnf()
    }

    /// The SAT literal already allocated for a classical variable, or `None`
    /// if the context has never seen it. Unlike [`SmtContext::lit_of`] this
    /// never allocates, so it is safe to call while assembling an
    /// indicator-literal map for an exported CNF.
    pub fn sat_lit(&self, v: VarId) -> Option<Lit> {
        self.varmap.get(&v).map(|sv| sv.positive())
    }

    /// The full classical-variable → SAT-literal map, in first-use order
    /// (the indicator map shipped alongside [`SmtContext::export_cnf`]).
    pub fn var_map(&self) -> impl Iterator<Item = (VarId, Lit)> + '_ {
        self.tracked
            .iter()
            .map(|&v| (v, self.varmap[&v].positive()))
    }

    /// Number of clauses in the underlying solver.
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Statistics of the underlying solver.
    pub fn solver_stats(&self) -> veriqec_sat::SolverStats {
        self.solver.stats()
    }
}

/// A reusable cardinality constraint built by [`SmtContext::cardinality`].
///
/// Holds the output literals of a totalizer encoded once over a fixed set of
/// inputs; weight bounds become *assumption literals* instead of baked-in
/// clauses, so the same incremental context answers `Σ ≤ k` for every `k`
/// without re-encoding. `None` means the bound is trivially true and needs
/// no assumption at all.
#[derive(Clone, Debug)]
pub struct CardinalityHandle {
    /// `outputs[i]` is true iff at least `i+1` inputs are true.
    outputs: Vec<Lit>,
    /// The context's constant-false literal, used for infeasible bounds.
    lit_false: Lit,
}

impl CardinalityHandle {
    /// Number of input literals the totalizer counts.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when the totalizer counts no inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The raw totalizer output literals (`outputs[i]` ⇔ `Σ ≥ i+1`).
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Assumption literal for `Σ inputs ≤ k`; `None` when trivially true.
    pub fn at_most(&self, k: i64) -> Option<Lit> {
        if k < 0 {
            Some(self.lit_false)
        } else if k as usize >= self.outputs.len() {
            None
        } else {
            Some(!self.outputs[k as usize])
        }
    }

    /// Assumption literal for `Σ inputs ≥ k`; `None` when trivially true.
    pub fn at_least(&self, k: i64) -> Option<Lit> {
        if k <= 0 {
            None
        } else if k as usize > self.outputs.len() {
            Some(self.lit_false)
        } else {
            Some(self.outputs[k as usize - 1])
        }
    }

    /// Assumption literals for `Σ inputs == k` (zero, one or two literals).
    pub fn exactly(&self, k: i64) -> Vec<Lit> {
        [self.at_most(k), self.at_least(k)]
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_cexpr::{VarRole, VarTable};

    fn vars(n: usize) -> (VarTable, Vec<VarId>) {
        let mut vt = VarTable::new();
        let vs = (0..n)
            .map(|i| vt.fresh_indexed("x", i, VarRole::Aux))
            .collect();
        (vt, vs)
    }

    #[test]
    fn at_most_k_counts() {
        for k in 0..=5i64 {
            let (_, vs) = vars(5);
            let mut ctx = SmtContext::new();
            let lits: Vec<Lit> = vs.iter().map(|&v| ctx.lit_of(v)).collect();
            ctx.assert_at_most(&lits, k);
            ctx.assert_at_least(&lits, k); // force == k
            assert!(ctx.check(&[]).is_sat(), "k={k}");
            let m = ctx.model();
            let count: i64 = vs.iter().map(|&v| m.get(v).as_int()).sum();
            assert_eq!(count, k);
        }
    }

    #[test]
    fn cardinality_handle_bounds_as_assumptions() {
        // One totalizer, many bounds: the same context answers every k.
        let (_, vs) = vars(5);
        let mut ctx = SmtContext::new();
        let lits: Vec<Lit> = vs.iter().map(|&v| ctx.lit_of(v)).collect();
        let h = ctx.cardinality(&lits);
        assert_eq!(h.len(), 5);
        // Force exactly 3 inputs true.
        for (i, &l) in lits.iter().enumerate() {
            ctx.add_clause([if i < 3 { l } else { !l }]);
        }
        for k in 0..=6i64 {
            let assumps: Vec<Lit> = h.at_most(k).into_iter().collect();
            let expect_sat = k >= 3;
            assert_eq!(ctx.check(&assumps).is_sat(), expect_sat, "at_most {k}");
            let assumps: Vec<Lit> = h.at_least(k).into_iter().collect();
            let expect_sat = k <= 3;
            assert_eq!(ctx.check(&assumps).is_sat(), expect_sat, "at_least {k}");
            assert_eq!(ctx.check(&h.exactly(k)).is_sat(), k == 3, "exactly {k}");
        }
        // Infeasible bounds produce the constant-false assumption.
        assert!(ctx.check(&h.exactly(-1)).is_unsat());
        assert!(ctx.check(&h.exactly(6)).is_unsat());
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let (_, vs) = vars(3);
        let mut ctx = SmtContext::new();
        let lits: Vec<Lit> = vs.iter().map(|&v| ctx.lit_of(v)).collect();
        ctx.assert_at_least(&lits, 4);
        assert!(ctx.check(&[]).is_unsat());
    }

    #[test]
    fn weight_le_bexp_roundtrip() {
        let (_, vs) = vars(6);
        let mut ctx = SmtContext::new();
        ctx.assert(&BExp::weight_le(vs.iter().copied(), 2)).unwrap();
        ctx.assert(&BExp::var(vs[0])).unwrap();
        ctx.assert(&BExp::var(vs[1])).unwrap();
        ctx.assert(&BExp::var(vs[2])).unwrap();
        assert!(ctx.check(&[]).is_unsat());
    }

    #[test]
    fn sum_le_sum_decoder_condition() {
        // Σ c <= Σ e with e having exactly one 1 forces Σ c <= 1.
        let (_, all) = vars(6);
        let (c, e) = all.split_at(3);
        let mut ctx = SmtContext::new();
        let cl: Vec<Lit> = c.iter().map(|&v| ctx.lit_of(v)).collect();
        let el: Vec<Lit> = e.iter().map(|&v| ctx.lit_of(v)).collect();
        ctx.assert_exactly(&el, 1);
        ctx.assert_sum_le_sum(&cl, &el, 0);
        ctx.assert_at_least(&cl, 2);
        assert!(ctx.check(&[]).is_unsat());
    }

    #[test]
    fn affine_equations_solve_parity() {
        let (_, vs) = vars(3);
        let mut ctx = SmtContext::new();
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1: odd cycle, unsat.
        let mk = |a: VarId, b: VarId| Affine::var(a) ^ Affine::var(b);
        ctx.assert_affine_eq(&mk(vs[0], vs[1]), true);
        ctx.assert_affine_eq(&mk(vs[1], vs[2]), true);
        ctx.assert_affine_eq(&mk(vs[0], vs[2]), true);
        assert!(ctx.check(&[]).is_unsat());
    }

    #[test]
    fn reified_comparison_under_negation() {
        // ¬(Σ x <= 1) with 3 vars means Σ x >= 2.
        let (_, vs) = vars(3);
        let mut ctx = SmtContext::new();
        ctx.assert_not(&BExp::weight_le(vs.iter().copied(), 1))
            .unwrap();
        assert!(ctx.check(&[]).is_sat());
        let m = ctx.model();
        let count: i64 = vs.iter().map(|&v| m.get(v).as_int()).sum();
        assert!(count >= 2, "count={count}");
    }

    #[test]
    fn eq_between_sums() {
        let (_, all) = vars(4);
        let (a, b) = all.split_at(2);
        let mut ctx = SmtContext::new();
        let ea = IExp::sum_vars(a.iter().copied());
        let eb = IExp::sum_vars(b.iter().copied());
        ctx.assert(&BExp::eq(ea, eb)).unwrap();
        ctx.assert(&BExp::var(a[0])).unwrap();
        ctx.assert(&BExp::var(a[1])).unwrap();
        assert!(ctx.check(&[]).is_sat());
        let m = ctx.model();
        assert!(m.get(b[0]).as_bool() && m.get(b[1]).as_bool());
    }

    #[test]
    fn nonlinear_is_rejected() {
        let (_, vs) = vars(2);
        let mut ctx = SmtContext::new();
        let prod = IExp::Mul(
            std::sync::Arc::new(IExp::var(vs[0])),
            std::sync::Arc::new(IExp::var(vs[1])),
        );
        let e = BExp::eq(prod, IExp::constant(1));
        assert!(ctx.assert(&e).is_err());
    }

    #[test]
    fn export_cnf_has_one_model_per_classical_assignment() {
        // The counting backend relies on every auxiliary variable (Tseitin
        // definitions, totalizer outputs) being functionally determined by
        // the classical variables: the exported CNF must have exactly one
        // model per satisfying classical assignment. Σx ≤ 2 over 4 vars has
        // C(4,0) + C(4,1) + C(4,2) = 11 of them.
        let (_, vs) = vars(4);
        let mut ctx = SmtContext::new();
        let lits: Vec<Lit> = vs.iter().map(|&v| ctx.lit_of(v)).collect();
        let h = ctx.cardinality(&lits);
        if let Some(l) = h.at_most(2) {
            ctx.add_clause([l]);
        }
        let cnf = ctx.export_cnf();
        assert!(cnf.num_vars <= 20, "small enough to brute force");
        let count = (0u32..1 << cnf.num_vars)
            .filter(|bits| {
                cnf.clauses.iter().all(|cl| {
                    cl.iter()
                        .any(|l| ((bits >> l.var().0) & 1 == 1) == l.is_positive())
                })
            })
            .count();
        assert_eq!(count, 11);
        // And the indicator map points at the right literals.
        for (&v, &l) in vs.iter().zip(&lits) {
            assert_eq!(ctx.sat_lit(v), Some(l));
        }
        assert_eq!(ctx.var_map().count(), 4);
    }

    #[test]
    fn model_respects_implications() {
        let (_, vs) = vars(2);
        let mut ctx = SmtContext::new();
        ctx.assert(&BExp::implies(BExp::var(vs[0]), BExp::var(vs[1])))
            .unwrap();
        ctx.assert(&BExp::var(vs[0])).unwrap();
        assert!(ctx.check(&[]).is_sat());
        assert!(ctx.model().get(vs[1]).as_bool());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use veriqec_cexpr::{VarRole, VarTable};

    fn vars(n: usize) -> Vec<VarId> {
        let mut vt = VarTable::new();
        (0..n)
            .map(|i| vt.fresh_indexed("x", i, VarRole::Aux))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn totalizer_counts_exactly(bits in proptest::collection::vec(any::<bool>(), 1..8)) {
            // Force each input to a constant and read out the totalizer.
            let vs = vars(bits.len());
            let mut ctx = SmtContext::new();
            let lits: Vec<Lit> = vs.iter().map(|&v| ctx.lit_of(v)).collect();
            let outs = ctx.totalizer(&lits);
            for (l, &b) in lits.iter().zip(&bits) {
                ctx.add_clause([if b { *l } else { !*l }]);
            }
            prop_assert!(ctx.check(&[]).is_sat());
            let count = bits.iter().filter(|&&b| b).count();
            for (i, &o) in outs.iter().enumerate() {
                // outs[i] <=> at least i+1 inputs true
                let expected = count > i;
                let mut probe = ctx.clone();
                probe.add_clause([if expected { o } else { !o }]);
                prop_assert!(probe.check(&[]).is_sat(), "totalizer bit {i}");
                let mut refute = ctx.clone();
                refute.add_clause([if expected { !o } else { o }]);
                prop_assert!(refute.check(&[]).is_unsat(), "totalizer bit {i} refute");
            }
        }

        #[test]
        fn sum_le_sum_matches_arithmetic(
            a_bits in proptest::collection::vec(any::<bool>(), 1..6),
            b_bits in proptest::collection::vec(any::<bool>(), 1..6),
            offset in -3i64..4,
        ) {
            let vs = vars(a_bits.len() + b_bits.len());
            let (av, bv) = vs.split_at(a_bits.len());
            let mut ctx = SmtContext::new();
            let al: Vec<Lit> = av.iter().map(|&v| ctx.lit_of(v)).collect();
            let bl: Vec<Lit> = bv.iter().map(|&v| ctx.lit_of(v)).collect();
            let cmp = ctx.reify_sum_le_sum(&al, &bl, offset);
            for (l, &bit) in al.iter().zip(&a_bits).chain(bl.iter().zip(&b_bits)) {
                ctx.add_clause([if bit { *l } else { !*l }]);
            }
            let sa = a_bits.iter().filter(|&&x| x).count() as i64;
            let sb = b_bits.iter().filter(|&&x| x).count() as i64;
            let expected = sa + offset <= sb;
            ctx.add_clause([if expected { cmp } else { !cmp }]);
            prop_assert!(ctx.check(&[]).is_sat());
            // And the negation must be refuted.
            let mut ctx2 = SmtContext::new();
            let al: Vec<Lit> = av.iter().map(|&v| ctx2.lit_of(v)).collect();
            let bl: Vec<Lit> = bv.iter().map(|&v| ctx2.lit_of(v)).collect();
            let cmp = ctx2.reify_sum_le_sum(&al, &bl, offset);
            for (l, &bit) in al.iter().zip(&a_bits).chain(bl.iter().zip(&b_bits)) {
                ctx2.add_clause([if bit { *l } else { !*l }]);
            }
            ctx2.add_clause([if expected { !cmp } else { cmp }]);
            prop_assert!(ctx2.check(&[]).is_unsat());
        }

        #[test]
        fn bexp_encoding_matches_evaluation(
            bits in proptest::collection::vec(any::<bool>(), 4),
            k in 0i64..5,
        ) {
            // weight_le under a full assignment must match direct evaluation.
            use veriqec_cexpr::{BExp, CMem, Value};
            let vs = vars(4);
            let e = BExp::weight_le(vs.iter().copied(), k);
            let mut m = CMem::new();
            for (&v, &b) in vs.iter().zip(&bits) {
                m.set(v, Value::Bool(b));
            }
            let expected = e.eval(&m);
            let mut ctx = SmtContext::new();
            let l = ctx.reify(&e).unwrap();
            for (&v, &b) in vs.iter().zip(&bits) {
                let lv = ctx.lit_of(v);
                ctx.add_clause([if b { lv } else { !lv }]);
            }
            ctx.add_clause([if expected { l } else { !l }]);
            prop_assert!(ctx.check(&[]).is_sat());
        }
    }
}
