//! An SMT-style formula layer over the CDCL SAT core.
//!
//! The paper's Veri-QEC encodes its classical verification conditions in
//! SMT-LIBv2 and discharges them with Z3/CVC5. After the reduction of §5.1
//! those conditions live in a small fragment: boolean structure over
//! GF(2) (XOR) phase equations and cardinality comparisons between sums of
//! indicator bits (error weights vs. correction weights). This crate encodes
//! exactly that fragment to CNF:
//!
//! * Tseitin transformation for arbitrary [`veriqec_cexpr::BExp`] structure,
//! * XOR chains for [`veriqec_cexpr::Affine`] phase forms,
//! * totalizer-based cardinality (`Σ ≤ k`, `Σ = k`, `Σ_a ≤ Σ_b`), fully
//!   reified so comparisons may appear under negation.
//!
//! # Examples
//!
//! ```
//! use veriqec_cexpr::{BExp, VarRole, VarTable};
//! use veriqec_smt::SmtContext;
//!
//! let mut vt = VarTable::new();
//! let e: Vec<_> = (0..5).map(|i| vt.fresh_indexed("e", i, VarRole::Error)).collect();
//! let mut ctx = SmtContext::new();
//! // weight(e) <= 1  and  e_0 XOR e_3  (so exactly one of them) is satisfiable
//! ctx.assert(&BExp::weight_le(e.iter().copied(), 1)).unwrap();
//! ctx.assert(&BExp::xor(BExp::var(e[0]), BExp::var(e[3]))).unwrap();
//! assert!(ctx.check(&[]).is_sat());
//! let m = ctx.model();
//! assert_eq!(m.get(e[0]).as_bool() as u8 + m.get(e[3]).as_bool() as u8, 1);
//! ```

mod context;

pub use context::{CardinalityHandle, CheckResult, EncodeError, SmtContext};
