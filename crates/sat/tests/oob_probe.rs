use veriqec_sat::{Lit, SatResult, Solver, Var};

#[test]
fn duplicate_assumptions_deep_levels() {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
    let l = |v: usize, pos: bool| Lit::new(vars[v], pos);
    s.add_clause([l(1, true), l(2, true), l(3, true)]);
    s.add_clause([l(1, true), l(2, true), !l(3, true)]);
    let a = l(0, true);
    let r = s.solve(&[a, a, a]);
    assert_ne!(r, SatResult::Unknown);
}
