//! Flat clause storage: every clause of the solver lives in one contiguous
//! `Vec<u32>` arena.
//!
//! A clause is three header words — size+flags, LBD ("glue"), and a float
//! activity — followed by its literals inline, and a [`ClauseRef`] is the
//! word offset of the header. Compared to a `Vec<Clause>` of per-clause
//! `Vec<Lit>` heap allocations this removes one pointer indirection (and a
//! cache miss) from every clause access in the propagation watch scan, and
//! makes allocation a bump of the arena's length. Deleting a clause only
//! tombstones it (the words stay so the arena remains walkable); the solver
//! triggers [`ClauseArena::begin_gc`] compaction once the tombstoned
//! fraction crosses its configured threshold, remapping every live
//! [`ClauseRef`] through the forwarding addresses the compaction leaves
//! behind in the old arena.

use crate::Lit;

/// Words of metadata preceding a clause's literals: `[size|flags, lbd,
/// activity]`.
pub(crate) const HEADER_WORDS: usize = 3;

/// Bits of the header word holding the clause size (literal count).
const SIZE_BITS: u32 = 28;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
const LEARNT_FLAG: u32 = 1 << 28;
const DELETED_FLAG: u32 = 1 << 29;
/// Set only between [`ClauseArena::begin_gc`] and
/// [`ClauseArena::finish_gc`]: the clause's LBD word holds its forwarding
/// address in the compacted arena.
const FORWARDED_FLAG: u32 = 1 << 30;

/// Reference to a clause: the word offset of its header in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// The flat clause arena.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by tombstoned clauses (headers included).
    wasted: usize,
}

impl ClauseArena {
    /// Appends a clause and returns its reference.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit clauses live on the trail");
        debug_assert!(lits.len() < SIZE_MASK as usize);
        let cref = ClauseRef(self.data.len() as u32);
        let mut header = lits.len() as u32;
        if learnt {
            header |= LEARNT_FLAG;
        }
        self.data.reserve(HEADER_WORDS + lits.len());
        self.data.push(header);
        self.data.push(0); // LBD
        self.data.push(0.0f32.to_bits()); // activity
        self.data.extend(lits.iter().map(|l| l.index() as u32));
        cref
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.data[cref.0 as usize] & SIZE_MASK) as usize
    }

    /// The `k`-th literal of the clause.
    #[inline]
    pub fn lit(&self, cref: ClauseRef, k: usize) -> Lit {
        debug_assert!(k < self.len(cref));
        Lit::from_index(self.data[cref.0 as usize + HEADER_WORDS + k] as usize)
    }

    /// The clause's literals as raw `Lit` index words — one bounds check
    /// for the whole clause instead of one per literal, for the hot scan
    /// loops (convert each word back with `Lit::from_index`).
    #[inline]
    pub fn lit_words(&self, cref: ClauseRef) -> &[u32] {
        let base = cref.0 as usize + HEADER_WORDS;
        let len = (self.data[base - HEADER_WORDS] & SIZE_MASK) as usize;
        &self.data[base..base + len]
    }

    /// Swaps two literals of the clause in place.
    #[inline]
    pub fn swap_lits(&mut self, cref: ClauseRef, a: usize, b: usize) {
        let base = cref.0 as usize + HEADER_WORDS;
        self.data.swap(base + a, base + b);
    }

    /// The clause's literals, materialized (export paths only — the hot
    /// loops use [`ClauseArena::lit`] indexing).
    pub fn lits_vec(&self, cref: ClauseRef) -> Vec<Lit> {
        (0..self.len(cref)).map(|k| self.lit(cref, k)).collect()
    }

    /// True for learnt (conflict) clauses.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref.0 as usize] & LEARNT_FLAG != 0
    }

    /// True once the clause has been tombstoned.
    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.data[cref.0 as usize] & DELETED_FLAG != 0
    }

    /// The clause's literal-block distance recorded at learn time.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[cref.0 as usize + 1]
    }

    /// Records the clause's literal-block distance.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        self.data[cref.0 as usize + 1] = lbd;
    }

    /// The clause's bump activity.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[cref.0 as usize + 2])
    }

    /// Sets the clause's bump activity.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.data[cref.0 as usize + 2] = activity.to_bits();
    }

    /// Multiplies every clause activity by `factor` (the periodic rescale
    /// that keeps bump increments finite).
    pub fn rescale_activities(&mut self, factor: f32) {
        let mut off = 0;
        while off < self.data.len() {
            let size = (self.data[off] & SIZE_MASK) as usize;
            let a = f32::from_bits(self.data[off + 2]) * factor;
            self.data[off + 2] = a.to_bits();
            off += HEADER_WORDS + size;
        }
    }

    /// Tombstones the clause. The words remain in place (the arena stays
    /// walkable) until the next garbage collection reclaims them.
    pub fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        self.data[cref.0 as usize] |= DELETED_FLAG;
        self.wasted += HEADER_WORDS + self.len(cref);
    }

    /// Total arena size in words.
    pub fn total_words(&self) -> usize {
        self.data.len()
    }

    /// Words held by tombstoned clauses.
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Current arena footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }

    /// Iterates the references of all live (non-tombstoned) clauses, in
    /// allocation order.
    pub fn refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut off = 0;
        std::iter::from_fn(move || {
            while off < self.data.len() {
                let header = self.data[off];
                let cref = ClauseRef(off as u32);
                off += HEADER_WORDS + (header & SIZE_MASK) as usize;
                if header & DELETED_FLAG == 0 {
                    return Some(cref);
                }
            }
            None
        })
    }

    /// First phase of garbage collection: copies every live clause into a
    /// fresh compacted buffer and overwrites each old clause's LBD word
    /// with its forwarding address (marked by a header flag). The caller
    /// remaps its outstanding [`ClauseRef`]s through
    /// [`ClauseArena::forward`] and then installs the buffer with
    /// [`ClauseArena::finish_gc`].
    #[must_use = "the compacted buffer must be installed with finish_gc"]
    pub fn begin_gc(&mut self) -> Vec<u32> {
        let mut to = Vec::with_capacity(self.data.len() - self.wasted);
        let mut off = 0;
        while off < self.data.len() {
            let header = self.data[off];
            let total = HEADER_WORDS + (header & SIZE_MASK) as usize;
            if header & DELETED_FLAG == 0 {
                let new_off = to.len() as u32;
                to.extend_from_slice(&self.data[off..off + total]);
                self.data[off] = header | FORWARDED_FLAG;
                self.data[off + 1] = new_off;
            }
            off += total;
        }
        to
    }

    /// The compacted address of a live clause, valid between
    /// [`ClauseArena::begin_gc`] and [`ClauseArena::finish_gc`].
    #[inline]
    pub fn forward(&self, cref: ClauseRef) -> ClauseRef {
        debug_assert!(
            self.data[cref.0 as usize] & FORWARDED_FLAG != 0,
            "forward() outside a GC, or on a tombstoned clause"
        );
        ClauseRef(self.data[cref.0 as usize + 1])
    }

    /// Installs the compacted buffer from [`ClauseArena::begin_gc`]; the
    /// arena afterwards contains exactly the live clauses, wasting nothing.
    pub fn finish_gc(&mut self, compacted: Vec<u32>) {
        self.data = compacted;
        self.wasted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lits(ids: &[(u32, bool)]) -> Vec<Lit> {
        ids.iter().map(|&(v, pos)| Lit::new(Var(v), pos)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&lits(&[(0, true), (1, false), (2, true)]), false);
        let b = arena.alloc(&lits(&[(3, false), (4, true)]), true);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.len(b), 2);
        assert_eq!(arena.lit(a, 1), Lit::new(Var(1), false));
        assert!(!arena.is_learnt(a));
        assert!(arena.is_learnt(b));
        assert_eq!(arena.lbd(b), 0);
        arena.set_lbd(b, 2);
        assert_eq!(arena.lbd(b), 2);
        arena.set_activity(b, 1.5);
        assert_eq!(arena.activity(b), 1.5);
        arena.swap_lits(a, 0, 2);
        assert_eq!(arena.lit(a, 0), Lit::new(Var(2), true));
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn delete_tombstones_and_gc_compacts() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&lits(&[(0, true), (1, true)]), false);
        let b = arena.alloc(&lits(&[(2, true), (3, true), (4, true)]), true);
        let c = arena.alloc(&lits(&[(5, true), (6, true)]), false);
        arena.set_lbd(b, 3);
        arena.delete(a);
        assert!(arena.is_deleted(a));
        assert_eq!(arena.wasted_words(), HEADER_WORDS + 2);
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![b, c]);

        let compacted = arena.begin_gc();
        let (b2, c2) = (arena.forward(b), arena.forward(c));
        arena.finish_gc(compacted);
        assert_eq!(arena.wasted_words(), 0);
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![b2, c2]);
        // Payloads survived the move, including metadata words.
        assert_eq!(arena.len(b2), 3);
        assert_eq!(arena.lbd(b2), 3);
        assert!(arena.is_learnt(b2));
        assert_eq!(arena.lits_vec(c2), lits(&[(5, true), (6, true)]));
        // The freed words are really gone.
        assert_eq!(
            arena.total_words(),
            2 * HEADER_WORDS + 3 + 2,
            "compacted arena holds exactly the live clauses"
        );
    }

    #[test]
    fn rescale_touches_every_clause() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&lits(&[(0, true), (1, true)]), true);
        let b = arena.alloc(&lits(&[(2, true), (3, true)]), true);
        arena.set_activity(a, 8.0);
        arena.set_activity(b, 2.0);
        arena.rescale_activities(0.25);
        assert_eq!(arena.activity(a), 2.0);
        assert_eq!(arena.activity(b), 0.5);
    }
}
