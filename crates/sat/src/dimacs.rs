//! DIMACS CNF parsing and printing, for interoperability and tests.

use crate::{Lit, Solver, Var};
use std::fmt::Write as _;

/// Error returned when a DIMACS document cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DIMACS input: {}", self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// A CNF formula in clausal form, as read from a DIMACS document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the header (variables are 1-based in
    /// DIMACS; internally 0-based).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Parses a DIMACS CNF document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed input (missing header,
    /// non-integer tokens, variable indices exceeding the header count).
    pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut num_vars: Option<usize> = None;
        let mut clauses = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(ParseDimacsError {
                        message: "header must be `p cnf <vars> <clauses>`".into(),
                    });
                }
                let nv = parts
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| ParseDimacsError {
                        message: "missing variable count".into(),
                    })?;
                num_vars = Some(nv);
                continue;
            }
            let nv = num_vars.ok_or_else(|| ParseDimacsError {
                message: "clause before header".into(),
            })?;
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    message: format!("non-integer token `{tok}`"),
                })?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let var = v.unsigned_abs() as usize - 1;
                    if var >= nv {
                        return Err(ParseDimacsError {
                            message: format!("variable {} exceeds header count {nv}", var + 1),
                        });
                    }
                    current.push(Lit::new(Var(var as u32), v > 0));
                }
            }
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        Ok(Cnf {
            num_vars: num_vars.unwrap_or(0),
            clauses,
        })
    }

    /// Renders as a DIMACS document.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let v = l.var().0 as i64 + 1;
                let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the formula into a fresh solver.
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

/// Truth-table reference shared by the unit tests and proptests below:
/// every satisfying assignment of `c`, as variable bitmasks.
#[cfg(test)]
fn models(c: &Cnf) -> Vec<u32> {
    (0u32..1 << c.num_vars)
        .filter(|bits| {
            c.clauses.iter().all(|cl| {
                cl.iter()
                    .any(|l| ((bits >> l.var().0) & 1 == 1) == l.is_positive())
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    #[test]
    fn parse_print_roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let reparsed = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn solve_parsed_instance() {
        let cnf = Cnf::parse("p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n").unwrap();
        assert_eq!(cnf.into_solver().solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(Cnf::parse("p dnf 1 1\n1 0\n").is_err());
        assert!(Cnf::parse("1 0\n").is_err());
        assert!(Cnf::parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn export_reconstructs_units_and_clauses() {
        // Unit clauses land on the trail, satisfied clauses are dropped at
        // add time; the export must still be model-equivalent.
        let cnf = Cnf::parse("p cnf 3 3\n1 0\n1 2 0\n-1 3 0\n").unwrap();
        let exported = cnf.into_solver().export_cnf();
        assert_eq!(exported.num_vars, 3);
        // Same model set: x1 = 1, x3 = 1, x2 free.
        assert_eq!(models(&cnf), models(&exported));
    }

    #[test]
    fn export_of_root_conflict_is_empty_clause() {
        let cnf = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let exported = cnf.into_solver().export_cnf();
        assert!(exported.clauses.contains(&Vec::new()));
        assert_eq!(
            Cnf::parse(&exported.to_dimacs()).unwrap().clauses,
            exported.clauses
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::SatResult;
    use proptest::prelude::*;

    fn arb_cnf() -> impl Strategy<Value = Cnf> {
        (1usize..12).prop_flat_map(|num_vars| {
            proptest::collection::vec(
                proptest::collection::vec((0..num_vars, any::<bool>()), 0..5),
                0..20,
            )
            .prop_map(move |clauses| Cnf {
                num_vars,
                clauses: clauses
                    .into_iter()
                    .map(|c| {
                        c.into_iter()
                            .map(|(v, pos)| Lit::new(Var(v as u32), pos))
                            .collect()
                    })
                    .collect(),
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn to_dimacs_parse_roundtrip(cnf in arb_cnf()) {
            // The writer/parser pair must be lossless, including empty
            // clauses and empty formulas.
            let reparsed = Cnf::parse(&cnf.to_dimacs()).expect("writer output parses");
            prop_assert_eq!(&reparsed, &cnf);
            // And a second trip is a fixpoint.
            let again = Cnf::parse(&reparsed.to_dimacs()).unwrap();
            prop_assert_eq!(again, reparsed);
        }

        #[test]
        fn export_cnf_is_model_equivalent(cnf in arb_cnf()) {
            // Loading into a solver and exporting back may reshape the
            // clause set (units on the trail, satisfied clauses dropped,
            // root-false literals stripped) but must preserve the exact set
            // of satisfying assignments — the counting backend depends on it.
            let solver = cnf.into_solver();
            let exported = solver.export_cnf();
            prop_assert_eq!(exported.num_vars, cnf.num_vars);
            prop_assert_eq!(models(&exported), models(&cnf));
        }

        #[test]
        fn export_cnf_after_solving_stays_model_equivalent(cnf in arb_cnf()) {
            // Solving adds learnt clauses and root-level implications; the
            // export must still denote the same model set.
            let mut solver = cnf.into_solver();
            let _ = solver.solve(&[]);
            let exported = solver.export_cnf();
            prop_assert_eq!(models(&exported), models(&cnf));
            // Sanity: the exported formula solves to the same result.
            let roundtrip = exported.into_solver().solve(&[]);
            let expected = if models(&cnf).is_empty() { SatResult::Unsat } else { SatResult::Sat };
            prop_assert_eq!(roundtrip, expected);
        }
    }
}
