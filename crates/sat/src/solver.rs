//! A CDCL SAT solver: two-watched literals, first-UIP learning, VSIDS
//! branching with phase saving, Luby restarts and learned-clause reduction.
//!
//! This is the engine behind the `veriqec_smt` formula layer and thus the
//! reproduction's stand-in for the paper's Z3/CVC5 back end.

use crate::heap::ActivityHeap;
use crate::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Reference to a clause in the solver's arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause cannot propagate and the watch scan can skip it.
    blocker: Lit,
}

/// Tunable feature switches, used by the ablation benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Branch on VSIDS activity (otherwise: lowest-index unassigned variable).
    pub use_vsids: bool,
    /// Learn conflict clauses (otherwise: plain backtracking on conflicts).
    pub use_learning: bool,
    /// Remember the last assigned polarity of each variable.
    pub use_phase_saving: bool,
    /// Restart with the Luby sequence.
    pub use_restarts: bool,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Maximum number of conflicts before giving up (`None` = unbounded).
    pub conflict_budget: Option<u64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            use_vsids: true,
            use_learning: true,
            use_phase_saving: true,
            use_restarts: true,
            restart_base: 128,
            conflict_budget: None,
        }
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; query the model through [`Solver::model_value`].
    Sat,
    /// Unsatisfiable (under the given assumptions).
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

/// Aggregate statistics of a solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently kept.
    pub learnts: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learnts += rhs.learnts;
    }
}

impl std::iter::Sum for SolverStats {
    fn sum<I: Iterator<Item = SolverStats>>(iter: I) -> SolverStats {
        let mut total = SolverStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use veriqec_sat::{SatResult, Solver, Var};
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(&[]), SatResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// s.add_clause([!b]);
/// assert_eq!(s.solve(&[]), SatResult::Unsat);
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    stats: SolverStats,
    model: Vec<LBool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Cooperative cancellation: when set, [`Solver::solve`] aborts at the
    /// next conflict/decision boundary with [`SatResult::Unknown`].
    stop: Option<Arc<AtomicBool>>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            stats: SolverStats::default(),
            model: Vec::new(),
            seen: Vec::new(),
            stop: None,
        }
    }

    /// Installs a cooperative stop flag, shared with other solvers or a
    /// driving thread. The main CDCL loop polls it between propagations —
    /// i.e. at every conflict/decision boundary — so a solver stuck deep in
    /// a long subtask aborts promptly (returning [`SatResult::Unknown`])
    /// instead of only between subtasks. The flag is not cleared by the
    /// solver; the owner decides when a stop is rescinded.
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.stop = Some(flag);
    }

    /// True when an installed stop flag is currently raised.
    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of (non-deleted) clauses, including learnt ones.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Exports the solver's clause database as a model-equivalent CNF over
    /// the same variable set — the bridge to the decision-diagram counting
    /// backend (`veriqec_dd`) and to DIMACS debugging artifacts.
    ///
    /// The solver simplifies clauses as they arrive (dropping satisfied
    /// clauses, stripping root-false literals, enqueuing units straight onto
    /// the trail), so the export reconstructs an equivalent formula: every
    /// root-level trail literal as a unit clause plus every live original
    /// (non-learnt) clause. Each simplification is justified by a root-level
    /// implication, and the implied units are included, so the satisfying
    /// assignments — not just satisfiability — are preserved exactly.
    /// Learnt clauses are implied and therefore omitted. An unsatisfiable
    /// root state exports as the empty clause.
    pub fn export_cnf(&self) -> crate::Cnf {
        let mut clauses = Vec::new();
        if !self.ok {
            clauses.push(Vec::new());
        } else {
            let level0 = self.trail_lim.first().copied().unwrap_or(self.trail.len());
            for &l in &self.trail[..level0] {
                clauses.push(vec![l]);
            }
            for c in &self.clauses {
                if !c.deleted && !c.learnt {
                    clauses.push(c.lits.clone());
                }
            }
        }
        crate::Cnf {
            num_vars: self.num_vars(),
            clauses,
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding the empty clause, or a root-level conflict).
    ///
    /// Tautologies are dropped and duplicate literals merged.
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions a variable that was never allocated.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at the root level"
        );
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l:?}");
        }
        lits.sort();
        lits.dedup();
        // Drop tautologies; filter out root-false literals; detect satisfied clauses.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // contains l and ~l: tautology
            }
            i += 1;
        }
        lits.retain(|&l| self.value(l) != LBool::False);
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[(!lits[0]).index()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.stats.learnts += 1;
        }
        cref
    }

    /// Current truth value of a literal.
    fn value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        if self.config.use_phase_saving {
            self.polarity[v.index()] = l.is_positive();
        }
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            'watchers: while i < self.watches[p.index()].len() {
                let Watcher { cref, blocker } = self.watches[p.index()][i];
                if self.value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                // Make sure the false literal is lits[1].
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref.0 as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref.0 as usize].lits[0];
                if first != blocker && self.value(first) == LBool::True {
                    self.watches[p.index()][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref.0 as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref.0 as usize].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref.0 as usize].lits.swap(1, k);
                        self.watches[p.index()].swap_remove(i);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;

        loop {
            self.bump_clause(cref);
            let lits = self.clauses[cref.0 as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal from the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision must have a reason");
        }

        // Clause minimization: drop literals implied by the rest. `seen` must
        // be cleared for dropped literals as well, so remember the full tail.
        let full_tail: Vec<Lit> = learnt[1..].to_vec();
        let keep: Vec<Lit> = full_tail
            .iter()
            .copied()
            .filter(|&l| !self.is_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        // Find backtrack level: the second-highest level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        self.seen[learnt[0].var().index()] = false;
        for &l in &full_tail {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level)
    }

    /// A literal is redundant if its reason clause consists only of literals
    /// already seen (a cheap one-step version of recursive minimization).
    fn is_redundant(&self, l: Lit) -> bool {
        let Some(r) = self.reason[l.var().index()] else {
            return false;
        };
        self.clauses[r.0 as usize].lits[1..]
            .iter()
            .all(|&q| self.seen[q.var().index()] || self.level[q.var().index()] == 0)
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        if self.config.use_vsids {
            while let Some(v) = self.heap.pop_max(&self.activity) {
                if self.assigns[v.index()] == LBool::Undef {
                    let pol = self.config.use_phase_saving && self.polarity[v.index()];
                    return Some(Lit::new(v, pol));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(|i| Var(i as u32))
                .find(|v| self.assigns[v.index()] == LBool::Undef)
                .map(|v| Lit::new(v, self.polarity[v.index()]))
        }
    }

    fn reduce_learnts(&mut self) {
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && !self.clauses[i].deleted)
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<Option<ClauseRef>> = self.reason.clone();
        let is_locked = |cref: usize| locked.iter().any(|r| r.map(|c| c.0 as usize) == Some(cref));
        let remove_count = learnt_refs.len() / 2;
        for &idx in learnt_refs.iter().take(remove_count) {
            if self.clauses[idx].lits.len() > 2 && !is_locked(idx) {
                self.detach_clause(idx);
            }
        }
    }

    fn detach_clause(&mut self, idx: usize) {
        let cref = ClauseRef(idx as u32);
        let (l0, l1) = {
            let c = &self.clauses[idx];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
        self.clauses[idx].deleted = true;
        self.stats.learnts = self.stats.learnts.saturating_sub(1);
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are temporary: the solver state is reusable afterwards for
    /// further `add_clause`/`solve` calls (incremental solving).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut conflicts_until_restart = self.restart_interval(0);
        let mut restart_count = 0u64;
        let mut conflicts_this_solve = 0u64;
        let mut max_learnts = (self.clauses.len() / 3).max(1000) as u64;

        loop {
            if self.stop_requested() {
                return SatResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_solve += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if self.config.use_learning {
                    let (learnt, bt) = self.analyze(conflict);
                    self.backtrack_to(bt);
                    if learnt.len() == 1 {
                        self.unchecked_enqueue(learnt[0], None);
                    } else {
                        let cref = self.attach_clause(learnt.clone(), true);
                        self.unchecked_enqueue(learnt[0], Some(cref));
                    }
                    self.var_inc /= 0.95;
                    self.cla_inc /= 0.999;
                } else {
                    // Chronological backtracking: flip the last decision.
                    let lvl = self.decision_level() - 1;
                    let flip = !self.trail[self.trail_lim[lvl as usize]];
                    self.backtrack_to(lvl);
                    // Without learning we cannot record a reason; treat as decision-level
                    // assignment at the current level.
                    if self.value(flip) == LBool::Undef {
                        self.unchecked_enqueue(flip, None);
                    } else if self.decision_level() == 0 {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                }
                if let Some(budget) = self.config.conflict_budget {
                    if conflicts_this_solve >= budget {
                        return SatResult::Unknown;
                    }
                }
                if self.config.use_restarts && conflicts_this_solve >= conflicts_until_restart {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart =
                        conflicts_this_solve + self.restart_interval(restart_count);
                    self.backtrack_to(0);
                }
                if self.config.use_learning && self.stats.learnts > max_learnts {
                    self.reduce_learnts();
                    max_learnts += max_learnts / 2;
                }
            } else {
                // No conflict: extend with assumptions, then decide.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied; open a dummy level to keep indices aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SatResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        self.model = self.assigns.clone();
                        self.backtrack_to(0);
                        return SatResult::Sat;
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    fn restart_interval(&self, i: u64) -> u64 {
        self.config.restart_base * luby(i + 1)
    }

    /// Value of a literal in the last satisfying model.
    ///
    /// Returns `None` if no model is available or the variable was never
    /// assigned (free variables may legitimately be unassigned only when the
    /// formula did not constrain them; this solver assigns all variables).
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        match self.model.get(l.var().index())? {
            LBool::True => Some(l.is_positive()),
            LBool::False => Some(!l.is_positive()),
            LBool::Undef => None,
        }
    }

    /// The complete last model as booleans (unassigned variables read `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model
            .iter()
            .map(|&v| matches!(v, LBool::True))
            .collect()
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    loop {
        // Find smallest k with i <= 2^k - 1.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        // Recurse into the copy of the previous subsequence.
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, v: usize, pos: bool) -> Lit {
        while s.num_vars() <= v {
            s.new_var();
        }
        Lit::new(Var(v as u32), pos)
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause([a]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert!(!s.add_clause([!a]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause([a, !a]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let n = 30;
        for i in 0..n - 1 {
            let x = lit(&mut s, i, true);
            let y = lit(&mut s, i + 1, true);
            s.add_clause([!x, y]); // x_i -> x_{i+1}
        }
        let first = lit(&mut s, 0, true);
        s.add_clause([first]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for i in 0..n {
            let l = lit(&mut s, i, true);
            assert_eq!(s.model_value(l), Some(true));
        }
    }

    #[test]
    fn xor_chain_parity_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let x1 = lit(&mut s, 0, true);
        let x2 = lit(&mut s, 1, true);
        let x3 = lit(&mut s, 2, true);
        for (a, b) in [(x1, x2), (x2, x3), (x1, x3)] {
            s.add_clause([a, b]);
            s.add_clause([!a, !b]);
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // Classic PHP(4,3): each pigeon in some hole, no two share a hole.
        let mut s = Solver::new();
        let p = |s: &mut Solver, pigeon: usize, hole: usize| lit(s, pigeon * 3 + hole, true);
        for pigeon in 0..4 {
            let c: Vec<Lit> = (0..3).map(|h| p(&mut s, pigeon, h)).collect();
            s.add_clause(c);
        }
        for hole in 0..3 {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    let a = p(&mut s, p1, hole);
                    let b = p(&mut s, p2, hole);
                    s.add_clause([!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn raised_stop_flag_aborts_with_unknown() {
        // PHP(6,5) is hard enough that the loop runs many iterations; with
        // the flag pre-raised the solver must bail out immediately.
        let mut s = Solver::new();
        let p = |s: &mut Solver, pigeon: usize, hole: usize| lit(s, pigeon * 5 + hole, true);
        for pigeon in 0..6 {
            let c: Vec<Lit> = (0..5).map(|h| p(&mut s, pigeon, h)).collect();
            s.add_clause(c);
        }
        for hole in 0..5 {
            for p1 in 0..6 {
                for p2 in (p1 + 1)..6 {
                    let a = p(&mut s, p1, hole);
                    let b = p(&mut s, p2, hole);
                    s.add_clause([!a, !b]);
                }
            }
        }
        let flag = Arc::new(AtomicBool::new(true));
        s.set_stop_flag(flag.clone());
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        // Lowering the flag makes the same solver usable again.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solver_stats_aggregate() {
        let a = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnts: 5,
        };
        let total: SolverStats = [a, a].into_iter().sum();
        assert_eq!(total.conflicts, 2);
        assert_eq!(total.propagations, 6);
        assert_eq!(total.learnts, 10);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!a, !b]), SatResult::Unsat);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn all_configs_agree_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..60 {
            let n = 8;
            let clauses: Vec<Vec<(usize, bool)>> = (0..24)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute-force reference.
            let brute_sat = (0..1u32 << n).any(|bits| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
            });
            for (vsids, learning, restarts) in [
                (true, true, true),
                (false, true, false),
                (true, false, false),
                (false, false, false),
            ] {
                let mut s = Solver::with_config(SolverConfig {
                    use_vsids: vsids,
                    use_learning: learning,
                    use_restarts: restarts,
                    ..SolverConfig::default()
                });
                for _ in 0..n {
                    s.new_var();
                }
                for c in &clauses {
                    let lits: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit::new(Var(v as u32), pos))
                        .collect();
                    s.add_clause(lits);
                }
                let got = s.solve(&[]);
                let expect = if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                };
                assert_eq!(
                    got, expect,
                    "round {round} config {vsids}/{learning}/{restarts}"
                );
                if got == SatResult::Sat {
                    // Verify the model actually satisfies the clauses.
                    let model = s.model();
                    for c in &clauses {
                        assert!(c.iter().any(|&(v, pos)| model[v] == pos));
                    }
                }
            }
        }
    }
}
