//! A CDCL SAT solver: two-watched literals, first-UIP learning, VSIDS
//! branching with phase saving, Luby restarts and glue-tiered learned-clause
//! reduction over a flat clause arena.
//!
//! This is the engine behind the `veriqec_smt` formula layer and thus the
//! reproduction's stand-in for the paper's Z3/CVC5 back end.

use crate::arena::{ClauseArena, ClauseRef};
use crate::heap::ActivityHeap;
use crate::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Learnt clauses with learn-time LBD at or below this are "core" tier:
/// kept unconditionally by database reductions (Glucose's glue-clause
/// protection).
const CORE_LBD: u32 = 3;

/// Conflicts between observability sampling points in the CDCL loop: at
/// each multiple the solver bumps the heartbeat conflict counter and, when
/// tracing, emits a conflicts/sec counter sample. Power of two so the
/// check compiles to a mask.
const CONFLICT_SAMPLE: u64 = 2048;

/// High bit of a [`Watcher`]'s clause reference, set for binary clauses.
/// A binary clause propagates entirely from its watcher — the blocker *is*
/// the other literal — so the watch scan never has to load the clause.
/// Arena offsets stay below this bit (`u32` words, so a <8 GiB arena).
const BINARY_TAG: u32 = 1 << 31;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    /// The clause's arena reference, with [`BINARY_TAG`] folded into the
    /// high bit for binary clauses.
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause cannot propagate and the watch scan can skip it.
    blocker: Lit,
}

impl Watcher {
    /// The untagged clause reference.
    #[inline]
    fn clause(&self) -> ClauseRef {
        ClauseRef(self.cref.0 & !BINARY_TAG)
    }

    /// True when the watched clause is binary.
    #[inline]
    fn is_binary(&self) -> bool {
        self.cref.0 & BINARY_TAG != 0
    }
}

/// Tunable feature switches, used by the ablation benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Branch on VSIDS activity (otherwise: lowest-index unassigned variable).
    pub use_vsids: bool,
    /// Learn conflict clauses (otherwise: plain backtracking on conflicts).
    pub use_learning: bool,
    /// Remember the last assigned polarity of each variable.
    pub use_phase_saving: bool,
    /// Restart with the Luby sequence.
    pub use_restarts: bool,
    /// Minimize learnt clauses with the full recursive redundancy test and
    /// abstract-level pruning (otherwise: the cheap one-step rule).
    pub use_recursive_minimization: bool,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Maximum number of conflicts before giving up (`None` = unbounded).
    pub conflict_budget: Option<u64>,
    /// Run the arena garbage collector once at least this fraction of the
    /// arena is tombstoned clause words (values above 1.0 disable GC).
    pub gc_wasted_ratio: f64,
    /// Floor of the learnt-clause cap before the first database reduction;
    /// the cap then grows geometrically. Lowered by tests to exercise
    /// reduction and GC on small instances.
    pub reduce_base: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            use_vsids: true,
            use_learning: true,
            use_phase_saving: true,
            use_restarts: true,
            use_recursive_minimization: true,
            restart_base: 128,
            conflict_budget: None,
            gc_wasted_ratio: 0.25,
            reduce_base: 1000,
        }
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; query the model through [`Solver::model_value`].
    Sat,
    /// Unsatisfiable (under the given assumptions).
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

/// Why the most recent [`Solver::solve`] call returned
/// [`SatResult::Unknown`] — the ingredient batch drivers need to report
/// *which* budget tripped instead of a bare "inconclusive".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownCause {
    /// The cooperative stop flag was raised (cancellation, or a watchdog
    /// acting on a wall-clock timeout).
    Interrupted,
    /// The configured [`SolverConfig::conflict_budget`] was exhausted.
    ConflictBudget,
}

impl std::fmt::Display for UnknownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnknownCause::Interrupted => write!(f, "interrupted"),
            UnknownCause::ConflictBudget => write!(f, "conflict_budget"),
        }
    }
}

/// Aggregate statistics of a solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently kept.
    pub learnts: u64,
    /// Number of clauses learned over the whole run (the denominator of
    /// [`SolverStats::mean_learnt_lbd`]).
    pub learned: u64,
    /// Sum of learn-time LBD ("glue") over all learned clauses.
    pub lbd_sum: u64,
    /// Literals dropped from learnt clauses by conflict-clause minimization.
    pub minimized_lits: u64,
    /// Clause-arena garbage collections performed.
    pub gc_runs: u64,
    /// Current clause-arena footprint in bytes. A gauge, not a counter:
    /// summing reports (worker pools, batch jobs) yields the combined
    /// footprint of all live sessions.
    pub arena_bytes: u64,
}

impl SolverStats {
    /// Mean learn-time LBD over every clause learned so far (0.0 before the
    /// first conflict). Low means the solver is learning "glue" clauses
    /// that tightly connect decision levels — the health metric behind the
    /// tiered clause-database policy.
    pub fn mean_learnt_lbd(&self) -> f64 {
        if self.learned == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.learned as f64
        }
    }

    /// Lowers the stats into a [`veriqec_obs::MetricsSnapshot`] — the one
    /// table the batch reports' markdown and JSON solver columns are
    /// generated from. Counts merge additively across workers; `mean_lbd`
    /// is derived here so it never has to be re-threaded by hand.
    pub fn to_metrics(&self) -> veriqec_obs::MetricsSnapshot {
        let mut m = veriqec_obs::MetricsSnapshot::new();
        m.push_count("conflicts", self.conflicts);
        m.push_count("decisions", self.decisions);
        m.push_count("propagations", self.propagations);
        m.push_count("restarts", self.restarts);
        m.push_count("learnts", self.learnts);
        m.push_count("learned", self.learned);
        m.push_count("minimized_lits", self.minimized_lits);
        m.push_count("gc_runs", self.gc_runs);
        m.push_count("arena_bytes", self.arena_bytes);
        m.push_value("mean_lbd", self.mean_learnt_lbd());
        m
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learnts += rhs.learnts;
        self.learned += rhs.learned;
        self.lbd_sum += rhs.lbd_sum;
        self.minimized_lits += rhs.minimized_lits;
        self.gc_runs += rhs.gc_runs;
        self.arena_bytes += rhs.arena_bytes;
    }
}

impl std::iter::Sum for SolverStats {
    fn sum<I: Iterator<Item = SolverStats>>(iter: I) -> SolverStats {
        let mut total = SolverStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use veriqec_sat::{SatResult, Solver, Var};
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(&[]), SatResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// s.add_clause([!b]);
/// assert_eq!(s.solve(&[]), SatResult::Unsat);
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    config: SolverConfig,
    arena: ClauseArena,
    /// Live original (non-learnt) clauses in the arena.
    num_originals: usize,
    /// Live learnt clauses in the arena.
    num_learnts: usize,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    stats: SolverStats,
    model: Vec<LBool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Reusable buffer holding the clause under construction during
    /// conflict analysis; reused across conflicts so analysis allocates
    /// nothing in steady state.
    learnt_buf: Vec<Lit>,
    /// Worklist of the recursive redundancy walk ([`Solver::lit_redundant`]).
    min_stack: Vec<Lit>,
    /// Every literal whose variable was marked `seen` during minimization,
    /// so the marks can be undone in O(marks) at the end of analysis.
    to_clear: Vec<Lit>,
    /// Per-decision-level stamps backing the O(clause) LBD computation
    /// (no clearing pass between conflicts).
    level_stamp: Vec<u64>,
    lbd_stamp: u64,
    /// Cooperative cancellation: when set, [`Solver::solve`] aborts at the
    /// next conflict/decision boundary with [`SatResult::Unknown`].
    stop: Option<Arc<AtomicBool>>,
    /// Why the last `solve` returned [`SatResult::Unknown`] (see
    /// [`Solver::unknown_cause`]).
    unknown_cause: Option<UnknownCause>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            arena: ClauseArena::default(),
            num_originals: 0,
            num_learnts: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            stats: SolverStats::default(),
            model: Vec::new(),
            seen: Vec::new(),
            learnt_buf: Vec::new(),
            min_stack: Vec::new(),
            to_clear: Vec::new(),
            level_stamp: vec![0],
            lbd_stamp: 0,
            stop: None,
            unknown_cause: None,
        }
    }

    /// Installs a cooperative stop flag, shared with other solvers or a
    /// driving thread. The main CDCL loop polls it between propagations —
    /// i.e. at every conflict/decision boundary — so a solver stuck deep in
    /// a long subtask aborts promptly (returning [`SatResult::Unknown`])
    /// instead of only between subtasks. The flag is not cleared by the
    /// solver; the owner decides when a stop is rescinded.
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.stop = Some(flag);
    }

    /// True when an installed stop flag is currently raised.
    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Why the most recent [`Solver::solve`] returned
    /// [`SatResult::Unknown`], or `None` if it returned Sat/Unsat (or was
    /// never called). Reset at the start of every solve.
    pub fn unknown_cause(&self) -> Option<UnknownCause> {
        self.unknown_cause
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.level_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live (non-deleted) clauses, including learnt ones. O(1):
    /// maintained as counters by clause attach/detach.
    pub fn num_clauses(&self) -> usize {
        self.num_originals + self.num_learnts
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Exports the solver's clause database as a model-equivalent CNF over
    /// the same variable set — the bridge to the decision-diagram counting
    /// backend (`veriqec_dd`) and to DIMACS debugging artifacts.
    ///
    /// The solver simplifies clauses as they arrive (dropping satisfied
    /// clauses, stripping root-false literals, enqueuing units straight onto
    /// the trail), so the export reconstructs an equivalent formula: every
    /// root-level trail literal as a unit clause plus every live original
    /// (non-learnt) clause. Each simplification is justified by a root-level
    /// implication, and the implied units are included, so the satisfying
    /// assignments — not just satisfiability — are preserved exactly.
    /// Learnt clauses are implied and therefore omitted. An unsatisfiable
    /// root state exports as the empty clause.
    pub fn export_cnf(&self) -> crate::Cnf {
        let _span = veriqec_obs::span("sat", "export_cnf");
        let mut clauses = Vec::new();
        if !self.ok {
            clauses.push(Vec::new());
        } else {
            let level0 = self.trail_lim.first().copied().unwrap_or(self.trail.len());
            for &l in &self.trail[..level0] {
                clauses.push(vec![l]);
            }
            for cref in self.arena.refs() {
                if !self.arena.is_learnt(cref) {
                    clauses.push(self.arena.lits_vec(cref));
                }
            }
        }
        crate::Cnf {
            num_vars: self.num_vars(),
            clauses,
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding the empty clause, or a root-level conflict).
    ///
    /// Tautologies are dropped and duplicate literals merged.
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions a variable that was never allocated.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at the root level"
        );
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l:?}");
        }
        lits.sort();
        lits.dedup();
        // Drop tautologies; filter out root-false literals; detect satisfied clauses.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // contains l and ~l: tautology
            }
            i += 1;
        }
        lits.retain(|&l| self.value(l) != LBool::False);
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(&lits, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        if learnt {
            self.arena.set_lbd(cref, lbd);
            self.num_learnts += 1;
            self.stats.learnts += 1;
        } else {
            self.num_originals += 1;
        }
        let tag = if lits.len() == 2 { BINARY_TAG } else { 0 };
        self.watches[(!lits[0]).index()].push(Watcher {
            cref: ClauseRef(cref.0 | tag),
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            cref: ClauseRef(cref.0 | tag),
            blocker: lits[0],
        });
        self.stats.arena_bytes = self.arena.bytes() as u64;
        cref
    }

    /// Current truth value of a literal.
    fn value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        if self.config.use_phase_saving {
            self.polarity[v.index()] = l.is_positive();
        }
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Detach the watch list while scanning it: saves re-indexing
            // `watches[p]` on every iteration. Relocated watches always go
            // to *other* lists — the new watch `lk` is non-false, so `!lk`
            // can never be the just-falsified `p`.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                let blocker = w.blocker;
                let bv = self.value(blocker);
                if bv == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause();
                if w.is_binary() {
                    // Binary clause: the blocker is the only other literal,
                    // so propagate without loading the clause at all. The
                    // reason may be left with the implied literal in slot 1
                    // — consumers normalize via `normalized_reason`.
                    if bv == LBool::False {
                        self.qhead = self.trail.len();
                        self.watches[p.index()] = ws;
                        return Some(cref);
                    }
                    self.unchecked_enqueue(blocker, Some(cref));
                    i += 1;
                    continue;
                }
                // One arena access decodes the clause length and both
                // watched literals; slot 1 is then normalized to hold the
                // false literal.
                let (len, w0, w1) = {
                    let words = self.arena.lit_words(cref);
                    (words.len(), words[0], words[1])
                };
                let first = if w0 == false_lit.index() as u32 {
                    self.arena.swap_lits(cref, 0, 1);
                    Lit::from_index(w1 as usize)
                } else {
                    debug_assert_eq!(w1, false_lit.index() as u32);
                    Lit::from_index(w0 as usize)
                };
                if first != blocker && self.value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                debug_assert!(len > 2, "binary clauses take the tagged fast path");
                // Look for a new literal to watch.
                let mut new_watch = None;
                for (k, &lw) in self.arena.lit_words(cref)[2..].iter().enumerate() {
                    let lk = Lit::from_index(lw as usize);
                    if self.value(lk) != LBool::False {
                        new_watch = Some((k + 2, lk));
                        break;
                    }
                }
                if let Some((k, lk)) = new_watch {
                    self.arena.swap_lits(cref, 1, k);
                    ws.swap_remove(i);
                    self.watches[(!lk).index()].push(Watcher {
                        cref: w.cref,
                        blocker: first,
                    });
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    self.qhead = self.trail.len();
                    self.watches[p.index()] = ws;
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let a = self.arena.activity(cref) + self.cla_inc as f32;
        self.arena.set_activity(cref, a);
        if a > 1e20 {
            self.arena.rescale_activities(1e-20);
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Leaves the learnt clause in
    /// `self.learnt_buf` (asserting literal first) and returns the backtrack
    /// level and the clause's learn-time LBD. Allocation-free in steady
    /// state: resolution reads antecedents straight out of the arena and
    /// every scratch buffer is reused across conflicts.
    fn analyze(&mut self, conflict: ClauseRef) -> (u32, u32) {
        self.learnt_buf.clear();
        self.learnt_buf.push(Lit::from_index(0)); // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let dl = self.decision_level();

        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            let len = self.arena.len(cref);
            for k in start..len {
                let q = self.arena.lit(cref, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= dl {
                        counter += 1;
                    } else {
                        self.learnt_buf.push(q);
                    }
                }
            }
            // Select next literal from the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                self.learnt_buf[0] = !lit;
                break;
            }
            cref = self.normalized_reason(lit.var());
        }

        // Conflict-clause minimization: drop tail literals implied by the
        // rest of the clause. `to_clear` records every literal whose
        // variable is marked `seen` — the tail itself plus anything the
        // recursive probes mark — so all marks can be undone afterwards.
        self.to_clear.clear();
        self.to_clear.extend_from_slice(&self.learnt_buf[1..]);
        let mut abstract_levels = 0u32;
        for i in 1..self.learnt_buf.len() {
            abstract_levels |= 1 << (self.level[self.learnt_buf[i].var().index()] & 31);
        }
        let before = self.learnt_buf.len();
        let mut j = 1;
        for i in 1..self.learnt_buf.len() {
            let l = self.learnt_buf[i];
            let redundant = self.reason[l.var().index()].is_some()
                && if self.config.use_recursive_minimization {
                    self.lit_redundant(l, abstract_levels)
                } else {
                    self.one_step_redundant(l)
                };
            if !redundant {
                self.learnt_buf[j] = l;
                j += 1;
            }
        }
        self.learnt_buf.truncate(j);
        self.stats.minimized_lits += (before - j) as u64;

        // Find backtrack level: the second-highest level in the clause.
        let bt_level = if self.learnt_buf.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..self.learnt_buf.len() {
                if self.level[self.learnt_buf[i].var().index()]
                    > self.level[self.learnt_buf[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            self.learnt_buf.swap(1, max_i);
            self.level[self.learnt_buf[1].var().index()]
        };

        // LBD must be read off before backtracking invalidates the levels.
        let lbd = self.current_lbd();

        self.seen[self.learnt_buf[0].var().index()] = false;
        for i in 0..self.to_clear.len() {
            let v = self.to_clear[i].var();
            self.seen[v.index()] = false;
        }
        (bt_level, lbd)
    }

    /// Number of distinct decision levels among the literals of
    /// `learnt_buf` — the clause's LBD ("glue"). Uses a stamped per-level
    /// scratch array: O(clause length), no clearing pass.
    fn current_lbd(&mut self) -> u32 {
        self.lbd_stamp += 1;
        let mut lbd = 0;
        for i in 0..self.learnt_buf.len() {
            let lvl = self.level[self.learnt_buf[i].var().index()] as usize;
            if self.level_stamp[lvl] != self.lbd_stamp {
                self.level_stamp[lvl] = self.lbd_stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// The reason clause of `v`, normalized so the implied literal is in
    /// slot 0. The propagation paths for wide clauses establish that
    /// invariant eagerly; the binary fast path skips the clause entirely
    /// and may leave the implied literal in slot 1, so consumers that skip
    /// slot 0 (resolution, redundancy walks, the locked check) fetch
    /// reasons through here.
    fn normalized_reason(&mut self, v: Var) -> ClauseRef {
        let cref = self.reason[v.index()].expect("non-decision must have a reason");
        if self.arena.lit(cref, 0).var() != v {
            debug_assert_eq!(self.arena.len(cref), 2);
            debug_assert_eq!(self.arena.lit(cref, 1).var(), v);
            self.arena.swap_lits(cref, 0, 1);
        }
        cref
    }

    /// One-step redundancy: a literal is redundant if its reason clause
    /// consists only of literals already seen (or fixed at the root).
    fn one_step_redundant(&mut self, l: Lit) -> bool {
        if self.reason[l.var().index()].is_none() {
            return false;
        }
        let r = self.normalized_reason(l.var());
        self.arena.lit_words(r)[1..].iter().all(|&w| {
            let q = Lit::from_index(w as usize);
            self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    /// Full recursive redundancy test (MiniSat's `litRedundant`): `l` is
    /// redundant iff every path through its implication ancestry terminates
    /// in literals already in the learnt clause or fixed at the root.
    /// `abstract_levels` is a 32-bit Bloom filter of the clause's decision
    /// levels — an antecedent on a level outside the filter can never be
    /// subsumed, which prunes the walk without touching its ancestry.
    /// Variables proven redundant stay marked in `seen` so later probes
    /// reuse the result; on failure, the marks this probe added are rolled
    /// back (everything past `top` in `to_clear`).
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32) -> bool {
        self.min_stack.clear();
        self.min_stack.push(l);
        let top = self.to_clear.len();
        while let Some(p) = self.min_stack.pop() {
            let cref = self.normalized_reason(p.var());
            for &w in &self.arena.lit_words(cref)[1..] {
                let q = Lit::from_index(w as usize);
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()].is_some()
                    && (1u32 << (self.level[v.index()] & 31)) & abstract_levels != 0
                {
                    self.seen[v.index()] = true;
                    self.min_stack.push(q);
                    self.to_clear.push(q);
                } else {
                    for i in top..self.to_clear.len() {
                        let u = self.to_clear[i].var();
                        self.seen[u.index()] = false;
                    }
                    self.to_clear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        if self.config.use_vsids {
            while let Some(v) = self.heap.pop_max(&self.activity) {
                if self.assigns[v.index()] == LBool::Undef {
                    let pol = self.config.use_phase_saving && self.polarity[v.index()];
                    return Some(Lit::new(v, pol));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(|i| Var(i as u32))
                .find(|v| self.assigns[v.index()] == LBool::Undef)
                .map(|v| Lit::new(v, self.polarity[v.index()]))
        }
    }

    /// True when the clause is the reason of a literal currently on the
    /// trail. O(1): a reason clause always keeps its implied literal in
    /// slot 0 (propagation enqueues `lits[0]`, and the watch scan's swaps
    /// never displace a true `lits[0]`), so it suffices to check that
    /// variable's reason field.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.arena.lit(cref, 0);
        self.reason[l0.var().index()] == Some(cref)
    }

    /// Learnt-database reduction, glue-tiered: core clauses
    /// (LBD ≤ [`CORE_LBD`]), binary clauses and locked clauses are kept
    /// unconditionally; the rest are ranked worst-first by (high LBD, low
    /// activity) and the worse half tombstoned. The arena GC reclaims the
    /// tombstoned words once they cross the configured waste ratio.
    fn reduce_learnts(&mut self) {
        let mut cands: Vec<(u32, f32, ClauseRef)> = Vec::new();
        for cref in self.arena.refs() {
            if !self.arena.is_learnt(cref)
                || self.arena.len(cref) <= 2
                || self.arena.lbd(cref) <= CORE_LBD
                || self.is_locked(cref)
            {
                continue;
            }
            cands.push((self.arena.lbd(cref), self.arena.activity(cref), cref));
        }
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.total_cmp(&b.1)));
        for &(_, _, cref) in cands.iter().take(cands.len() / 2) {
            self.detach_clause(cref);
        }
        self.maybe_gc();
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = (self.arena.lit(cref, 0), self.arena.lit(cref, 1));
        self.watches[(!l0).index()].retain(|w| w.clause() != cref);
        self.watches[(!l1).index()].retain(|w| w.clause() != cref);
        if self.arena.is_learnt(cref) {
            self.num_learnts -= 1;
            self.stats.learnts = self.stats.learnts.saturating_sub(1);
        } else {
            self.num_originals -= 1;
        }
        self.arena.delete(cref);
    }

    /// Runs the arena garbage collector if the tombstoned fraction of the
    /// arena exceeds [`SolverConfig::gc_wasted_ratio`].
    fn maybe_gc(&mut self) {
        let total = self.arena.total_words();
        if total == 0 {
            return;
        }
        if (self.arena.wasted_words() as f64) >= self.config.gc_wasted_ratio * total as f64 {
            self.collect_garbage();
        }
    }

    /// Compacts the clause arena: drops every tombstoned clause and remaps
    /// the watcher lists and trail reasons onto the moved clauses. Runs
    /// automatically after database reductions once the wasted fraction
    /// crosses [`SolverConfig::gc_wasted_ratio`]; public so long-lived
    /// incremental sessions can force a compaction at a quiet point of
    /// their own choosing. A no-op when nothing is tombstoned.
    pub fn collect_garbage(&mut self) {
        if self.arena.wasted_words() == 0 {
            return;
        }
        let compacted = self.arena.begin_gc();
        for ws in &mut self.watches {
            for w in ws {
                let tag = w.cref.0 & BINARY_TAG;
                w.cref = ClauseRef(self.arena.forward(w.clause()).0 | tag);
            }
        }
        for cref in self.reason.iter_mut().flatten() {
            *cref = self.arena.forward(*cref);
        }
        self.arena.finish_gc(compacted);
        self.stats.gc_runs += 1;
        self.stats.arena_bytes = self.arena.bytes() as u64;
        veriqec_obs::instant(
            "sat",
            "clause_gc",
            &[("arena_bytes", self.stats.arena_bytes as f64)],
        );
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are temporary: the solver state is reusable afterwards for
    /// further `add_clause`/`solve` calls (incremental solving).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.unknown_cause = None;
        if !self.ok {
            return SatResult::Unsat;
        }
        let _span = veriqec_obs::span("sat", "solve");
        // Cache the observability gate once per solve: the conflict loop
        // below must not pay even an atomic load per iteration when both
        // tracing and the heartbeat are off.
        let track = veriqec_obs::active();
        let solve_t0 = track.then(std::time::Instant::now);
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut conflicts_until_restart = self.restart_interval(0);
        let mut restart_count = 0u64;
        let mut conflicts_this_solve = 0u64;
        let mut max_learnts = (self.num_clauses() / 3).max(self.config.reduce_base) as u64;

        // Every exit path backtracks to the root so the solver is
        // immediately reusable for add_clause/solve (incremental solving).
        loop {
            if self.stop_requested() {
                self.backtrack_to(0);
                self.unknown_cause = Some(UnknownCause::Interrupted);
                return SatResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_solve += 1;
                if track && conflicts_this_solve.is_multiple_of(CONFLICT_SAMPLE) {
                    self.sample_conflicts(conflicts_this_solve, solve_t0);
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if self.config.use_learning {
                    let (bt, lbd) = self.analyze(conflict);
                    self.backtrack_to(bt);
                    self.stats.learned += 1;
                    self.stats.lbd_sum += u64::from(lbd);
                    if self.learnt_buf.len() == 1 {
                        let l = self.learnt_buf[0];
                        self.unchecked_enqueue(l, None);
                    } else {
                        let buf = std::mem::take(&mut self.learnt_buf);
                        let cref = self.attach_clause(&buf, true, lbd);
                        self.unchecked_enqueue(buf[0], Some(cref));
                        self.learnt_buf = buf;
                    }
                    self.var_inc /= 0.95;
                    self.cla_inc /= 0.999;
                } else {
                    // Chronological backtracking: flip the last decision.
                    let lvl = self.decision_level() - 1;
                    let flip = !self.trail[self.trail_lim[lvl as usize]];
                    self.backtrack_to(lvl);
                    // Without learning we cannot record a reason; treat as decision-level
                    // assignment at the current level.
                    if self.value(flip) == LBool::Undef {
                        self.unchecked_enqueue(flip, None);
                    } else if self.decision_level() == 0 {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                }
                if let Some(budget) = self.config.conflict_budget {
                    if conflicts_this_solve >= budget {
                        self.backtrack_to(0);
                        self.unknown_cause = Some(UnknownCause::ConflictBudget);
                        veriqec_obs::instant(
                            "sat",
                            "conflict_budget_tripped",
                            &[("budget", budget as f64)],
                        );
                        return SatResult::Unknown;
                    }
                }
                if self.config.use_restarts && conflicts_this_solve >= conflicts_until_restart {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart =
                        conflicts_this_solve + self.restart_interval(restart_count);
                    self.backtrack_to(0);
                    veriqec_obs::instant(
                        "sat",
                        "restart",
                        &[("conflicts", conflicts_this_solve as f64)],
                    );
                }
                if self.config.use_learning && self.stats.learnts > max_learnts {
                    let before = self.stats.learnts;
                    self.reduce_learnts();
                    max_learnts += max_learnts / 2;
                    veriqec_obs::instant(
                        "sat",
                        "reduce_learnts",
                        &[
                            ("learnts_before", before as f64),
                            ("learnts_after", self.stats.learnts as f64),
                        ],
                    );
                }
            } else {
                // No conflict: extend with assumptions, then decide.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied; open a dummy level to keep indices aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.backtrack_to(0);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        self.model = self.assigns.clone();
                        self.backtrack_to(0);
                        return SatResult::Sat;
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    fn restart_interval(&self, i: u64) -> u64 {
        self.config.restart_base * luby(i + 1)
    }

    /// Observability sampling point of the CDCL loop, reached every
    /// [`CONFLICT_SAMPLE`] conflicts while tracing or the heartbeat is on:
    /// publishes progress to the global conflict counter and emits
    /// cumulative/rate counter samples for the trace.
    #[cold]
    fn sample_conflicts(&self, conflicts_this_solve: u64, t0: Option<std::time::Instant>) {
        veriqec_obs::heartbeat::CONFLICTS.add(CONFLICT_SAMPLE);
        if veriqec_obs::enabled() {
            veriqec_obs::counter("sat", "conflicts", self.stats.conflicts as f64);
            if let Some(t0) = t0 {
                let secs = t0.elapsed().as_secs_f64();
                if secs > 0.0 {
                    veriqec_obs::counter(
                        "sat",
                        "conflicts_per_sec",
                        conflicts_this_solve as f64 / secs,
                    );
                }
            }
        }
    }

    /// Value of a literal in the last satisfying model.
    ///
    /// Returns `None` if no model is available or the variable was never
    /// assigned (free variables may legitimately be unassigned only when the
    /// formula did not constrain them; this solver assigns all variables).
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        match self.model.get(l.var().index())? {
            LBool::True => Some(l.is_positive()),
            LBool::False => Some(!l.is_positive()),
            LBool::Undef => None,
        }
    }

    /// The complete last model as booleans (unassigned variables read `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model
            .iter()
            .map(|&v| matches!(v, LBool::True))
            .collect()
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    loop {
        // Find smallest k with i <= 2^k - 1.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        // Recurse into the copy of the previous subsequence.
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, v: usize, pos: bool) -> Lit {
        while s.num_vars() <= v {
            s.new_var();
        }
        Lit::new(Var(v as u32), pos)
    }

    /// Pigeonhole principle PHP(p, h): each pigeon in some hole, no two
    /// pigeons share a hole. Unsatisfiable whenever `p > h`.
    fn add_php(s: &mut Solver, pigeons: usize, holes: usize) {
        let p = |s: &mut Solver, pigeon: usize, hole: usize| lit(s, pigeon * holes + hole, true);
        for pigeon in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|h| p(s, pigeon, h)).collect();
            s.add_clause(c);
        }
        for hole in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    let a = p(s, p1, hole);
                    let b = p(s, p2, hole);
                    s.add_clause([!a, !b]);
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause([a]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert!(!s.add_clause([!a]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause([a, !a]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let n = 30;
        for i in 0..n - 1 {
            let x = lit(&mut s, i, true);
            let y = lit(&mut s, i + 1, true);
            s.add_clause([!x, y]); // x_i -> x_{i+1}
        }
        let first = lit(&mut s, 0, true);
        s.add_clause([first]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for i in 0..n {
            let l = lit(&mut s, i, true);
            assert_eq!(s.model_value(l), Some(true));
        }
    }

    #[test]
    fn xor_chain_parity_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let x1 = lit(&mut s, 0, true);
        let x2 = lit(&mut s, 1, true);
        let x3 = lit(&mut s, 2, true);
        for (a, b) in [(x1, x2), (x2, x3), (x1, x3)] {
            s.add_clause([a, b]);
            s.add_clause([!a, !b]);
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let mut s = Solver::new();
        add_php(&mut s, 4, 3);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn raised_stop_flag_aborts_with_unknown() {
        // PHP(6,5) is hard enough that the loop runs many iterations; with
        // the flag pre-raised the solver must bail out immediately.
        let mut s = Solver::new();
        add_php(&mut s, 6, 5);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_stop_flag(flag.clone());
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        // Lowering the flag makes the same solver usable again.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solver_stats_aggregate() {
        let a = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnts: 5,
            learned: 6,
            lbd_sum: 12,
            minimized_lits: 7,
            gc_runs: 1,
            arena_bytes: 256,
        };
        let total: SolverStats = [a, a].into_iter().sum();
        assert_eq!(total.conflicts, 2);
        assert_eq!(total.propagations, 6);
        assert_eq!(total.learnts, 10);
        assert_eq!(total.minimized_lits, 14);
        assert_eq!(total.gc_runs, 2);
        assert_eq!(total.arena_bytes, 512);
        assert!((a.mean_learnt_lbd() - 2.0).abs() < 1e-12);
        assert_eq!(SolverStats::default().mean_learnt_lbd(), 0.0);
    }

    #[test]
    fn learn_time_stats_populated() {
        let mut s = Solver::new();
        add_php(&mut s, 5, 4);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let st = s.stats();
        assert!(st.learned > 0, "PHP(5,4) must learn clauses");
        assert!(st.lbd_sum >= st.learned, "every learnt clause has LBD >= 1");
        assert!(st.mean_learnt_lbd() >= 1.0);
        assert!(st.arena_bytes > 0);
    }

    #[test]
    fn num_clauses_is_maintained_incrementally() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        let c = lit(&mut s, 2, true);
        assert_eq!(s.num_clauses(), 0);
        s.add_clause([a, b]);
        s.add_clause([!a, c]);
        assert_eq!(s.num_clauses(), 2);
        // Units go straight onto the trail, tautologies are dropped, and
        // satisfied clauses are never stored: the count must not change.
        s.add_clause([b, !b]);
        s.add_clause([c]);
        s.add_clause([c, a]);
        assert_eq!(s.num_clauses(), 2);
    }

    #[test]
    fn gc_bounds_arena_memory() {
        // The same hard instance solved twice: with the GC at its default
        // trigger ratio and with the GC disabled. Both solvers search
        // identically (compaction only renames clause references), but only
        // the collected arena stays bounded — without GC the tombstones of
        // every database reduction accumulate forever.
        let run = |gc_wasted_ratio: f64| {
            let mut s = Solver::with_config(SolverConfig {
                reduce_base: 20,
                gc_wasted_ratio,
                ..SolverConfig::default()
            });
            add_php(&mut s, 7, 6);
            assert_eq!(s.solve(&[]), SatResult::Unsat);
            s.stats()
        };
        let gc = run(0.25);
        let no_gc = run(2.0);
        assert_eq!(
            gc.conflicts, no_gc.conflicts,
            "GC must not perturb the search"
        );
        assert!(gc.gc_runs > 0, "the reduced database must trigger GCs");
        assert_eq!(no_gc.gc_runs, 0);
        assert!(
            gc.arena_bytes < no_gc.arena_bytes,
            "collected arena ({} B) must stay below the monotonically \
             growing uncollected one ({} B)",
            gc.arena_bytes,
            no_gc.arena_bytes
        );
    }

    #[test]
    fn explicit_gc_compacts_and_preserves_state() {
        // Force learnt-clause deletions with a tiny reduction cap, compact
        // explicitly, and check the solver still answers afterwards.
        let mut s = Solver::with_config(SolverConfig {
            reduce_base: 20,
            gc_wasted_ratio: 2.0, // no automatic GC; collect_garbage() only
            ..SolverConfig::default()
        });
        add_php(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let before = s.stats().arena_bytes;
        assert_eq!(s.stats().gc_runs, 0);
        s.collect_garbage();
        assert_eq!(s.stats().gc_runs, 1, "reductions left garbage to collect");
        assert!(
            s.stats().arena_bytes < before,
            "compaction must shrink the arena"
        );
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!a, !b]), SatResult::Unsat);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn all_configs_agree_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..60 {
            let n = 8;
            let clauses: Vec<Vec<(usize, bool)>> = (0..24)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute-force reference.
            let brute_sat = (0..1u32 << n).any(|bits| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
            });
            for (vsids, learning, restarts, recursive) in [
                (true, true, true, true),
                (true, true, true, false),
                (false, true, false, true),
                (false, true, false, false),
                (true, false, false, true),
                (false, false, false, false),
            ] {
                let mut s = Solver::with_config(SolverConfig {
                    use_vsids: vsids,
                    use_learning: learning,
                    use_restarts: restarts,
                    use_recursive_minimization: recursive,
                    ..SolverConfig::default()
                });
                for _ in 0..n {
                    s.new_var();
                }
                for c in &clauses {
                    let lits: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit::new(Var(v as u32), pos))
                        .collect();
                    s.add_clause(lits);
                }
                let got = s.solve(&[]);
                let expect = if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                };
                assert_eq!(
                    got, expect,
                    "round {round} config {vsids}/{learning}/{restarts}/{recursive}"
                );
                if got == SatResult::Sat {
                    // Verify the model actually satisfies the clauses.
                    let model = s.model();
                    for c in &clauses {
                        assert!(c.iter().any(|&(v, pos)| model[v] == pos));
                    }
                }
            }
        }
    }
}
