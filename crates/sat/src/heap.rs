//! Indexed max-heap over variable activities (the VSIDS order).

use crate::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting `decrease/increase key` via stored positions.
#[derive(Clone, Debug, Default)]
pub struct ActivityHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes room for variables up to `n - 1`.
    pub fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// Number of queued variables.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when `v` is currently queued.
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).copied().unwrap_or(ABSENT) != ABSENT
    }

    /// Inserts `v` (no-op if present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Pops the variable with the highest activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[largest].index()] {
                largest = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[largest].index()] {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(Var(v), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&act))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(Var(v), &act);
        }
        act[0] = 10.0;
        h.bumped(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0; 3];
        let mut h = ActivityHeap::new();
        h.insert(Var(1), &act);
        h.insert(Var(1), &act);
        assert_eq!(h.len(), 1);
    }
}
