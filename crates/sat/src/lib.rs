//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the decision-procedure substrate of the Veri-QEC
//! reproduction. The paper discharges its verification conditions with Z3 and
//! CVC5; after the paper's own reduction (§5.1) those conditions are
//! propositional — GF(2) phase equations plus cardinality constraints — so a
//! CDCL solver built from scratch suffices and doubles as a required
//! substrate implementation (see `DESIGN.md`).
//!
//! Features: two-watched-literal propagation, first-UIP clause learning with
//! clause minimization, VSIDS branching with phase saving, Luby restarts,
//! activity-based learned-clause deletion, incremental solving under
//! assumptions, and per-feature switches for ablation experiments.
//!
//! # Examples
//!
//! ```
//! use veriqec_sat::{SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y)  is unsatisfiable.
//! s.add_clause([x.positive(), y.positive()]);
//! s.add_clause([x.negative(), y.positive()]);
//! s.add_clause([y.negative()]);
//! assert_eq!(s.solve(&[]), SatResult::Unsat);
//! ```

mod dimacs;
mod heap;
mod lit;
mod solver;

pub use dimacs::{Cnf, ParseDimacsError};
pub use lit::{LBool, Lit, Var};
pub use solver::{SatResult, Solver, SolverConfig, SolverStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct RandomCnf {
        num_vars: usize,
        clauses: Vec<Vec<(usize, bool)>>,
    }

    fn arb_cnf() -> impl Strategy<Value = RandomCnf> {
        (2usize..9).prop_flat_map(|num_vars| {
            proptest::collection::vec(
                proptest::collection::vec((0..num_vars, any::<bool>()), 1..4),
                1..30,
            )
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
        })
    }

    fn brute_force(cnf: &RandomCnf) -> bool {
        (0u32..1 << cnf.num_vars).any(|bits| {
            cnf.clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn agrees_with_brute_force(cnf in arb_cnf()) {
            let mut s = Solver::new();
            for _ in 0..cnf.num_vars {
                s.new_var();
            }
            for c in &cnf.clauses {
                s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var(v as u32), pos)));
            }
            let got = s.solve(&[]) == SatResult::Sat;
            prop_assert_eq!(got, brute_force(&cnf));
            if got {
                let model = s.model();
                for c in &cnf.clauses {
                    prop_assert!(c.iter().any(|&(v, pos)| model[v] == pos));
                }
            }
        }

        #[test]
        fn incremental_assumptions_match_refutation(cnf in arb_cnf(), flips in proptest::collection::vec(any::<bool>(), 4)) {
            // Solving with assumptions must match adding them as unit clauses.
            let build = |cnf: &RandomCnf| {
                let mut s = Solver::new();
                for _ in 0..cnf.num_vars { s.new_var(); }
                for c in &cnf.clauses {
                    s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var(v as u32), pos)));
                }
                s
            };
            let assumptions: Vec<Lit> = flips
                .iter()
                .enumerate()
                .take(cnf.num_vars)
                .map(|(i, &pos)| Lit::new(Var(i as u32), pos))
                .collect();
            let mut s1 = build(&cnf);
            let r1 = s1.solve(&assumptions);
            let mut s2 = build(&cnf);
            for &a in &assumptions {
                s2.add_clause([a]);
            }
            let r2 = s2.solve(&[]);
            prop_assert_eq!(r1, r2);
        }
    }
}
