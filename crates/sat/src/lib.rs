//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the decision-procedure substrate of the Veri-QEC
//! reproduction. The paper discharges its verification conditions with Z3 and
//! CVC5; after the paper's own reduction (§5.1) those conditions are
//! propositional — GF(2) phase equations plus cardinality constraints — so a
//! CDCL solver built from scratch suffices and doubles as a required
//! substrate implementation (see `DESIGN.md`).
//!
//! Features: two-watched-literal propagation over a flat clause arena with
//! compacting garbage collection, first-UIP clause learning with recursive
//! clause minimization, VSIDS branching with phase saving, Luby restarts,
//! glue-tiered (LBD) learned-clause deletion, incremental solving under
//! assumptions, and per-feature switches for ablation experiments.
//!
//! # Examples
//!
//! ```
//! use veriqec_sat::{SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y)  is unsatisfiable.
//! s.add_clause([x.positive(), y.positive()]);
//! s.add_clause([x.negative(), y.positive()]);
//! s.add_clause([y.negative()]);
//! assert_eq!(s.solve(&[]), SatResult::Unsat);
//! ```

mod arena;
mod dimacs;
mod heap;
mod lit;
mod solver;

pub use dimacs::{Cnf, ParseDimacsError};
pub use lit::{LBool, Lit, Var};
pub use solver::{SatResult, Solver, SolverConfig, SolverStats, UnknownCause};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct RandomCnf {
        num_vars: usize,
        clauses: Vec<Vec<(usize, bool)>>,
    }

    fn arb_cnf() -> impl Strategy<Value = RandomCnf> {
        (2usize..9).prop_flat_map(|num_vars| {
            proptest::collection::vec(
                proptest::collection::vec((0..num_vars, any::<bool>()), 1..4),
                1..30,
            )
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
        })
    }

    fn brute_force(cnf: &RandomCnf) -> bool {
        (0u32..1 << cnf.num_vars).any(|bits| {
            cnf.clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn agrees_with_brute_force(cnf in arb_cnf()) {
            let mut s = Solver::new();
            for _ in 0..cnf.num_vars {
                s.new_var();
            }
            for c in &cnf.clauses {
                s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var(v as u32), pos)));
            }
            let got = s.solve(&[]) == SatResult::Sat;
            prop_assert_eq!(got, brute_force(&cnf));
            if got {
                let model = s.model();
                for c in &cnf.clauses {
                    prop_assert!(c.iter().any(|&(v, pos)| model[v] == pos));
                }
            }
        }

        #[test]
        fn incremental_assumptions_match_refutation(cnf in arb_cnf(), flips in proptest::collection::vec(any::<bool>(), 4)) {
            // Solving with assumptions must match adding them as unit clauses.
            let build = |cnf: &RandomCnf| {
                let mut s = Solver::new();
                for _ in 0..cnf.num_vars { s.new_var(); }
                for c in &cnf.clauses {
                    s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var(v as u32), pos)));
                }
                s
            };
            let assumptions: Vec<Lit> = flips
                .iter()
                .enumerate()
                .take(cnf.num_vars)
                .map(|(i, &pos)| Lit::new(Var(i as u32), pos))
                .collect();
            let mut s1 = build(&cnf);
            let r1 = s1.solve(&assumptions);
            let mut s2 = build(&cnf);
            for &a in &assumptions {
                s2.add_clause([a]);
            }
            let r2 = s2.solve(&[]);
            prop_assert_eq!(r1, r2);
        }
    }

    /// Larger instances than [`arb_cnf`]: enough conflicts that aggressive
    /// reduction configs actually delete clauses and leave arena garbage.
    fn arb_hard_cnf() -> impl Strategy<Value = RandomCnf> {
        (8usize..13).prop_flat_map(|num_vars| {
            proptest::collection::vec(
                proptest::collection::vec((0..num_vars, any::<bool>()), 3),
                20..60,
            )
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
        })
    }

    fn build_with(cnf: &RandomCnf, config: SolverConfig) -> Solver {
        let mut s = Solver::with_config(config);
        for _ in 0..cnf.num_vars {
            s.new_var();
        }
        s
    }

    fn add_clauses(s: &mut Solver, clauses: &[Vec<(usize, bool)>]) {
        for c in clauses {
            s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var(v as u32), pos)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // Arena compaction must be invisible: a solver that reduces its
        // database aggressively and GCs at every opportunity (plus an
        // explicit mid-incremental `collect_garbage`) agrees verdict- and
        // model-exactly with a twin that never compacts, across an
        // assumption solve followed by adding more clauses and re-solving.
        #[test]
        fn gc_compaction_is_transparent(
            cnf in arb_hard_cnf(),
            flips in proptest::collection::vec(any::<bool>(), 4),
        ) {
            let reduce = SolverConfig { reduce_base: 1, ..SolverConfig::default() };
            let mut gc = build_with(&cnf, SolverConfig { gc_wasted_ratio: 0.0, ..reduce });
            let mut plain = build_with(&cnf, SolverConfig { gc_wasted_ratio: 2.0, ..reduce });

            let split = cnf.clauses.len() * 2 / 3;
            add_clauses(&mut gc, &cnf.clauses[..split]);
            add_clauses(&mut plain, &cnf.clauses[..split]);
            let assumptions: Vec<Lit> = flips
                .iter()
                .enumerate()
                .take(cnf.num_vars)
                .map(|(i, &pos)| Lit::new(Var(i as u32), pos))
                .collect();
            prop_assert_eq!(gc.solve(&assumptions), plain.solve(&assumptions));
            prop_assert_eq!(gc.model(), plain.model());

            gc.collect_garbage();

            add_clauses(&mut gc, &cnf.clauses[split..]);
            add_clauses(&mut plain, &cnf.clauses[split..]);
            let (rg, rp) = (gc.solve(&[]), plain.solve(&[]));
            prop_assert_eq!(rg.clone(), rp);
            prop_assert_eq!(gc.model(), plain.model());
            prop_assert_eq!(rg == SatResult::Sat, brute_force(&cnf));
        }

        // Recursive clause minimization is a strengthening only: it must
        // never change a verdict relative to the cheap one-step rule, and
        // both variants must produce genuine models.
        #[test]
        fn minimization_modes_agree(cnf in arb_hard_cnf()) {
            let mut recursive = build_with(&cnf, SolverConfig::default());
            let mut one_step = build_with(
                &cnf,
                SolverConfig { use_recursive_minimization: false, ..SolverConfig::default() },
            );
            add_clauses(&mut recursive, &cnf.clauses);
            add_clauses(&mut one_step, &cnf.clauses);
            let (rr, ro) = (recursive.solve(&[]), one_step.solve(&[]));
            prop_assert_eq!(rr.clone(), ro);
            prop_assert_eq!(rr == SatResult::Sat, brute_force(&cnf));
            if rr == SatResult::Sat {
                for model in [recursive.model(), one_step.model()] {
                    for c in &cnf.clauses {
                        prop_assert!(c.iter().any(|&(v, pos)| model[v] == pos));
                    }
                }
            }
        }
    }
}
