//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Index for dense per-variable arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable with a polarity, encoded as `2*var + sign`.
///
/// # Examples
///
/// ```
/// use veriqec_sat::{Lit, Var};
/// let l = Var(3).positive();
/// assert_eq!(l.var(), Var(3));
/// assert!(l.is_positive());
/// assert_eq!(!l, Var(3).negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and a polarity.
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True for positive literals.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index (`2*var + sign`) for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs from a dense index.
    pub fn from_index(i: usize) -> Self {
        Lit(i as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_positive() { "" } else { "~" },
            self.0 >> 1
        )
    }
}

/// Ternary truth value used for partial assignments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    Undef,
}

impl LBool {
    /// Converts a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Logical negation; `Undef` is fixed.
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        for v in 0..10u32 {
            for pos in [true, false] {
                let l = Lit::new(Var(v), pos);
                assert_eq!(l.var(), Var(v));
                assert_eq!(l.is_positive(), pos);
                assert_eq!(Lit::from_index(l.index()), l);
                assert_eq!((!l).var(), Var(v));
                assert_eq!((!l).is_positive(), !pos);
                assert_eq!(!!l, l);
            }
        }
    }
}
