//! The QEC normal form: `⋁_{s} ( guards(s) ∧ ⋀_i (−1)^{φ_i(s,e,c)} P_i )`.
//!
//! This is the closed form in which the weakest-precondition engine carries
//! QEC assertions (Eqn. 8 of the paper): a big quantum disjunction over
//! syndrome variables of a conjunction of symbolic Pauli atoms, together with
//! classical side conditions. Keeping assertions in this form is what makes
//! the pipeline polynomial until the final solver call.

use crate::Assertion;
use veriqec_cexpr::{Affine, BExp, VarId};
use veriqec_pauli::ExtPauli;

/// A QEC assertion in normal form.
///
/// Semantics: `⋁_{assignments of or_vars} ( ⋀ guards = 0 ∧ ⋀ conjuncts ∧ ⋀ classical )`,
/// where the disjunction is the *quantum* join over branches.
#[derive(Clone, Debug)]
pub struct QecAssertion {
    /// Number of physical qubits.
    pub num_qubits: usize,
    /// The ⋁-bound variables (syndrome outcomes), in binding order.
    pub or_vars: Vec<VarId>,
    /// Branch-guard equations: each affine form must equal 0 for the branch
    /// to be nonempty (arise from merging duplicate Pauli conjuncts via
    /// `P ∧ −P ≡ ⊥`, Prop. A.3).
    pub guards: Vec<Affine>,
    /// The Pauli conjuncts (single-term for Clifford-only flows; sums appear
    /// under non-Pauli errors).
    pub conjuncts: Vec<ExtPauli>,
    /// Classical side conditions (e.g. error-weight bounds).
    pub classical: Vec<BExp>,
}

impl QecAssertion {
    /// A normal form with the given conjuncts and no branching.
    pub fn from_conjuncts(num_qubits: usize, conjuncts: Vec<ExtPauli>) -> Self {
        QecAssertion {
            num_qubits,
            or_vars: Vec::new(),
            guards: Vec::new(),
            conjuncts,
            classical: Vec::new(),
        }
    }

    /// Adds a classical side condition.
    pub fn push_classical(&mut self, b: BExp) {
        self.classical.push(b);
    }

    /// Expands into a generic [`Assertion`] by enumerating the or-variables.
    ///
    /// Exponential in `or_vars.len()` — validation use only.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 16 or-variables.
    pub fn to_assertion(&self) -> Assertion {
        let k = self.or_vars.len();
        assert!(k <= 16, "or-variable expansion too large");
        let mut branches = Vec::new();
        for bits in 0u32..1 << k {
            let mut guards = self.guards.clone();
            let mut conjuncts = self.conjuncts.clone();
            for (i, &v) in self.or_vars.iter().enumerate() {
                let val = Affine::constant((bits >> i) & 1 == 1);
                for g in &mut guards {
                    *g = g.subst(v, &val);
                }
                for c in &mut conjuncts {
                    let terms: Vec<_> = c
                        .terms()
                        .iter()
                        .map(|t| {
                            veriqec_pauli::ExtTerm::new(
                                t.coeff(),
                                t.pauli().clone(),
                                t.phase().subst(v, &val),
                            )
                        })
                        .collect();
                    *c = ExtPauli::from_terms(terms);
                }
            }
            // Guard with constant value 1 kills the branch.
            if guards.iter().any(|g| g.is_one()) {
                continue;
            }
            let mut parts: Vec<Assertion> = Vec::new();
            for g in guards {
                if !g.is_zero() {
                    // Residual symbolic guard (over free vars): equality to 0.
                    parts.push(Assertion::boolean(BExp::not(g.to_bexp())));
                }
            }
            parts.extend(self.conjuncts_assertions(&conjuncts));
            branches.push(Assertion::conj(parts));
        }
        let body = Assertion::disj(branches);
        let classical = Assertion::conj(self.classical.iter().cloned().map(Assertion::boolean));
        if self.classical.is_empty() {
            body
        } else {
            Assertion::and(classical, body)
        }
    }

    fn conjuncts_assertions(&self, conjuncts: &[ExtPauli]) -> Vec<Assertion> {
        conjuncts
            .iter()
            .map(|c| Assertion::ext_pauli(c.clone()))
            .collect()
    }

    /// All classical variables mentioned (phases, guards, side conditions).
    pub fn classical_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for c in &self.conjuncts {
            for t in c.terms() {
                out.extend(t.phase().vars());
            }
        }
        for g in &self.guards {
            out.extend(g.vars());
        }
        for b in &self.classical {
            b.free_vars(&mut out);
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_cexpr::{CMem, Value, VarRole, VarTable};
    use veriqec_pauli::{PauliString, SymPauli};

    #[test]
    fn expansion_of_measurement_or() {
        // ⋁_s (−1)^s Z — the postcondition of measuring Z — denotes the full
        // space (either outcome is possible).
        let mut vt = VarTable::new();
        let s = vt.fresh("s", VarRole::Syndrome);
        let g = SymPauli::new(PauliString::from_letters("Z").unwrap(), Affine::var(s));
        let mut qa = QecAssertion::from_conjuncts(1, vec![ExtPauli::from_sym(g)]);
        qa.or_vars.push(s);
        let a = qa.to_assertion();
        let m = CMem::new();
        assert_eq!(a.denote(&m, 1).dim(), 2);
    }

    #[test]
    fn guards_kill_branches() {
        let mut vt = VarTable::new();
        let s = vt.fresh("s", VarRole::Syndrome);
        let g = SymPauli::plain(PauliString::from_letters("Z").unwrap());
        let mut qa = QecAssertion::from_conjuncts(1, vec![ExtPauli::from_sym(g)]);
        qa.or_vars.push(s);
        // guard: s = 0 — only the s=0 branch survives.
        qa.guards.push(Affine::var(s));
        let a = qa.to_assertion();
        let m = CMem::new();
        assert_eq!(a.denote(&m, 1).dim(), 1);
    }

    #[test]
    fn classical_side_conditions_gate_everything() {
        let mut vt = VarTable::new();
        let e = vt.fresh("e", VarRole::Error);
        let g = SymPauli::plain(PauliString::from_letters("Z").unwrap());
        let mut qa = QecAssertion::from_conjuncts(1, vec![ExtPauli::from_sym(g)]);
        qa.push_classical(BExp::not(BExp::var(e)));
        let a = qa.to_assertion();
        let mut m = CMem::new();
        m.set(e, Value::Bool(true));
        assert_eq!(a.denote(&m, 1).dim(), 0);
        m.set(e, Value::Bool(false));
        assert_eq!(a.denote(&m, 1).dim(), 1);
    }
}
