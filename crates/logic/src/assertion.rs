//! The assertion language `AExp` (Def. 3.2) and its subspace semantics.

use std::fmt;
use std::sync::Arc as Rc;

use veriqec_cexpr::{Affine, BExp, CMem, VarId};
use veriqec_pauli::{ExtPauli, SymPauli};
use veriqec_qsim::{DenseState, Subspace};

/// An assertion of the hybrid classical–quantum logic:
/// `A ::= b | P | ¬A | A∧A | A∨A | A⇒A` where `b` is a boolean expression,
/// `P` a Pauli expression, and the connectives are interpreted in
/// Birkhoff–von Neumann quantum logic (∨ = span of union, ⇒ = Sasaki).
#[derive(Clone, PartialEq)]
pub enum Assertion {
    /// Classical atom: embeds as the zero or full subspace.
    Bool(BExp),
    /// Pauli-expression atom: its `+1`-eigenspace.
    Pauli(ExtPauli),
    /// Orthocomplement.
    Not(Rc<Assertion>),
    /// Intersection of subspaces.
    And(Rc<Assertion>, Rc<Assertion>),
    /// Span of the union (quantum disjunction).
    Or(Rc<Assertion>, Rc<Assertion>),
    /// Sasaki implication `a ⇝ b = ¬a ∨ (a ∧ b)`.
    Implies(Rc<Assertion>, Rc<Assertion>),
}

impl Assertion {
    /// The always-true assertion.
    pub fn top() -> Self {
        Assertion::Bool(BExp::tt())
    }

    /// The always-false assertion.
    pub fn bottom() -> Self {
        Assertion::Bool(BExp::ff())
    }

    /// A symbolic-Pauli atom.
    pub fn pauli(p: SymPauli) -> Self {
        Assertion::Pauli(ExtPauli::from_sym(p))
    }

    /// A Pauli-expression atom.
    pub fn ext_pauli(p: ExtPauli) -> Self {
        Assertion::Pauli(p)
    }

    /// A classical atom.
    pub fn boolean(b: BExp) -> Self {
        Assertion::Bool(b)
    }

    /// Negation.
    ///
    /// An associated constructor (`Assertion::not(a)`), matching the other
    /// by-value combinators; `std::ops::Not` is intentionally unimplemented.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Assertion) -> Self {
        Assertion::Not(Rc::new(a))
    }

    /// Conjunction.
    pub fn and(a: Assertion, b: Assertion) -> Self {
        Assertion::And(Rc::new(a), Rc::new(b))
    }

    /// Quantum disjunction.
    pub fn or(a: Assertion, b: Assertion) -> Self {
        Assertion::Or(Rc::new(a), Rc::new(b))
    }

    /// Sasaki implication.
    pub fn implies(a: Assertion, b: Assertion) -> Self {
        Assertion::Implies(Rc::new(a), Rc::new(b))
    }

    /// Conjunction of a sequence (empty = top).
    pub fn conj<I: IntoIterator<Item = Assertion>>(items: I) -> Self {
        let mut it = items.into_iter();
        let Some(first) = it.next() else {
            return Assertion::top();
        };
        it.fold(first, Assertion::and)
    }

    /// Disjunction of a sequence (empty = bottom).
    pub fn disj<I: IntoIterator<Item = Assertion>>(items: I) -> Self {
        let mut it = items.into_iter();
        let Some(first) = it.next() else {
            return Assertion::bottom();
        };
        it.fold(first, Assertion::or)
    }

    /// The subspace denotation `⟦A⟧_m` (Def. 3.2's semantic map).
    ///
    /// `num_qubits` fixes the ambient Hilbert space; only feasible for small
    /// systems (this is the validation backend, not the scalable pipeline).
    pub fn denote(&self, m: &CMem, num_qubits: usize) -> Subspace {
        let dim = 1usize << num_qubits;
        match self {
            Assertion::Bool(b) => {
                if b.eval(m) {
                    Subspace::full(dim)
                } else {
                    Subspace::zero(dim)
                }
            }
            Assertion::Pauli(p) => {
                if p.is_zero() {
                    Subspace::zero(dim)
                } else {
                    Subspace::ext_pauli_plus_eigenspace(p, m)
                }
            }
            Assertion::Not(a) => a.denote(m, num_qubits).complement(),
            Assertion::And(a, b) => a.denote(m, num_qubits).meet(&b.denote(m, num_qubits)),
            Assertion::Or(a, b) => a.denote(m, num_qubits).join(&b.denote(m, num_qubits)),
            Assertion::Implies(a, b) => a
                .denote(m, num_qubits)
                .sasaki_implies(&b.denote(m, num_qubits)),
        }
    }

    /// Satisfaction `(m, ψ) ⊨ A` for a pure-state singleton (Def. 3.4).
    pub fn satisfied_by(&self, m: &CMem, state: &DenseState) -> bool {
        self.denote(m, state.num_qubits())
            .contains(state.amplitudes())
    }

    /// Substitutes classical variable `v` by a boolean expression in every
    /// classical atom and (if `e` is XOR-affine) in every Pauli phase.
    ///
    /// # Panics
    ///
    /// Panics when a Pauli phase mentions `v` but `e` is not representable as
    /// an XOR-affine form.
    pub fn subst_classical(&self, v: VarId, e: &BExp) -> Assertion {
        let affine = bexp_to_affine(e);
        self.map(&|a| match a {
            Assertion::Bool(b) => Some(Assertion::Bool(b.subst(v, e))),
            Assertion::Pauli(p) => {
                let terms: Vec<_> = p
                    .terms()
                    .iter()
                    .map(|t| {
                        if t.phase().contains(v) {
                            let aff = affine.clone().unwrap_or_else(|| {
                                panic!("non-affine substitution into a Pauli phase")
                            });
                            veriqec_pauli::ExtTerm::new(
                                t.coeff(),
                                t.pauli().clone(),
                                t.phase().subst(v, &aff),
                            )
                        } else {
                            t.clone()
                        }
                    })
                    .collect();
                Some(Assertion::Pauli(ExtPauli::from_terms(terms)))
            }
            _ => None,
        })
    }

    /// Applies `f` to atoms bottom-up; `None` keeps recursing structurally.
    pub fn map(&self, f: &dyn Fn(&Assertion) -> Option<Assertion>) -> Assertion {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            Assertion::Bool(_) | Assertion::Pauli(_) => self.clone(),
            Assertion::Not(a) => Assertion::not(a.map(f)),
            Assertion::And(a, b) => Assertion::and(a.map(f), b.map(f)),
            Assertion::Or(a, b) => Assertion::or(a.map(f), b.map(f)),
            Assertion::Implies(a, b) => Assertion::implies(a.map(f), b.map(f)),
        }
    }

    /// Transforms every Pauli atom (used by the unitary proof rules).
    pub fn map_pauli(&self, f: &dyn Fn(&ExtPauli) -> ExtPauli) -> Assertion {
        self.map(&|a| match a {
            Assertion::Pauli(p) => Some(Assertion::Pauli(f(p))),
            _ => None,
        })
    }

    /// Collects the classical variables appearing anywhere in the assertion.
    pub fn classical_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Assertion::Bool(b) => b.free_vars(out),
            Assertion::Pauli(p) => {
                for t in p.terms() {
                    out.extend(t.phase().vars());
                }
            }
            Assertion::Not(a) => a.collect_vars(out),
            Assertion::And(a, b) | Assertion::Or(a, b) | Assertion::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// Converts a boolean expression to an XOR-affine form when possible.
pub fn bexp_to_affine(e: &BExp) -> Option<Affine> {
    match e {
        BExp::Const(c) => Some(Affine::constant(*c)),
        BExp::Var(v) => Some(Affine::var(*v)),
        BExp::Not(a) => bexp_to_affine(a).map(|a| a ^ Affine::one()),
        BExp::Xor(a, b) => Some(bexp_to_affine(a)? ^ bexp_to_affine(b)?),
        _ => None,
    }
}

/// Entailment `A ⊨ B` checked semantically over all assignments of the given
/// classical variables (Def. 3.5), on a small quantum system.
pub fn entails(a: &Assertion, b: &Assertion, vars: &[VarId], num_qubits: usize) -> bool {
    let k = vars.len();
    assert!(k <= 16, "too many classical variables to enumerate");
    for bits in 0u32..1 << k {
        let mut m = CMem::new();
        for (i, &v) in vars.iter().enumerate() {
            m.set(v, veriqec_cexpr::Value::Bool((bits >> i) & 1 == 1));
        }
        if !a
            .denote(&m, num_qubits)
            .is_subspace_of(&b.denote(&m, num_qubits))
        {
            return false;
        }
    }
    true
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assertion::Bool(b) => write!(f, "{b}"),
            Assertion::Pauli(p) => write!(f, "{p}"),
            Assertion::Not(a) => write!(f, "¬({a})"),
            Assertion::And(a, b) => write!(f, "({a} ∧ {b})"),
            Assertion::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Assertion::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
        }
    }
}

impl fmt::Debug for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_pauli::PauliString;

    fn atom(s: &str) -> Assertion {
        Assertion::pauli(SymPauli::plain(PauliString::from_letters(s).unwrap()))
    }

    #[test]
    fn example_3_3_precondition_is_weakest() {
        // (X1 ∧ Z2) ∨ (X1 ∧ −Z2) |=| X1 under quantum ∨.
        let lhs = Assertion::or(
            Assertion::and(atom("XI"), atom("IZ")),
            Assertion::and(atom("XI"), atom("-IZ")),
        );
        let rhs = atom("XI");
        assert!(entails(&lhs, &rhs, &[], 2));
        assert!(entails(&rhs, &lhs, &[], 2));
    }

    #[test]
    fn classical_disjunction_would_be_too_weak() {
        // The union (not the span) of the two branches does not contain
        // |+⟩|ψ⟩ for general ψ — demonstrated by a state in X1 that is in
        // neither branch.
        let branch0 = Assertion::and(atom("XI"), atom("IZ"));
        let x1 = atom("XI");
        assert!(!entails(&x1, &branch0, &[], 2));
    }

    #[test]
    fn boolean_atoms_gate_subspaces() {
        let mut vt = veriqec_cexpr::VarTable::new();
        let b = vt.fresh("b", veriqec_cexpr::VarRole::Param);
        let a = Assertion::and(Assertion::boolean(BExp::var(b)), atom("Z"));
        let mut m = CMem::new();
        m.set(b, veriqec_cexpr::Value::Bool(false));
        assert_eq!(a.denote(&m, 1).dim(), 0);
        m.set(b, veriqec_cexpr::Value::Bool(true));
        assert_eq!(a.denote(&m, 1).dim(), 1);
    }

    #[test]
    fn sasaki_implication_bvn_requirement() {
        // A ⇒ B is the full space iff ⟦A⟧ ⊆ ⟦B⟧.
        let a = Assertion::and(atom("ZI"), atom("IZ"));
        let b = atom("ZI");
        let imp = Assertion::implies(a, b);
        let m = CMem::new();
        assert_eq!(imp.denote(&m, 2).dim(), 4);
    }

    #[test]
    fn subst_classical_hits_phases() {
        let mut vt = veriqec_cexpr::VarTable::new();
        let x = vt.fresh("x", veriqec_cexpr::VarRole::Correction);
        let g = SymPauli::new(PauliString::from_letters("ZZ").unwrap(), Affine::var(x));
        let a = Assertion::pauli(g);
        let a0 = a.subst_classical(x, &BExp::ff());
        let a1 = a.subst_classical(x, &BExp::tt());
        let m = CMem::new();
        assert!(!a0.denote(&m, 2).equals(&a1.denote(&m, 2)));
        // a0 is ZZ, a1 is −ZZ: orthogonal complements of each other's kernel.
        assert_eq!(a0.denote(&m, 2).meet(&a1.denote(&m, 2)).dim(), 0);
    }

    #[test]
    fn proof_system_laws_fig11_sample() {
        // Law 1: ¬¬A ⊢ A; law: A ∧ B ⊢ A; orthomodularity via Sasaki.
        let a = atom("XX");
        let b = atom("ZZ");
        let nn = Assertion::not(Assertion::not(a.clone()));
        assert!(entails(&nn, &a, &[], 2) && entails(&a, &nn, &[], 2));
        let ab = Assertion::and(a.clone(), b.clone());
        assert!(entails(&ab, &a, &[], 2));
        // Compatible import-export: Z0 and Z0Z1 commute; check
        // (A ∧ B ⊆ C) iff (A ⊆ B ⇒ C) for commuting A, B.
        let z0 = atom("ZI");
        let zz = atom("ZZ");
        let c = Assertion::and(z0.clone(), zz.clone());
        assert!(entails(&Assertion::and(z0.clone(), zz.clone()), &c, &[], 2));
        assert!(entails(&z0, &Assertion::implies(zz, c), &[], 2));
    }
}
