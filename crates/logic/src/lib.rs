//! The assertion logic for QEC programs (§3 of the paper).
//!
//! * [`Assertion`] — the hybrid classical–quantum assertion language
//!   `AExp` of Def. 3.2, with Birkhoff–von Neumann subspace semantics
//!   (∧ = intersection, ∨ = span of union, ⇒ = Sasaki implication) and an
//!   executable denotation on small systems through `veriqec_qsim`;
//! * [`QecAssertion`] — the scalable normal form
//!   `⋁_s ⋀_i (−1)^{φ_i(s,e,c)} P_i` (Eqn. 8) used by the
//!   weakest-precondition engine;
//! * [`entails`] — semantic entailment (Def. 3.5) by enumeration, the ground
//!   truth for testing the symbolic verification-condition reduction.
//!
//! # Examples
//!
//! ```
//! use veriqec_logic::{entails, Assertion};
//! use veriqec_pauli::{PauliString, SymPauli};
//!
//! let atom = |s: &str| Assertion::pauli(SymPauli::plain(
//!     PauliString::from_letters(s).unwrap()));
//! // Example 3.3: (X1 ∧ Z2) ∨ (X1 ∧ −Z2) is equivalent to X1 in quantum logic.
//! let lhs = Assertion::or(
//!     Assertion::and(atom("XI"), atom("IZ")),
//!     Assertion::and(atom("XI"), atom("-IZ")),
//! );
//! assert!(entails(&lhs, &atom("XI"), &[], 2));
//! assert!(entails(&atom("XI"), &lhs, &[], 2));
//! ```

mod assertion;
mod normal_form;
mod proof;

pub use assertion::{bexp_to_affine, entails, Assertion};
pub use normal_form::QecAssertion;
pub use proof::{Derivation, ProofError, Sequent};
