//! The Hilbert-style proof system for the assertion logic (Fig. 11 /
//! Appendix A.4), mechanized as checkable derivation trees.
//!
//! Each rule application is verified *structurally* (the conclusion must
//! have the right shape relative to the premises); the commutativity side
//! condition of rule 11 is checked semantically. A checked [`Derivation`]
//! therefore witnesses an entailment `Γ ⊢ A` that is sound for the subspace
//! semantics — the same guarantee the paper's Coq formalization gives for
//! its assertion-logic laws, here in executable form.

use std::fmt;

use veriqec_cexpr::{CMem, Value, VarId};

use crate::Assertion;

/// A sequent `Γ ⊢ A` of the assertion logic.
#[derive(Clone, Debug)]
pub struct Sequent {
    /// The antecedent Γ.
    pub gamma: Assertion,
    /// The consequent A.
    pub a: Assertion,
}

impl fmt::Display for Sequent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊢ {}", self.gamma, self.a)
    }
}

/// A derivation tree in the Fig. 11 proof system.
///
/// Numbering follows the figure: e.g. rule 1 is `¬¬A ⊢ A`, rule 5 is
/// ∧-introduction, rule 11 is the compatible import rule with the
/// commutation side condition.
#[derive(Clone, Debug)]
pub enum Derivation {
    /// Rule 1: `¬¬A ⊢ A`.
    DoubleNegation {
        /// The `A` in the conclusion.
        a: Assertion,
    },
    /// Rule 2: `A ⊢ A`.
    Identity {
        /// The assertion on both sides.
        a: Assertion,
    },
    /// Rule 3: `A ⊢ ⊤`.
    Top {
        /// The antecedent.
        a: Assertion,
    },
    /// Rule 4: `⊥ ⊢ A`.
    Bottom {
        /// The consequent.
        a: Assertion,
    },
    /// Rule 5: from `Γ ⊢ A` and `Γ ⊢ B` conclude `Γ ⊢ A ∧ B`.
    AndIntro(Box<Derivation>, Box<Derivation>),
    /// Rule 6: from `Γ ⊢ A₁ ∧ A₂` conclude `Γ ⊢ A_i` (`i` = 0 or 1).
    AndElim {
        /// The premise derivation.
        premise: Box<Derivation>,
        /// Which conjunct to keep (0 = left).
        index: usize,
    },
    /// Rule 7: from `A ⊢ B` conclude `Γ ∧ A ⊢ B`.
    Weaken {
        /// The premise derivation (`A ⊢ B`).
        premise: Box<Derivation>,
        /// The added antecedent Γ.
        gamma: Assertion,
    },
    /// Rule 8: from `Γ ⊢ A` and `Γ′ ⊢ A` conclude `Γ ∨ Γ′ ⊢ A`.
    OrElim(Box<Derivation>, Box<Derivation>),
    /// Rule 9: from `Γ ⊢ A_i` conclude `Γ ⊢ A₁ ∨ A₂`.
    OrIntro {
        /// The premise derivation.
        premise: Box<Derivation>,
        /// The other disjunct.
        other: Assertion,
        /// True when the premise proves the *left* disjunct.
        premise_is_left: bool,
    },
    /// Rule 10 (modus ponens): from `A ⊢ B ⇒ C` and `A ⊢ B` conclude `A ⊢ C`.
    ModusPonens(Box<Derivation>, Box<Derivation>),
    /// Rule 11: from `A ∧ B ⊢ C` and the side condition `A C B` (compatible
    /// subspaces) conclude `A ⊢ B ⇒ C`.
    ImpIntro {
        /// The premise derivation (`A ∧ B ⊢ C`).
        premise: Box<Derivation>,
    },
}

/// Error from [`Derivation::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofError {
    /// Which rule application failed and why.
    pub message: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid derivation: {}", self.message)
    }
}

impl std::error::Error for ProofError {}

fn same(a: &Assertion, b: &Assertion) -> bool {
    // Syntactic equality of assertion trees.
    a == b
}

impl Derivation {
    /// Checks the derivation and returns the concluded sequent.
    ///
    /// `vars`/`num_qubits` scope the semantic commutativity check of rule 11.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError`] naming the first ill-formed rule application.
    pub fn check(&self, vars: &[VarId], num_qubits: usize) -> Result<Sequent, ProofError> {
        match self {
            Derivation::DoubleNegation { a } => Ok(Sequent {
                gamma: Assertion::not(Assertion::not(a.clone())),
                a: a.clone(),
            }),
            Derivation::Identity { a } => Ok(Sequent {
                gamma: a.clone(),
                a: a.clone(),
            }),
            Derivation::Top { a } => Ok(Sequent {
                gamma: a.clone(),
                a: Assertion::top(),
            }),
            Derivation::Bottom { a } => Ok(Sequent {
                gamma: Assertion::bottom(),
                a: a.clone(),
            }),
            Derivation::AndIntro(l, r) => {
                let sl = l.check(vars, num_qubits)?;
                let sr = r.check(vars, num_qubits)?;
                if !same(&sl.gamma, &sr.gamma) {
                    return Err(ProofError {
                        message: "∧-intro premises have different antecedents".into(),
                    });
                }
                Ok(Sequent {
                    gamma: sl.gamma,
                    a: Assertion::and(sl.a, sr.a),
                })
            }
            Derivation::AndElim { premise, index } => {
                let s = premise.check(vars, num_qubits)?;
                let Assertion::And(l, r) = &s.a else {
                    return Err(ProofError {
                        message: "∧-elim premise is not a conjunction".into(),
                    });
                };
                let kept = if *index == 0 { l } else { r };
                Ok(Sequent {
                    gamma: s.gamma,
                    a: kept.as_ref().clone(),
                })
            }
            Derivation::Weaken { premise, gamma } => {
                let s = premise.check(vars, num_qubits)?;
                Ok(Sequent {
                    gamma: Assertion::and(gamma.clone(), s.gamma),
                    a: s.a,
                })
            }
            Derivation::OrElim(l, r) => {
                let sl = l.check(vars, num_qubits)?;
                let sr = r.check(vars, num_qubits)?;
                if !same(&sl.a, &sr.a) {
                    return Err(ProofError {
                        message: "∨-elim premises prove different consequents".into(),
                    });
                }
                Ok(Sequent {
                    gamma: Assertion::or(sl.gamma, sr.gamma),
                    a: sl.a,
                })
            }
            Derivation::OrIntro {
                premise,
                other,
                premise_is_left,
            } => {
                let s = premise.check(vars, num_qubits)?;
                let a = if *premise_is_left {
                    Assertion::or(s.a, other.clone())
                } else {
                    Assertion::or(other.clone(), s.a)
                };
                Ok(Sequent { gamma: s.gamma, a })
            }
            Derivation::ModusPonens(imp, arg) => {
                let si = imp.check(vars, num_qubits)?;
                let sa = arg.check(vars, num_qubits)?;
                if !same(&si.gamma, &sa.gamma) {
                    return Err(ProofError {
                        message: "modus ponens premises have different antecedents".into(),
                    });
                }
                let Assertion::Implies(b, c) = &si.a else {
                    return Err(ProofError {
                        message: "modus ponens major premise is not an implication".into(),
                    });
                };
                if !same(b, &sa.a) {
                    return Err(ProofError {
                        message: "modus ponens minor premise mismatch".into(),
                    });
                }
                Ok(Sequent {
                    gamma: si.gamma,
                    a: c.as_ref().clone(),
                })
            }
            Derivation::ImpIntro { premise } => {
                let s = premise.check(vars, num_qubits)?;
                let Assertion::And(a, b) = &s.gamma else {
                    return Err(ProofError {
                        message: "⇒-intro premise antecedent is not a conjunction".into(),
                    });
                };
                // Side condition: A C B, checked semantically over all
                // classical assignments.
                let k = vars.len();
                assert!(k <= 16, "too many classical variables");
                for bits in 0u32..1 << k {
                    let mut m = CMem::new();
                    for (i, &v) in vars.iter().enumerate() {
                        m.set(v, Value::Bool((bits >> i) & 1 == 1));
                    }
                    let sa = a.denote(&m, num_qubits);
                    let sb = b.denote(&m, num_qubits);
                    if !sa.commutes_with(&sb) {
                        return Err(ProofError {
                            message: "rule 11 side condition: antecedents do not commute".into(),
                        });
                    }
                }
                Ok(Sequent {
                    gamma: a.as_ref().clone(),
                    a: Assertion::implies(b.as_ref().clone(), s.a.clone()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entails;
    use veriqec_pauli::{PauliString, SymPauli};

    fn atom(s: &str) -> Assertion {
        Assertion::pauli(SymPauli::plain(PauliString::from_letters(s).unwrap()))
    }

    /// Every checked derivation must be semantically sound.
    fn assert_sound(d: &Derivation, num_qubits: usize) {
        let s = d.check(&[], num_qubits).expect("well-formed");
        assert!(
            entails(&s.gamma, &s.a, &[], num_qubits),
            "unsound sequent {s}"
        );
    }

    #[test]
    fn basic_rules_are_sound() {
        assert_sound(&Derivation::Identity { a: atom("XX") }, 2);
        assert_sound(&Derivation::DoubleNegation { a: atom("ZZ") }, 2);
        assert_sound(&Derivation::Top { a: atom("XI") }, 2);
        assert_sound(&Derivation::Bottom { a: atom("IZ") }, 2);
    }

    #[test]
    fn and_intro_elim_roundtrip() {
        // XX∧ZZ ⊢ XX∧ZZ, project left, re-pair with the right.
        let id = Derivation::Identity {
            a: Assertion::and(atom("XX"), atom("ZZ")),
        };
        let left = Derivation::AndElim {
            premise: Box::new(id.clone()),
            index: 0,
        };
        let right = Derivation::AndElim {
            premise: Box::new(id),
            index: 1,
        };
        let paired = Derivation::AndIntro(Box::new(left), Box::new(right));
        assert_sound(&paired, 2);
    }

    #[test]
    fn modus_ponens_with_sasaki() {
        // A = ZI ∧ ZZ; derive A ⊢ ZZ ⇒ (ZI ∧ ZZ) via rule 11, then apply it.
        // Premise of rule 11: (ZI ∧ ZZ) ⊢ ZI∧ZZ with antecedent shaped A∧B:
        let premise = Derivation::Identity {
            a: Assertion::and(atom("ZI"), atom("ZZ")),
        };
        let imp = Derivation::ImpIntro {
            premise: Box::new(premise),
        };
        let s = imp.check(&[], 2).expect("ZI and ZZ commute");
        // Conclusion: ZI ⊢ ZZ ⇒ (ZI ∧ ZZ).
        assert!(entails(&s.gamma, &s.a, &[], 2));
    }

    #[test]
    fn rule_11_side_condition_rejects_noncommuting() {
        let premise = Derivation::Identity {
            a: Assertion::and(atom("X"), atom("Z")),
        };
        let imp = Derivation::ImpIntro {
            premise: Box::new(premise),
        };
        let err = imp.check(&[], 1).unwrap_err();
        assert!(err.message.contains("commute"));
    }

    #[test]
    fn example_3_3_as_a_derivation() {
        // (X1∧Z2) ∨ (X1∧−Z2) ⊢ X1 via ∨-elim of two ∧-elims.
        let l = Derivation::AndElim {
            premise: Box::new(Derivation::Identity {
                a: Assertion::and(atom("XI"), atom("IZ")),
            }),
            index: 0,
        };
        let r = Derivation::AndElim {
            premise: Box::new(Derivation::Identity {
                a: Assertion::and(atom("XI"), atom("-IZ")),
            }),
            index: 0,
        };
        let d = Derivation::OrElim(Box::new(l), Box::new(r));
        assert_sound(&d, 2);
        let s = d.check(&[], 2).unwrap();
        // And the converse (X1 ⊢ the disjunction) holds semantically but is
        // NOT derivable from these propositional rules alone — it needs the
        // quantum-logic structure (Example 3.3's point).
        assert!(entails(&s.a, &s.gamma, &[], 2));
    }

    #[test]
    fn malformed_derivations_are_rejected() {
        let bad = Derivation::AndIntro(
            Box::new(Derivation::Identity { a: atom("XX") }),
            Box::new(Derivation::Identity { a: atom("ZZ") }),
        );
        assert!(bad.check(&[], 2).is_err());
        let bad2 = Derivation::AndElim {
            premise: Box::new(Derivation::Identity { a: atom("XX") }),
            index: 0,
        };
        assert!(bad2.check(&[], 2).is_err());
    }
}
