//! Decoders and decoder specifications for QEC verification.
//!
//! The paper treats the decoder as an uninterpreted function constrained by
//! the *minimum-weight decoder condition* `P_f` (§5.2): corrections must
//! reproduce the measured syndromes and weigh no more than the injected
//! errors. This crate provides:
//!
//! * [`LookupDecoder`] — an exact minimum-weight decoder built by
//!   breadth-first enumeration (used by simulation baselines and by the
//!   fixed-error/non-Pauli pipeline);
//! * [`MinWeightSpec`] — the `P_f` constraint emitter for the SMT layer;
//! * [`decode_call_oracle`] — adapts lookup decoders to program
//!   interpretation.
//!
//! # Examples
//!
//! ```
//! use veriqec_codes::steane;
//! use veriqec_decoder::LookupDecoder;
//! use veriqec_pauli::PauliString;
//!
//! let code = steane();
//! let dec = LookupDecoder::for_code(&code, 1);
//! let err = PauliString::single(7, 'X', 2);
//! let syndrome = code.group().syndrome_of(&err);
//! let corr = dec.decode(&syndrome).expect("single errors decodable");
//! // The correction cancels the error up to a stabilizer.
//! let residue = corr.mul(&err);
//! assert!(code.group().decompose(&residue).is_some());
//! ```

use std::collections::HashMap;

use veriqec_cexpr::{VarId, VarRole, VarTable};
use veriqec_codes::{enumerate_errors, StabilizerCode};
use veriqec_gf2::BitVec;
use veriqec_pauli::PauliString;
use veriqec_smt::SmtContext;

/// An exact minimum-weight decoder: maps syndromes to a minimum-weight
/// correction, built by enumerating all errors up to a weight budget.
#[derive(Clone, Debug)]
pub struct LookupDecoder {
    table: HashMap<BitVec, PauliString>,
    num_qubits: usize,
}

impl LookupDecoder {
    /// Builds the table for all errors of weight `<= max_weight`
    /// (breadth-first, so each syndrome keeps its minimum-weight correction).
    pub fn for_code(code: &StabilizerCode, max_weight: usize) -> Self {
        let n = code.n();
        let mut table = HashMap::new();
        table.insert(
            BitVec::zeros(code.generators().len()),
            PauliString::identity(n),
        );
        for w in 1..=max_weight {
            enumerate_errors(n, w, &mut |e| {
                let s = code.group().syndrome_of(e);
                table.entry(s).or_insert_with(|| e.clone());
            });
        }
        LookupDecoder {
            table,
            num_qubits: n,
        }
    }

    /// Decodes a syndrome; `None` when outside the covered radius.
    pub fn decode(&self, syndrome: &BitVec) -> Option<PauliString> {
        self.table.get(syndrome).cloned()
    }

    /// Number of distinct syndromes covered.
    pub fn coverage(&self) -> usize {
        self.table.len()
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }
}

/// A CSS-sector lookup decoder pair: `decode_x` consumes Z-check syndromes
/// and emits X-side corrections of X errors; `decode_z` the dual. Matches the
/// decoder calls `f_x`, `f_z` of the paper's Steane program (Table 1).
#[derive(Clone, Debug)]
pub struct CssLookupDecoder {
    /// Corrections for X errors (indexed by Z-check syndromes).
    pub x_corrections: HashMap<BitVec, BitVec>,
    /// Corrections for Z errors (indexed by X-check syndromes).
    pub z_corrections: HashMap<BitVec, BitVec>,
}

impl CssLookupDecoder {
    /// Builds both sector tables by enumerating single-sector errors up to
    /// `max_weight`.
    ///
    /// # Panics
    ///
    /// Panics when the code is not CSS.
    pub fn for_code(code: &StabilizerCode, max_weight: usize) -> Self {
        let hx = code.css_hx().expect("CSS code required");
        let hz = code.css_hz().expect("CSS code required");
        let n = code.n();
        let build = |checks: &veriqec_gf2::BitMatrix| {
            let mut table: HashMap<BitVec, BitVec> = HashMap::new();
            table.insert(BitVec::zeros(checks.num_rows()), BitVec::zeros(n));
            // BFS over supports by weight.
            let mut supports: Vec<BitVec> = vec![BitVec::zeros(n)];
            for _w in 1..=max_weight {
                let mut next = Vec::new();
                for s in &supports {
                    let start = s.iter_ones().last().map_or(0, |i| i + 1);
                    for q in start..n {
                        let mut e = s.clone();
                        e.set(q, true);
                        let syn = checks.mul_vec(&e);
                        table.entry(syn).or_insert_with(|| e.clone());
                        next.push(e);
                    }
                }
                supports = next;
            }
            table
        };
        CssLookupDecoder {
            // X errors are detected by Z checks (hz), corrected on the X side.
            x_corrections: build(&hz),
            z_corrections: build(&hx),
        }
    }
}

/// Adapts CSS lookup decoders to the interpreter's
/// `veriqec_prog::DecoderOracle` interface: decoder names
/// `decode_x` (inputs = Z-check syndromes, outputs = X corrections) and
/// `decode_z` (inputs = X-check syndromes, outputs = Z corrections).
pub fn decode_call_oracle(
    decoder: CssLookupDecoder,
    num_qubits: usize,
) -> impl Fn(&str, &[bool]) -> Vec<bool> {
    move |name: &str, inputs: &[bool]| -> Vec<bool> {
        let syndrome = BitVec::from_bools(inputs.iter().copied());
        let table = match name {
            "decode_x" => &decoder.x_corrections,
            "decode_z" => &decoder.z_corrections,
            other => panic!("unknown decoder `{other}`"),
        };
        let correction = table
            .get(&syndrome)
            .cloned()
            .unwrap_or_else(|| BitVec::zeros(num_qubits));
        correction.to_bools()
    }
}

/// The minimum-weight decoder specification `P_f` (§5.2): given syndrome,
/// correction and error variables, asserts into an [`SmtContext`]
///
/// 1. *syndrome consistency*: the correction reproduces each measured
///    syndrome, `r_i(c) = s_i`;
/// 2. *minimality*: `Σ c ≤ Σ e`.
///
/// This is the necessary condition of any minimum-weight decoder; the
/// verification condition quantifies over all decoders satisfying it.
#[derive(Clone, Debug)]
pub struct MinWeightSpec {
    /// Check supports: row `i` lists which correction bits flip syndrome `i`.
    pub checks: Vec<Vec<VarId>>,
    /// The syndrome variable of each check.
    pub syndromes: Vec<VarId>,
    /// Correction variables.
    pub corrections: Vec<VarId>,
    /// Error variables bounding the correction weight.
    pub errors: Vec<VarId>,
}

impl MinWeightSpec {
    /// Asserts the `P_f` constraints.
    pub fn assert_into(&self, ctx: &mut SmtContext) {
        for (support, &s) in self.checks.iter().zip(&self.syndromes) {
            let mut aff = veriqec_cexpr::Affine::var(s);
            for &c in support {
                aff.xor_var(c);
            }
            ctx.assert_affine_eq(&aff, false);
        }
        let c_lits: Vec<_> = self.corrections.iter().map(|&v| ctx.lit_of(v)).collect();
        let e_lits: Vec<_> = self.errors.iter().map(|&v| ctx.lit_of(v)).collect();
        ctx.assert_sum_le_sum(&c_lits, &e_lits, 0);
    }

    /// Builds the spec for one CSS sector of a code.
    ///
    /// `checks` are the parity-check rows detecting the relevant error type;
    /// fresh correction variables named `prefix_i` are allocated in `vt`.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome count does not match the check rows.
    pub fn css_sector(
        checks: &veriqec_gf2::BitMatrix,
        syndromes: &[VarId],
        errors: &[VarId],
        prefix: &str,
        vt: &mut VarTable,
    ) -> Self {
        assert_eq!(checks.num_rows(), syndromes.len(), "syndrome count");
        let n = checks.num_cols();
        let corrections: Vec<VarId> = (0..n)
            .map(|i| vt.fresh_indexed(prefix, i, VarRole::Correction))
            .collect();
        let check_vars: Vec<Vec<VarId>> = checks
            .iter()
            .map(|row| row.iter_ones().map(|q| corrections[q]).collect())
            .collect();
        MinWeightSpec {
            checks: check_vars,
            syndromes: syndromes.to_vec(),
            corrections,
            errors: errors.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::{rotated_surface, steane};

    #[test]
    fn steane_lookup_corrects_all_single_errors() {
        let code = steane();
        let dec = LookupDecoder::for_code(&code, 1);
        // 1 trivial + up to 21 single-error syndromes.
        assert_eq!(dec.coverage(), 1 + 21);
        enumerate_errors(7, 1, &mut |e| {
            let s = code.group().syndrome_of(e);
            let c = dec.decode(&s).expect("covered");
            let residue = c.mul(e);
            assert!(
                code.group().decompose(&residue).is_some(),
                "residue {residue} of error {e} is not a stabilizer"
            );
        });
    }

    #[test]
    fn css_decoder_sector_tables() {
        let code = steane();
        let dec = CssLookupDecoder::for_code(&code, 1);
        // 3 Z checks → up to 8 syndromes; 7 single-X errors + trivial = 8.
        assert_eq!(dec.x_corrections.len(), 8);
        assert_eq!(dec.z_corrections.len(), 8);
    }

    #[test]
    fn surface_d3_lookup_weight_1() {
        let code = rotated_surface(3);
        let dec = LookupDecoder::for_code(&code, 1);
        enumerate_errors(9, 1, &mut |e| {
            let s = code.group().syndrome_of(e);
            let c = dec.decode(&s).expect("single errors covered");
            let residue = c.mul(e);
            assert!(code.group().decompose(&residue).is_some());
        });
    }

    #[test]
    fn oracle_interface_roundtrip() {
        let code = steane();
        let dec = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(dec, 7);
        // X error on qubit 3 (0-based): Z checks have supports
        // {0,2,4,6},{1,2,5,6},{3,4,5,6}: syndrome = (0,0,1).
        let out = oracle("decode_x", &[false, false, true]);
        assert_eq!(out.len(), 7);
        let ones: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(ones, vec![3]);
    }

    #[test]
    fn min_weight_spec_unsat_on_overweight_corrections() {
        use veriqec_cexpr::BExp;
        let code = steane();
        let hz = code.css_hz().unwrap();
        let mut vt = VarTable::new();
        let syndromes: Vec<VarId> = (0..3)
            .map(|i| vt.fresh_indexed("s", i, VarRole::Syndrome))
            .collect();
        let errors: Vec<VarId> = (0..7)
            .map(|i| vt.fresh_indexed("e", i, VarRole::Error))
            .collect();
        let spec = MinWeightSpec::css_sector(&hz, &syndromes, &errors, "cx", &mut vt);
        let mut ctx = SmtContext::new();
        spec.assert_into(&mut ctx);
        // Single error budget but demand 2 corrections: unsat.
        ctx.assert(&BExp::weight_le(errors.iter().copied(), 1))
            .unwrap();
        let c_lits: Vec<_> = spec.corrections.iter().map(|&v| ctx.lit_of(v)).collect();
        ctx.assert_at_least(&c_lits, 2);
        assert!(ctx.check(&[]).is_unsat());
    }
}
