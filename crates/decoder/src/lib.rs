//! Decoders and decoder specifications for QEC verification.
//!
//! The paper treats the decoder as an uninterpreted function constrained by
//! the *minimum-weight decoder condition* `P_f` (§5.2): corrections must
//! reproduce the measured syndromes and weigh no more than the injected
//! errors. This crate provides:
//!
//! * [`LookupDecoder`] — an exact minimum-weight decoder built by
//!   breadth-first enumeration (used by simulation baselines and by the
//!   fixed-error/non-Pauli pipeline);
//! * [`MinWeightSpec`] — the `P_f` constraint emitter for the SMT layer;
//! * [`decode_call_oracle`] — adapts lookup decoders to program
//!   interpretation.
//!
//! # Examples
//!
//! ```
//! use veriqec_codes::steane;
//! use veriqec_decoder::LookupDecoder;
//! use veriqec_pauli::PauliString;
//!
//! let code = steane();
//! let dec = LookupDecoder::for_code(&code, 1);
//! let err = PauliString::single(7, 'X', 2);
//! let syndrome = code.group().syndrome_of(&err);
//! let corr = dec.decode(&syndrome).expect("single errors decodable");
//! // The correction cancels the error up to a stabilizer.
//! let residue = corr.mul(&err);
//! assert!(code.group().decompose(&residue).is_some());
//! ```

use std::collections::HashMap;

use veriqec_cexpr::{VarId, VarRole, VarTable};
use veriqec_codes::{enumerate_errors, StabilizerCode};
use veriqec_gf2::BitVec;
use veriqec_pauli::PauliString;
use veriqec_smt::SmtContext;

/// An exact minimum-weight decoder: maps syndromes to a minimum-weight
/// correction, built by enumerating all errors up to a weight budget.
#[derive(Clone, Debug)]
pub struct LookupDecoder {
    table: HashMap<BitVec, PauliString>,
    num_qubits: usize,
}

impl LookupDecoder {
    /// Builds the table for all errors of weight `<= max_weight`
    /// (breadth-first, so each syndrome keeps its minimum-weight correction).
    pub fn for_code(code: &StabilizerCode, max_weight: usize) -> Self {
        let n = code.n();
        let mut table = HashMap::new();
        table.insert(
            BitVec::zeros(code.generators().len()),
            PauliString::identity(n),
        );
        for w in 1..=max_weight {
            enumerate_errors(n, w, &mut |e| {
                let s = code.group().syndrome_of(e);
                table.entry(s).or_insert_with(|| e.clone());
            });
        }
        LookupDecoder {
            table,
            num_qubits: n,
        }
    }

    /// Decodes a syndrome; `None` when outside the covered radius.
    pub fn decode(&self, syndrome: &BitVec) -> Option<PauliString> {
        self.table.get(syndrome).cloned()
    }

    /// Number of distinct syndromes covered.
    pub fn coverage(&self) -> usize {
        self.table.len()
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }
}

/// A CSS-sector lookup decoder pair: `decode_x` consumes Z-check syndromes
/// and emits X-side corrections of X errors; `decode_z` the dual. Matches the
/// decoder calls `f_x`, `f_z` of the paper's Steane program (Table 1).
#[derive(Clone, Debug)]
pub struct CssLookupDecoder {
    /// Corrections for X errors (indexed by Z-check syndromes).
    pub x_corrections: HashMap<BitVec, BitVec>,
    /// Corrections for Z errors (indexed by X-check syndromes).
    pub z_corrections: HashMap<BitVec, BitVec>,
}

impl CssLookupDecoder {
    /// Builds both sector tables by enumerating single-sector errors up to
    /// `max_weight`.
    ///
    /// # Panics
    ///
    /// Panics when the code is not CSS.
    pub fn for_code(code: &StabilizerCode, max_weight: usize) -> Self {
        let hx = code.css_hx().expect("CSS code required");
        let hz = code.css_hz().expect("CSS code required");
        let n = code.n();
        let build = |checks: &veriqec_gf2::BitMatrix| {
            let mut table: HashMap<BitVec, BitVec> = HashMap::new();
            table.insert(BitVec::zeros(checks.num_rows()), BitVec::zeros(n));
            // BFS over supports by weight.
            let mut supports: Vec<BitVec> = vec![BitVec::zeros(n)];
            for _w in 1..=max_weight {
                let mut next = Vec::new();
                for s in &supports {
                    let start = s.iter_ones().last().map_or(0, |i| i + 1);
                    for q in start..n {
                        let mut e = s.clone();
                        e.set(q, true);
                        let syn = checks.mul_vec(&e);
                        table.entry(syn).or_insert_with(|| e.clone());
                        next.push(e);
                    }
                }
                supports = next;
            }
            table
        };
        CssLookupDecoder {
            // X errors are detected by Z checks (hz), corrected on the X side.
            x_corrections: build(&hz),
            z_corrections: build(&hx),
        }
    }
}

/// Adapts CSS lookup decoders to the interpreter's
/// `veriqec_prog::DecoderOracle` interface: decoder names
/// `decode_x` (inputs = Z-check syndromes, outputs = X corrections) and
/// `decode_z` (inputs = X-check syndromes, outputs = Z corrections).
pub fn decode_call_oracle(
    decoder: CssLookupDecoder,
    num_qubits: usize,
) -> impl Fn(&str, &[bool]) -> Vec<bool> {
    move |name: &str, inputs: &[bool]| -> Vec<bool> {
        let syndrome = BitVec::from_bools(inputs.iter().copied());
        let table = match name {
            "decode_x" => &decoder.x_corrections,
            "decode_z" => &decoder.z_corrections,
            other => panic!("unknown decoder `{other}`"),
        };
        let correction = table
            .get(&syndrome)
            .cloned()
            .unwrap_or_else(|| BitVec::zeros(num_qubits));
        correction.to_bools()
    }
}

/// The minimum-weight decoder specification `P_f` (§5.2), generalized to
/// faulty measurement: given syndrome, correction and error variables,
/// asserts into an [`SmtContext`]
///
/// 1. *syndrome consistency*: the correction together with the decoder's
///    *claimed flips* reproduces each observed syndrome,
///    `r_i(c) ⊕ f_i = s_i` (with `f_i ≡ 0` when `flips` is empty — the
///    perfect-measurement model);
/// 2. *minimality*: `Σ c + Σ f ≤ Σ e + Σ m` — the decoder's space-time
///    explanation weighs no more than the injected data + measurement
///    errors.
///
/// This is the necessary condition of any minimum-weight decoder (the exact
/// [`SpaceTimeDecoder`] satisfies it: the real `(e, m)` is always a
/// candidate explanation); the verification condition quantifies over all
/// decoders satisfying it. The faulty-measurement model additionally bounds
/// the *claims* by the promised budgets (`Σ c ≤ t_d`, `Σ f ≤ t_m`) — those
/// bounds depend on the grid point being verified, so they are asserted at
/// the problem level (`veriqec::tasks::build_problem_split`) or swept as
/// assumptions (`veriqec::engine::FaultToleranceSweep`), not here.
#[derive(Clone, Debug)]
pub struct MinWeightSpec {
    /// Check supports: row `i` lists which correction bits flip syndrome `i`.
    pub checks: Vec<Vec<VarId>>,
    /// The syndrome variable of each check (one entry per measurement site
    /// when the schedule repeats checks over rounds).
    pub syndromes: Vec<VarId>,
    /// Correction variables.
    pub corrections: Vec<VarId>,
    /// Error variables bounding the correction weight.
    pub errors: Vec<VarId>,
    /// Claimed measurement-flip variables (decoder outputs), parallel to
    /// `syndromes`; empty for the perfect-measurement model.
    pub flips: Vec<VarId>,
    /// Measurement-error indicators on the right-hand side of the weight
    /// comparison, alongside `errors`; empty for perfect measurement.
    pub meas_errors: Vec<VarId>,
}

impl MinWeightSpec {
    /// Asserts the `P_f` constraints.
    ///
    /// # Panics
    ///
    /// Panics when `flips` is non-empty but does not match `syndromes` in
    /// length.
    pub fn assert_into(&self, ctx: &mut SmtContext) {
        assert!(
            self.flips.is_empty() || self.flips.len() == self.syndromes.len(),
            "one claimed flip per observed syndrome"
        );
        for (i, (support, &s)) in self.checks.iter().zip(&self.syndromes).enumerate() {
            let mut aff = veriqec_cexpr::Affine::var(s);
            for &c in support {
                aff.xor_var(c);
            }
            if let Some(&f) = self.flips.get(i) {
                aff.xor_var(f);
            }
            ctx.assert_affine_eq(&aff, false);
        }
        let mut c_lits: Vec<_> = self.corrections.iter().map(|&v| ctx.lit_of(v)).collect();
        c_lits.extend(self.flips.iter().map(|&v| ctx.lit_of(v)));
        let mut e_lits: Vec<_> = self.errors.iter().map(|&v| ctx.lit_of(v)).collect();
        e_lits.extend(self.meas_errors.iter().map(|&v| ctx.lit_of(v)));
        ctx.assert_sum_le_sum(&c_lits, &e_lits, 0);
    }

    /// Builds the spec for one CSS sector of a code.
    ///
    /// `checks` are the parity-check rows detecting the relevant error type;
    /// fresh correction variables named `prefix_i` are allocated in `vt`.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome count does not match the check rows.
    pub fn css_sector(
        checks: &veriqec_gf2::BitMatrix,
        syndromes: &[VarId],
        errors: &[VarId],
        prefix: &str,
        vt: &mut VarTable,
    ) -> Self {
        assert_eq!(checks.num_rows(), syndromes.len(), "syndrome count");
        let n = checks.num_cols();
        let corrections: Vec<VarId> = (0..n)
            .map(|i| vt.fresh_indexed(prefix, i, VarRole::Correction))
            .collect();
        let check_vars: Vec<Vec<VarId>> = checks
            .iter()
            .map(|row| row.iter_ones().map(|q| corrections[q]).collect())
            .collect();
        MinWeightSpec {
            checks: check_vars,
            syndromes: syndromes.to_vec(),
            corrections,
            errors: errors.to_vec(),
            flips: vec![],
            meas_errors: vec![],
        }
    }
}

/// An exact space-time minimum-weight decoder for one check sector over a
/// repeated-extraction history: given the observed syndromes of `rounds`
/// rounds, finds the correction `c` and claimed flips `f` minimizing
/// `|c| + |f|` subject to `syn(c) ⊕ f_j = obs_j` for every round `j`.
///
/// The flips are determined by the correction (`f_j = syn(c) ⊕ obs_j`), so
/// the search enumerates corrections only — exhaustively over all `2^n`
/// supports, which makes this decoder *exact* (and exponential: it is the
/// testing/simulation reference, not a scalable decoder). Ties break toward
/// the lexicographically first minimal support, which prefers "explain by
/// flips" (`c = 0`) whenever that is minimal.
#[derive(Clone, Debug)]
pub struct SpaceTimeDecoder {
    checks: veriqec_gf2::BitMatrix,
    rounds: usize,
}

impl SpaceTimeDecoder {
    /// Builds the decoder for a sector's parity checks and a round count.
    ///
    /// # Panics
    ///
    /// Panics when the sector is too wide to enumerate (`n > 20`) or
    /// `rounds` is zero.
    pub fn new(checks: veriqec_gf2::BitMatrix, rounds: usize) -> Self {
        assert!(checks.num_cols() <= 20, "exhaustive decoder: n <= 20");
        assert!(rounds > 0, "at least one round");
        SpaceTimeDecoder { checks, rounds }
    }

    /// Number of data columns (qubits) in the sector.
    pub fn num_qubits(&self) -> usize {
        self.checks.num_cols()
    }

    /// Number of extraction rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Decodes a flattened round-major syndrome history into
    /// `(correction, claimed flips)`, both as bit vectors (`flips` flattened
    /// in the same round-major order).
    ///
    /// # Panics
    ///
    /// Panics when `history` has the wrong length.
    pub fn decode(&self, history: &[bool]) -> (BitVec, Vec<bool>) {
        self.decode_bounded(history, usize::MAX, usize::MAX)
    }

    /// Budget-aware decoding: like [`SpaceTimeDecoder::decode`], but only
    /// explanations within the *promised* fault model are admitted —
    /// `|c| ≤ t_data` and `|f| ≤ t_meas`. This is what makes repeated
    /// extraction work: the history `[0, s, s]` of a round-1 flip masking a
    /// real data error is ambiguous by raw weight, but the non-correcting
    /// explanation claims 2 flips and is ruled out by `t_meas = 1`. Falls
    /// back to the unconstrained minimum when no explanation fits the
    /// budgets (the promise was broken — outside the verified regime).
    ///
    /// # Panics
    ///
    /// Panics when `history` has the wrong length.
    pub fn decode_bounded(
        &self,
        history: &[bool],
        t_data: usize,
        t_meas: usize,
    ) -> (BitVec, Vec<bool>) {
        let n = self.checks.num_cols();
        let m = self.checks.num_rows();
        assert_eq!(history.len(), self.rounds * m, "history length");
        // (within budgets?, cost): feasible explanations always beat
        // infeasible ones, then lower cost wins, then first found (the
        // lexicographically smallest support).
        let mut best: Option<(bool, usize, BitVec, Vec<bool>)> = None;
        for support in 0u32..1 << n {
            let c = BitVec::from_bools((0..n).map(|q| (support >> q) & 1 == 1));
            let syn = self.checks.mul_vec(&c);
            let mut flips = Vec::with_capacity(self.rounds * m);
            for round in 0..self.rounds {
                for check in 0..m {
                    flips.push(syn.get(check) ^ history[round * m + check]);
                }
            }
            let cw = c.weight();
            let fw = flips.iter().filter(|&&f| f).count();
            let feasible = cw <= t_data && fw <= t_meas;
            let cost = cw + fw;
            if best
                .as_ref()
                .is_none_or(|&(bf, bc, _, _)| (!bf && feasible) || (bf == feasible && cost < bc))
            {
                best = Some((feasible, cost, c, flips));
            }
        }
        let (_, _, c, f) = best.expect("at least the empty correction");
        (c, f)
    }
}

/// Adapts per-sector [`SpaceTimeDecoder`]s to the interpreter's
/// `veriqec_prog::DecoderOracle` interface for repeated-extraction programs:
/// `decode_x` consumes the flattened Z-check syndrome history and returns
/// X-side corrections followed by its claimed flips; `decode_z` the dual.
/// Decoding is budget-aware ([`SpaceTimeDecoder::decode_bounded`] with the
/// given promised budgets), which makes the oracle a member of the decoder
/// class the faulty-measurement `P_f` quantifies over: its explanation is
/// consistent, no heavier than the truth, and within the claim budgets.
/// Note that even with `rounds == 1` the decoder may explain an observed
/// syndrome as a readout flip when that is no heavier than a data
/// correction — flips are part of the explanation space whenever the
/// protocol admits measurement errors.
///
/// # Panics
///
/// The returned closure panics on unknown decoder names or wrong input
/// lengths; construction panics when the code is not CSS.
pub fn space_time_decode_call_oracle(
    code: &StabilizerCode,
    rounds: usize,
    t_data: usize,
    t_meas: usize,
) -> impl Fn(&str, &[bool]) -> Vec<bool> {
    let hx = code.css_hx().expect("CSS code required");
    let hz = code.css_hz().expect("CSS code required");
    let x_decoder = SpaceTimeDecoder::new(hz, rounds); // Z checks find X errors
    let z_decoder = SpaceTimeDecoder::new(hx, rounds);
    move |name: &str, inputs: &[bool]| -> Vec<bool> {
        let decoder = match name {
            "decode_x" => &x_decoder,
            "decode_z" => &z_decoder,
            other => panic!("unknown decoder `{other}`"),
        };
        let (c, f) = decoder.decode_bounded(inputs, t_data, t_meas);
        let mut out = c.to_bools();
        out.extend(f);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::{rotated_surface, steane};

    #[test]
    fn steane_lookup_corrects_all_single_errors() {
        let code = steane();
        let dec = LookupDecoder::for_code(&code, 1);
        // 1 trivial + up to 21 single-error syndromes.
        assert_eq!(dec.coverage(), 1 + 21);
        enumerate_errors(7, 1, &mut |e| {
            let s = code.group().syndrome_of(e);
            let c = dec.decode(&s).expect("covered");
            let residue = c.mul(e);
            assert!(
                code.group().decompose(&residue).is_some(),
                "residue {residue} of error {e} is not a stabilizer"
            );
        });
    }

    #[test]
    fn css_decoder_sector_tables() {
        let code = steane();
        let dec = CssLookupDecoder::for_code(&code, 1);
        // 3 Z checks → up to 8 syndromes; 7 single-X errors + trivial = 8.
        assert_eq!(dec.x_corrections.len(), 8);
        assert_eq!(dec.z_corrections.len(), 8);
    }

    #[test]
    fn surface_d3_lookup_weight_1() {
        let code = rotated_surface(3);
        let dec = LookupDecoder::for_code(&code, 1);
        enumerate_errors(9, 1, &mut |e| {
            let s = code.group().syndrome_of(e);
            let c = dec.decode(&s).expect("single errors covered");
            let residue = c.mul(e);
            assert!(code.group().decompose(&residue).is_some());
        });
    }

    #[test]
    fn oracle_interface_roundtrip() {
        let code = steane();
        let dec = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(dec, 7);
        // X error on qubit 3 (0-based): Z checks have supports
        // {0,2,4,6},{1,2,5,6},{3,4,5,6}: syndrome = (0,0,1).
        let out = oracle("decode_x", &[false, false, true]);
        assert_eq!(out.len(), 7);
        let ones: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(ones, vec![3]);
    }

    #[test]
    fn space_time_decoder_prefers_flip_explanations() {
        // Repetition-3 Z checks, 3 rounds. A single flipped readout in one
        // round is cheaper to explain as a flip (cost 1) than as a data
        // error (cost 1 data + 2 flips in the other rounds).
        let checks = veriqec_gf2::BitMatrix::parse(&["110", "011"]);
        let dec = SpaceTimeDecoder::new(checks.clone(), 3);
        let mut history = vec![false; 6];
        history[0] = true; // check 0 fires in round 0 only
        let (c, f) = dec.decode(&history);
        assert!(c.is_zero(), "no data correction: {c}");
        assert_eq!(f, history, "the flip claim explains the record");
        // A syndrome repeated in all rounds is a data error.
        let persistent = vec![true, false, true, false, true, false];
        let (c, f) = dec.decode(&persistent);
        assert_eq!(c.weight(), 1, "one data correction");
        assert!(f.iter().all(|&b| !b), "no flips claimed");
        assert_eq!(checks.mul_vec(&c).to_bools(), vec![true, false]);
    }

    #[test]
    fn budget_bounds_break_the_masked_error_ambiguity() {
        // Repetition-3 Z checks, 3 rounds: a data error on qubit 0 with its
        // round-1 readout flipped gives check-0 history [0, 1, 1]. By raw
        // weight this ties with "flips in rounds 2 and 3" (both cost 2) and
        // the unconstrained decoder may refuse to correct; with the promised
        // budgets t_d = t_m = 1 the two-flip explanation is inadmissible and
        // the decoder must correct.
        let checks = veriqec_gf2::BitMatrix::parse(&["110", "011"]);
        let dec = SpaceTimeDecoder::new(checks.clone(), 3);
        let history = [
            false, false, // round 0 (flip masked the firing check)
            true, false, // round 1
            true, false, // round 2
        ];
        let (c_free, _) = dec.decode(&history);
        assert!(c_free.is_zero(), "raw weight ties break toward flips");
        let (c, f) = dec.decode_bounded(&history, 1, 1);
        assert_eq!(c.weight(), 1, "budget-aware decoding corrects");
        assert_eq!(checks.mul_vec(&c).to_bools(), vec![true, false]);
        assert_eq!(f.iter().filter(|&&b| b).count(), 1, "one claimed flip");
        // Infeasible budgets fall back to the unconstrained minimum.
        let (c_fallback, _) = dec.decode_bounded(&history, 0, 0);
        assert!(c_fallback.is_zero());
    }

    #[test]
    fn space_time_oracle_explanations_are_consistent_and_minimal() {
        // On every single-error syndrome the explanation must reproduce the
        // observed record (syn(c) ⊕ f = obs) and weigh no more than the
        // true error — the necessary P_f condition the spec asserts.
        let code = steane();
        let st = space_time_decode_call_oracle(&code, 1, usize::MAX, usize::MAX);
        let hz = code.css_hz().unwrap();
        for q in 0..7 {
            let mut e = veriqec_gf2::BitVec::zeros(7);
            e.set(q, true);
            let syn = hz.mul_vec(&e).to_bools();
            let out = st("decode_x", &syn);
            let (c, f) = out.split_at(7);
            let c = veriqec_gf2::BitVec::from_bools(c.iter().copied());
            let reproduced: Vec<bool> = hz
                .mul_vec(&c)
                .to_bools()
                .iter()
                .zip(f)
                .map(|(&a, &b)| a ^ b)
                .collect();
            assert_eq!(reproduced, syn, "q={q}");
            let cost = c.weight() + f.iter().filter(|&&b| b).count();
            assert!(cost <= 1, "q={q}: explanation heavier than the error");
        }
        // Qubit 6 sits on all three Z checks: a persistent weight-3
        // syndrome is cheaper to explain as one data correction.
        let mut e = veriqec_gf2::BitVec::zeros(7);
        e.set(6, true);
        let out = st("decode_x", &hz.mul_vec(&e).to_bools());
        let (c, f) = out.split_at(7);
        assert!(f.iter().all(|&b| !b));
        assert_eq!(
            veriqec_gf2::BitVec::from_bools(c.iter().copied()).weight(),
            1
        );
    }

    #[test]
    fn faulty_spec_is_satisfied_by_the_true_explanation_only_within_budget() {
        use veriqec_cexpr::BExp;
        // One check over two qubits, two rounds: P_f with flips demands
        // syn(c) ⊕ f_j = s_j and Σc + Σf ≤ Σe + Σm.
        let mut vt = VarTable::new();
        let s: Vec<VarId> = (0..2)
            .map(|i| vt.fresh_indexed("s", i, VarRole::Syndrome))
            .collect();
        let c: Vec<VarId> = (0..2)
            .map(|i| vt.fresh_indexed("c", i, VarRole::Correction))
            .collect();
        let f: Vec<VarId> = (0..2)
            .map(|i| vt.fresh_indexed("f", i, VarRole::Correction))
            .collect();
        let e: Vec<VarId> = (0..2)
            .map(|i| vt.fresh_indexed("e", i, VarRole::Error))
            .collect();
        let m: Vec<VarId> = (0..2)
            .map(|i| vt.fresh_indexed("m", i, VarRole::MeasError))
            .collect();
        let spec = MinWeightSpec {
            checks: vec![vec![c[0], c[1]]; 2],
            syndromes: s.clone(),
            corrections: c.clone(),
            errors: e.clone(),
            flips: f.clone(),
            meas_errors: m.clone(),
        };
        let mut ctx = SmtContext::new();
        spec.assert_into(&mut ctx);
        // Observed: fired in round 0 only; no data or measurement errors
        // admitted. The decoder would need a flip or a correction, but the
        // budget side is zero: unsat.
        ctx.assert(&BExp::var(s[0])).unwrap();
        ctx.assert(&BExp::not(BExp::var(s[1]))).unwrap();
        for &v in e.iter().chain(&m) {
            ctx.assert(&BExp::not(BExp::var(v))).unwrap();
        }
        assert!(ctx.check(&[]).is_unsat());
        // Granting one measurement error makes it satisfiable, and the
        // model explains the record with a claimed flip, not a correction.
        let mut ctx = SmtContext::new();
        spec.assert_into(&mut ctx);
        ctx.assert(&BExp::var(s[0])).unwrap();
        ctx.assert(&BExp::not(BExp::var(s[1]))).unwrap();
        ctx.assert(&BExp::var(m[0])).unwrap();
        for &v in e.iter().chain(std::iter::once(&m[1])) {
            ctx.assert(&BExp::not(BExp::var(v))).unwrap();
        }
        assert!(ctx.check(&[]).is_sat());
        let model = ctx.model();
        assert!(!model.get(c[0]).as_bool() && !model.get(c[1]).as_bool());
        assert!(model.get(f[0]).as_bool() && !model.get(f[1]).as_bool());
    }

    #[test]
    fn min_weight_spec_unsat_on_overweight_corrections() {
        use veriqec_cexpr::BExp;
        let code = steane();
        let hz = code.css_hz().unwrap();
        let mut vt = VarTable::new();
        let syndromes: Vec<VarId> = (0..3)
            .map(|i| vt.fresh_indexed("s", i, VarRole::Syndrome))
            .collect();
        let errors: Vec<VarId> = (0..7)
            .map(|i| vt.fresh_indexed("e", i, VarRole::Error))
            .collect();
        let spec = MinWeightSpec::css_sector(&hz, &syndromes, &errors, "cx", &mut vt);
        let mut ctx = SmtContext::new();
        spec.assert_into(&mut ctx);
        // Single error budget but demand 2 corrections: unsat.
        ctx.assert(&BExp::weight_le(errors.iter().copied(), 1))
            .unwrap();
        let c_lits: Vec<_> = spec.corrections.iter().map(|&v| ctx.lit_of(v)).collect();
        ctx.assert_at_least(&c_lits, 2);
        assert!(ctx.check(&[]).is_unsat());
    }
}
