//! Rotated surface codes (Fig. 5 of the paper) and the XZZX variant.

use crate::{css_code, StabilizerCode};
use veriqec_gf2::{BitMatrix, BitVec};
use veriqec_pauli::{conj1, Gate1, StabilizerGroup, SymPauli};

/// The distance-`d` rotated surface code `[[d², 1, d]]` on a `d × d` grid of
/// data qubits (qubit `(r, c)` has index `r·d + c`).
///
/// Faces of the extended grid at `(i, j)`, `0 ≤ i, j ≤ d`, touch the data
/// qubits `{(r, c) : r ∈ {i−1, i} ∩ [0, d), c ∈ {j−1, j} ∩ [0, d)}`; a face
/// is X-type when `i + j` is even, Z-type when odd. Interior faces (weight 4)
/// are always kept; weight-2 X faces only on the top/bottom boundary, weight-2
/// Z faces only on the left/right boundary. Logical `X̄` is an X-string down
/// column 0, logical `Z̄` a Z-string across row 0.
///
/// # Panics
///
/// Panics unless `d` is odd and `d ≥ 3`.
pub fn rotated_surface(d: usize) -> StabilizerCode {
    assert!(
        d >= 3 && d % 2 == 1,
        "rotated surface code needs odd d >= 3"
    );
    let n = d * d;
    let qubit = |r: usize, c: usize| r * d + c;
    let mut x_rows: Vec<BitVec> = Vec::new();
    let mut z_rows: Vec<BitVec> = Vec::new();
    for i in 0..=d {
        for j in 0..=d {
            let mut support = Vec::new();
            for r in [i.wrapping_sub(1), i] {
                for c in [j.wrapping_sub(1), j] {
                    if r < d && c < d {
                        support.push(qubit(r, c));
                    }
                }
            }
            let x_type = (i + j) % 2 == 0;
            let keep = match support.len() {
                4 => true,
                2 => {
                    if x_type {
                        i == 0 || i == d
                    } else {
                        j == 0 || j == d
                    }
                }
                _ => false,
            };
            if !keep {
                continue;
            }
            let row = BitVec::from_ones(n, &support);
            if x_type {
                x_rows.push(row);
            } else {
                z_rows.push(row);
            }
        }
    }
    debug_assert_eq!(x_rows.len() + z_rows.len(), n - 1);
    let hx = BitMatrix::from_rows(x_rows);
    let hz = BitMatrix::from_rows(z_rows);
    let mut code = css_code(format!("rotated surface d={d}"), &hx, &hz, Some(d))
        .expect("valid rotated surface code");
    // Replace completed logicals with the canonical string operators.
    let lx = crate::css::x_type(&BitVec::from_ones(
        n,
        &(0..d).map(|r| qubit(r, 0)).collect::<Vec<_>>(),
    ));
    let lz = crate::css::z_type(&BitVec::from_ones(
        n,
        &(0..d).map(|c| qubit(0, c)).collect::<Vec<_>>(),
    ));
    code = StabilizerCode::new(
        format!("rotated surface d={d}"),
        code.group().clone(),
        vec![lx],
        vec![lz],
        Some(d),
    );
    code.validate().expect("canonical surface logicals");
    code
}

/// The XZZX surface code `[[d², 1, d]]` (Table 3), obtained from the rotated
/// surface code by conjugating every generator and logical with Hadamards on
/// the odd-checkerboard qubits — the standard local-Clifford equivalence,
/// which preserves parameters by construction.
///
/// # Panics
///
/// Panics unless `d` is odd and `d ≥ 3`.
pub fn xzzx_surface(d: usize) -> StabilizerCode {
    let base = rotated_surface(d);
    let n = base.n();
    let conj_all = |p: &SymPauli| -> SymPauli {
        let mut out = p.clone();
        for r in 0..d {
            for c in 0..d {
                if (r + c) % 2 == 1 {
                    out = conj1(Gate1::H, r * d + c, &out, true);
                }
            }
        }
        out
    };
    let gens: Vec<SymPauli> = base.generators().iter().map(&conj_all).collect();
    let group = StabilizerGroup::new(gens).expect("conjugated generators stay valid");
    let lx: Vec<SymPauli> = base.logical_x().iter().map(&conj_all).collect();
    let lz: Vec<SymPauli> = base.logical_z().iter().map(&conj_all).collect();
    let code = StabilizerCode::new(format!("XZZX surface d={d}"), group, lx, lz, Some(d));
    debug_assert_eq!(code.n(), n);
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_surface_structure() {
        let c = rotated_surface(3);
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (9, 1));
        let (xs, zs) = c.css_split().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(zs.len(), 4);
        // All stabilizers have weight 2 or 4.
        for g in c.generators() {
            let w = g.pauli().weight();
            assert!(w == 2 || w == 4, "weight {w}");
        }
        assert_eq!(c.brute_force_distance(3), Some(3));
    }

    #[test]
    fn d5_surface_structure() {
        let c = rotated_surface(5);
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (25, 1));
        assert_eq!(c.generators().len(), 24);
        // Distance 5: no logical error of weight <= 3 (weight-4 check is
        // expensive; full d=5 confirmation is done by the SAT detection task).
        assert_eq!(c.brute_force_distance(3), None);
    }

    #[test]
    fn xzzx_d3_is_valid_non_css() {
        let c = xzzx_surface(3);
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (9, 1));
        // Mixed-type stabilizers: not CSS in the strict split sense.
        assert!(c.css_split().is_none());
        assert_eq!(c.brute_force_distance(3), Some(3));
    }
}
