//! The stabilizer-code type: generators, logical operators, validation and
//! exact (brute-force) distance for small codes.

use std::fmt;
use veriqec_gf2::BitMatrix;
use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};

/// An `[[n, k, d]]` stabilizer code: a validated stabilizer group plus a
/// chosen set of logical operator representatives.
///
/// # Examples
///
/// ```
/// use veriqec_codes::steane;
/// let code = steane();
/// assert_eq!((code.n(), code.k()), (7, 1));
/// assert_eq!(code.claimed_distance(), Some(3));
/// code.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct StabilizerCode {
    name: String,
    group: StabilizerGroup,
    logical_x: Vec<SymPauli>,
    logical_z: Vec<SymPauli>,
    claimed_distance: Option<usize>,
}

/// Error from [`StabilizerCode::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeValidationError {
    /// Description of the violated invariant.
    pub message: String,
}

impl fmt::Display for CodeValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid stabilizer code: {}", self.message)
    }
}

impl std::error::Error for CodeValidationError {}

impl StabilizerCode {
    /// Assembles a code from a validated group and explicit logicals.
    ///
    /// Prefer [`StabilizerCode::with_completed_logicals`] when no canonical
    /// representatives are known.
    pub fn new(
        name: impl Into<String>,
        group: StabilizerGroup,
        logical_x: Vec<SymPauli>,
        logical_z: Vec<SymPauli>,
        claimed_distance: Option<usize>,
    ) -> Self {
        StabilizerCode {
            name: name.into(),
            group,
            logical_x,
            logical_z,
            claimed_distance,
        }
    }

    /// Assembles a code, deriving logical operators by symplectic completion.
    pub fn with_completed_logicals(
        name: impl Into<String>,
        group: StabilizerGroup,
        claimed_distance: Option<usize>,
    ) -> Self {
        let pairs = group.logical_operators();
        let (lx, lz) = pairs.into_iter().unzip();
        StabilizerCode::new(name, group, lx, lz, claimed_distance)
    }

    /// The code's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n(&self) -> usize {
        self.group.num_qubits()
    }

    /// Number of logical qubits.
    pub fn k(&self) -> usize {
        self.group.num_logical_qubits()
    }

    /// The distance claimed by the construction (verified separately by the
    /// detection task).
    pub fn claimed_distance(&self) -> Option<usize> {
        self.claimed_distance
    }

    /// The stabilizer group.
    pub fn group(&self) -> &StabilizerGroup {
        &self.group
    }

    /// Stabilizer generators.
    pub fn generators(&self) -> &[SymPauli] {
        self.group.generators()
    }

    /// Logical `X̄_i` representatives.
    pub fn logical_x(&self) -> &[SymPauli] {
        &self.logical_x
    }

    /// Logical `Z̄_i` representatives.
    pub fn logical_z(&self) -> &[SymPauli] {
        &self.logical_z
    }

    /// Checks all structural invariants: generator commutation and
    /// independence (already enforced by [`StabilizerGroup`]), logical
    /// counts, commutation of logicals with generators, and the canonical
    /// anticommutation pattern `X̄_i Z̄_j = (−1)^{δ_ij} Z̄_j X̄_i`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeValidationError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), CodeValidationError> {
        let k = self.k();
        if self.logical_x.len() != k || self.logical_z.len() != k {
            return Err(CodeValidationError {
                message: format!(
                    "expected {k} logical pairs, got {}/{}",
                    self.logical_x.len(),
                    self.logical_z.len()
                ),
            });
        }
        for (i, l) in self.logical_x.iter().chain(&self.logical_z).enumerate() {
            if l.num_qubits() != self.n() {
                return Err(CodeValidationError {
                    message: format!("logical {i} acts on wrong qubit count"),
                });
            }
            for (j, g) in self.generators().iter().enumerate() {
                if l.pauli().anticommutes_with(g.pauli()) {
                    return Err(CodeValidationError {
                        message: format!("logical {i} anticommutes with generator {j}"),
                    });
                }
            }
            if self.group.decompose(l.pauli()).is_some() {
                return Err(CodeValidationError {
                    message: format!("logical {i} lies inside the stabilizer group"),
                });
            }
        }
        for i in 0..k {
            for j in 0..k {
                let anti_xz = self.logical_x[i]
                    .pauli()
                    .anticommutes_with(self.logical_z[j].pauli());
                if anti_xz != (i == j) {
                    return Err(CodeValidationError {
                        message: format!("X̄_{i} / Z̄_{j} commutation pattern wrong"),
                    });
                }
                if i != j
                    && (self.logical_x[i]
                        .pauli()
                        .anticommutes_with(self.logical_x[j].pauli())
                        || self.logical_z[i]
                            .pauli()
                            .anticommutes_with(self.logical_z[j].pauli()))
                {
                    return Err(CodeValidationError {
                        message: format!("logicals {i}/{j} of equal type anticommute"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Splits the generators into pure-X-type and pure-Z-type rows if the
    /// code is CSS; returns `(x_type_indices, z_type_indices)`.
    pub fn css_split(&self) -> Option<(Vec<usize>, Vec<usize>)> {
        let mut xs = Vec::new();
        let mut zs = Vec::new();
        for (i, g) in self.generators().iter().enumerate() {
            let has_x = !g.pauli().x_bits().is_zero();
            let has_z = !g.pauli().z_bits().is_zero();
            match (has_x, has_z) {
                (true, false) => xs.push(i),
                (false, true) => zs.push(i),
                _ => return None,
            }
        }
        Some((xs, zs))
    }

    /// The X-type parity-check matrix (rows = X-type generators' supports),
    /// for CSS codes. A code with no X-type generators yields a `0 × n`
    /// matrix.
    pub fn css_hx(&self) -> Option<BitMatrix> {
        let (xs, _) = self.css_split()?;
        let mut m = BitMatrix::zeros(0, self.n());
        for &i in &xs {
            m.push_row(self.generators()[i].pauli().x_bits().clone());
        }
        Some(m)
    }

    /// The Z-type parity-check matrix, for CSS codes (`0 × n` when there are
    /// no Z-type generators).
    pub fn css_hz(&self) -> Option<BitMatrix> {
        let (_, zs) = self.css_split()?;
        let mut m = BitMatrix::zeros(0, self.n());
        for &i in &zs {
            m.push_row(self.generators()[i].pauli().z_bits().clone());
        }
        Some(m)
    }

    /// Exact code distance by brute-force enumeration of errors up to weight
    /// `max_weight`: the minimum weight of a Pauli that commutes with every
    /// generator but is not itself a stabilizer.
    ///
    /// Returns `None` when no logical error of weight `<= max_weight` exists.
    /// Exponential; intended for `n ≤ ~15` or small weights.
    pub fn brute_force_distance(&self, max_weight: usize) -> Option<usize> {
        let n = self.n();
        for w in 1..=max_weight {
            let mut found = false;
            enumerate_errors(n, w, &mut |err| {
                if !found && self.group.is_undetected(err) && self.group.decompose(err).is_none() {
                    found = true;
                }
            });
            if found {
                return Some(w);
            }
        }
        None
    }
}

/// Calls `f` on every Pauli error of exactly weight `w` on `n` qubits.
pub fn enumerate_errors(n: usize, w: usize, f: &mut dyn FnMut(&PauliString)) {
    let mut positions = Vec::with_capacity(w);
    fn rec(
        n: usize,
        w: usize,
        start: usize,
        positions: &mut Vec<usize>,
        f: &mut dyn FnMut(&PauliString),
    ) {
        if positions.len() == w {
            // All letter choices on the chosen positions.
            let mut letters = vec![0u8; w];
            loop {
                let mut p = PauliString::identity(n);
                for (idx, &pos) in positions.iter().enumerate() {
                    let c = [b'X', b'Y', b'Z'][letters[idx] as usize] as char;
                    p = p.mul(&PauliString::single(n, c, pos));
                }
                f(&p);
                // Increment base-3 counter.
                let mut i = 0;
                loop {
                    if i == w {
                        return;
                    }
                    letters[i] += 1;
                    if letters[i] < 3 {
                        break;
                    }
                    letters[i] = 0;
                    i += 1;
                }
            }
        }
        for pos in start..n {
            positions.push(pos);
            rec(n, w, pos + 1, positions, f);
            positions.pop();
        }
    }
    rec(n, w, 0, &mut positions, f);
}

impl fmt::Display for StabilizerCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.contains("[[") {
            write!(f, "{}", self.name)
        } else {
            write!(
                f,
                "{} [[{},{},{}]]",
                self.name,
                self.n(),
                self.k(),
                self.claimed_distance
                    .map_or("?".to_string(), |d| d.to_string())
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_counts() {
        let mut count = 0;
        enumerate_errors(4, 2, &mut |_| count += 1);
        assert_eq!(count, 6 * 9); // C(4,2) * 3^2
    }
}
