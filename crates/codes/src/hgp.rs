//! Hypergraph-product codes (Tillich–Zémor) and the toric code as a special
//! case. These reproduce the "Hypergraph Product" row of Table 3 and stand in
//! for the quantum Tanner codes (see `DESIGN.md` on substitutions).

use crate::{css_code, StabilizerCode};
use veriqec_gf2::{BitMatrix, BitVec};

/// Keeps a maximal independent subset of the rows.
fn independent_rows(m: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(0, m.num_cols());
    let mut acc = BitMatrix::zeros(0, m.num_cols());
    for row in m.iter() {
        let mut trial = acc.clone();
        trial.push_row(row.clone());
        if trial.rank() > acc.rank() {
            acc = trial;
            out.push_row(row.clone());
        }
    }
    out
}

/// Kronecker product of GF(2) matrices.
fn kron(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(a.num_rows() * b.num_rows(), a.num_cols() * b.num_cols());
    for i in 0..a.num_rows() {
        for j in 0..a.num_cols() {
            if a.get(i, j) {
                for p in 0..b.num_rows() {
                    for q in 0..b.num_cols() {
                        if b.get(p, q) {
                            out.set(i * b.num_rows() + p, j * b.num_cols() + q, true);
                        }
                    }
                }
            }
        }
    }
    out
}

fn identity(n: usize) -> BitMatrix {
    BitMatrix::identity(n)
}

/// The hypergraph product `HGP(H1, H2)` of two classical parity-check
/// matrices: a CSS code with
/// `Hx = [H1 ⊗ I | I ⊗ H2ᵀ]` and `Hz = [I ⊗ H2 | H1ᵀ ⊗ I]` on
/// `n1·n2 + r1·r2` qubits. Dependent checks are pruned to a generating set.
///
/// # Panics
///
/// Panics if the construction produces an invalid CSS pair (cannot happen for
/// well-formed inputs; the orthogonality is an algebraic identity).
pub fn hypergraph_product(
    name: impl Into<String>,
    h1: &BitMatrix,
    h2: &BitMatrix,
    claimed_distance: Option<usize>,
) -> StabilizerCode {
    let (r1, n1) = (h1.num_rows(), h1.num_cols());
    let (r2, n2) = (h2.num_rows(), h2.num_cols());
    let hx = kron(h1, &identity(n2)).hstack(&kron(&identity(r1), &h2.transpose()));
    let hz = kron(&identity(n1), h2).hstack(&kron(&h1.transpose(), &identity(r2)));
    let hx = independent_rows(&hx);
    let hz = independent_rows(&hz);
    css_code(name, &hx, &hz, claimed_distance).expect("hypergraph product is CSS by construction")
}

/// The circulant parity-check matrix of the cyclic repetition code of length
/// `d` (rows `e_i + e_{i+1 mod d}`).
pub fn repetition_circulant(d: usize) -> BitMatrix {
    let mut rows = Vec::with_capacity(d);
    for i in 0..d {
        rows.push(BitVec::from_ones(d, &[i, (i + 1) % d]));
    }
    BitMatrix::from_rows(rows)
}

/// The toric code `[[2d², 2, d]]` as the hypergraph product of two cyclic
/// repetition codes.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn toric(d: usize) -> StabilizerCode {
    assert!(d >= 2, "toric code needs d >= 2");
    let h = repetition_circulant(d);
    hypergraph_product(format!("toric d={d}"), &h, &h, Some(d))
}

/// The parity-check matrix of the `[7,4,3]` Hamming code.
pub fn hamming_7_4() -> BitMatrix {
    BitMatrix::parse(&["1010101", "0110011", "0001111"])
}

/// The hypergraph product of the `[7,4,3]` Hamming code with itself:
/// `[[58, 16, 3]]` — the scaled instance of Table 3's hypergraph-product row.
pub fn hgp_hamming() -> StabilizerCode {
    hypergraph_product(
        "HGP(Hamming 7_4) [[58,16,3]]",
        &hamming_7_4(),
        &hamming_7_4(),
        Some(3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toric_parameters() {
        for d in [2usize, 3] {
            let c = toric(d);
            c.validate().unwrap();
            assert_eq!((c.n(), c.k()), (2 * d * d, 2), "d={d}");
        }
        assert_eq!(toric(3).brute_force_distance(3), Some(3));
    }

    #[test]
    fn hgp_hamming_parameters() {
        let c = hgp_hamming();
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (58, 16));
        // Weight-1 and weight-2 errors are all detected or stabilizers.
        assert_eq!(c.brute_force_distance(2), None);
    }

    #[test]
    fn toric_d4_distance_lower_bound() {
        let c = toric(4);
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (32, 2));
        assert_eq!(c.brute_force_distance(3), None); // d >= 4
    }
}
