//! Code concatenation: the classic route to scalable codes (and the basis of
//! the paper's "scalable codes" discussion for the Coq-level pen-and-paper
//! proofs).
//!
//! Concatenating an outer `[[n₂, 1, d₂]]` code with an inner `[[n₁, 1, d₁]]`
//! code yields `[[n₁·n₂, 1, ≥ d₁·d₂]]`: each outer qubit is encoded in an
//! inner block; the stabilizers are the inner generators of every block plus
//! the outer generators lifted through the inner logical operators.

use veriqec_gf2::BitVec;
use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};

use crate::StabilizerCode;

/// Lifts a Pauli letter on outer qubit `b` to the inner block `b`, using the
/// inner code's logical representatives.
fn lift_letter(letter: char, block: usize, inner: &StabilizerCode, n_total: usize) -> PauliString {
    let base = block * inner.n();
    let rep = |p: &PauliString| -> PauliString {
        let mut x = BitVec::zeros(n_total);
        let mut z = BitVec::zeros(n_total);
        for q in 0..inner.n() {
            if p.x_bit(q) {
                x.set(base + q, true);
            }
            if p.z_bit(q) {
                z.set(base + q, true);
            }
        }
        let y = x.anded(&z).weight();
        PauliString::from_bits(x, z, (y % 4) as u8)
    };
    match letter {
        'I' => PauliString::identity(n_total),
        'X' => rep(inner.logical_x()[0].pauli()),
        'Z' => rep(inner.logical_z()[0].pauli()),
        'Y' => {
            // Ȳ = i·X̄·Z̄.
            let mut p = rep(inner.logical_x()[0].pauli()).mul(&rep(inner.logical_z()[0].pauli()));
            p.add_ipow(1);
            p
        }
        other => panic!("not a Pauli letter: {other}"),
    }
}

/// Concatenates `outer` (each of its physical qubits re-encoded by `inner`).
///
/// Both codes must have `k = 1`. The claimed distance is `d₁·d₂` (a lower
/// bound that is tight for the standard families; the detection task can
/// confirm it).
///
/// # Panics
///
/// Panics when either code has `k ≠ 1` or a lifted operator fails to be a
/// valid stabilizer (cannot happen for well-formed inputs).
pub fn concatenate(outer: &StabilizerCode, inner: &StabilizerCode) -> StabilizerCode {
    assert_eq!(
        outer.k(),
        1,
        "concatenation implemented for k = 1 outer codes"
    );
    assert_eq!(
        inner.k(),
        1,
        "concatenation implemented for k = 1 inner codes"
    );
    let n_total = outer.n() * inner.n();
    let mut gens: Vec<SymPauli> = Vec::new();
    // Inner generators on every block.
    for block in 0..outer.n() {
        let base = block * inner.n();
        for g in inner.generators() {
            let mut x = BitVec::zeros(n_total);
            let mut z = BitVec::zeros(n_total);
            for q in 0..inner.n() {
                if g.pauli().x_bit(q) {
                    x.set(base + q, true);
                }
                if g.pauli().z_bit(q) {
                    z.set(base + q, true);
                }
            }
            let y = x.anded(&z).weight();
            gens.push(SymPauli::plain(PauliString::from_bits(x, z, (y % 4) as u8)));
        }
    }
    // Outer generators lifted through the inner logicals.
    let lift = |p: &PauliString| -> PauliString {
        let mut acc = PauliString::identity(n_total);
        for b in 0..outer.n() {
            let letter = p.letter(b);
            if letter != 'I' {
                acc = acc.mul(&lift_letter(letter, b, inner, n_total));
            }
        }
        acc
    };
    for g in outer.generators() {
        gens.push(SymPauli::plain(lift(g.pauli()).unsigned()));
    }
    let lx = SymPauli::plain(lift(outer.logical_x()[0].pauli()).unsigned());
    let lz = SymPauli::plain(lift(outer.logical_z()[0].pauli()).unsigned());
    let group = StabilizerGroup::new(gens).expect("concatenated generators are valid");
    let d = outer
        .claimed_distance()
        .and_then(|d2| inner.claimed_distance().map(|d1| d1 * d2));
    StabilizerCode::new(
        format!(
            "concat({} ∘ {}) [[{},1,{}]]",
            outer.name(),
            inner.name(),
            n_total,
            d.map_or("?".into(), |d| d.to_string())
        ),
        group,
        vec![lx],
        vec![lz],
        d,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{five_qubit, repetition, steane};

    #[test]
    fn steane_squared_structure() {
        let c = concatenate(&steane(), &steane());
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (49, 1));
        assert_eq!(c.claimed_distance(), Some(9));
        // No logical error of weight <= 2 (full d = 9 check is the SAT
        // detection task's job; see the integration tests).
        assert_eq!(c.brute_force_distance(2), None);
    }

    #[test]
    fn shor_as_repetition_concatenation() {
        // Shor's code is phase-flip ∘ bit-flip repetition. Our repetition
        // code is the bit-flip variant; concatenating the X-basis variant
        // over it reproduces a [[9,1,·]] code with the Shor group size.
        let inner = repetition(3);
        let outer = repetition(3);
        let c = concatenate(&outer, &inner);
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (9, 1));
    }

    #[test]
    fn five_qubit_concatenated() {
        let c = concatenate(&five_qubit(), &five_qubit());
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (25, 1));
        assert_eq!(c.claimed_distance(), Some(9));
        assert_eq!(c.brute_force_distance(2), None);
    }
}
