//! CSS code construction from classical parity-check matrices.

use crate::{CodeValidationError, StabilizerCode};
use veriqec_gf2::{BitMatrix, BitVec};
use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};

/// Builds the X-type generator with support `row`.
pub fn x_type(row: &BitVec) -> SymPauli {
    let n = row.len();
    SymPauli::plain(PauliString::from_bits(row.clone(), BitVec::zeros(n), 0))
}

/// Builds the Z-type generator with support `row`.
pub fn z_type(row: &BitVec) -> SymPauli {
    let n = row.len();
    SymPauli::plain(PauliString::from_bits(BitVec::zeros(n), row.clone(), 0))
}

/// Constructs a CSS code `CSS(Hx, Hz)` from classical parity-check matrices
/// with `Hx · Hzᵀ = 0`, completing logical operators symplectically.
///
/// # Errors
///
/// Returns [`CodeValidationError`] when the orthogonality condition fails or
/// the rows are dependent/ill-sized.
pub fn css_code(
    name: impl Into<String>,
    hx: &BitMatrix,
    hz: &BitMatrix,
    claimed_distance: Option<usize>,
) -> Result<StabilizerCode, CodeValidationError> {
    let n = hx.num_cols();
    if hz.num_cols() != n {
        return Err(CodeValidationError {
            message: "Hx and Hz have different column counts".into(),
        });
    }
    // Orthogonality: every X row must overlap every Z row evenly.
    for (i, xr) in hx.iter().enumerate() {
        for (j, zr) in hz.iter().enumerate() {
            if xr.dot(zr) {
                return Err(CodeValidationError {
                    message: format!("Hx row {i} and Hz row {j} overlap oddly"),
                });
            }
        }
    }
    let gens: Vec<SymPauli> = hx.iter().map(x_type).chain(hz.iter().map(z_type)).collect();
    let group = StabilizerGroup::new(gens).map_err(|e| CodeValidationError {
        message: format!("invalid stabilizer group: {e}"),
    })?;
    let code = StabilizerCode::with_completed_logicals(name, group, claimed_distance);
    code.validate()?;
    Ok(code)
}

/// Constructs a *self-dual* CSS code (`Hx = Hz = h`), e.g. colour codes.
///
/// # Errors
///
/// As [`css_code`]; additionally every row must have even weight (a row must
/// be orthogonal to itself).
pub fn self_dual_css(
    name: impl Into<String>,
    h: &BitMatrix,
    claimed_distance: Option<usize>,
) -> Result<StabilizerCode, CodeValidationError> {
    css_code(name, h, h, claimed_distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn css_rejects_non_orthogonal() {
        let hx = BitMatrix::parse(&["110"]);
        let hz = BitMatrix::parse(&["100"]);
        assert!(css_code("bad", &hx, &hz, None).is_err());
    }

    #[test]
    fn four_two_two() {
        let hx = BitMatrix::parse(&["1111"]);
        let hz = BitMatrix::parse(&["1111"]);
        let code = css_code("[[4,2,2]]", &hx, &hz, Some(2)).unwrap();
        assert_eq!((code.n(), code.k()), (4, 2));
        assert_eq!(code.brute_force_distance(4), Some(2));
    }
}
