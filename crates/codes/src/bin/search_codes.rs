//! Offline code-search driver: rediscovers the hardcoded instances
//! (`[[11,1,5]]` cyclic code, `[[12,2,4]]` random code) used by the zoo.
//!
//! Run with `cargo run -p veriqec_codes --bin search_codes --release`.

use rand::prelude::*;
use veriqec_codes::search::{search_cyclic, search_random_code};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(String::as_str).unwrap_or("all");

    if what == "all" || what == "dodecacode" {
        println!("searching cyclic [[11,1,5]] ...");
        match search_cyclic(11, 5) {
            Some((seed, code)) => {
                println!(
                    "FOUND seed x_mask={:#013b} z_mask={:#013b}",
                    seed.x_mask, seed.z_mask
                );
                for g in code.generators() {
                    println!("  gen {}", g.pauli());
                }
            }
            None => println!("no cyclic [[11,1,5]] found"),
        }
    }

    if what == "all" || what == "carbon" {
        println!("searching random [[12,2,4]] ...");
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        match search_random_code(12, 2, 4, 4000, &mut rng) {
            Some(code) => {
                println!("FOUND [[12,2,4]]:");
                for g in code.generators() {
                    println!("  gen {}", g.pauli());
                }
                for (lx, lz) in code.logical_x().iter().zip(code.logical_z()) {
                    println!("  Lx {}  Lz {}", lx.pauli(), lz.pauli());
                }
            }
            None => println!("no [[12,2,4]] found in budget"),
        }
    }

    if what == "all" || what == "dodeca115" {
        println!("hill-climbing [[11,1,5]] ...");
        let seed: u64 = std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x115);
        let mut rng = StdRng::seed_from_u64(seed);
        match veriqec_codes::search::hill_climb_distance(11, 1, 5, 400, 3000, &mut rng) {
            Some(code) => {
                println!("FOUND [[11,1,5]]:");
                for g in code.generators() {
                    println!("  gen {}", g.pauli());
                }
                for (lx, lz) in code.logical_x().iter().zip(code.logical_z()) {
                    println!("  Lx {}  Lz {}", lx.pauli(), lz.pauli());
                }
            }
            None => println!("no [[11,1,5]] found in budget"),
        }
    }
}
