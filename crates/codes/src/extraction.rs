//! Multi-round syndrome-extraction schedules.
//!
//! Repeated measurement is the standard defence against measurement errors:
//! a single flipped readout corrupts one round of the syndrome history, and
//! with enough repetitions the decoder can tell a flipped record from a real
//! data error (cf. Chen et al., "Verifying Fault-Tolerance of Quantum Error
//! Correction Codes", arXiv:2501.14380). An [`ExtractionSchedule`] is the
//! *shared description* of such a protocol — which check is measured in
//! which round, and whether that measurement carries a flip indicator — and
//! is consumed by every backend that must agree on the noise process: the
//! scenario/program builder (`veriqec::scenario`), the Pauli-frame sampler
//! circuit (`veriqec_qsim::frame` via `veriqec::sampling`), and the
//! faulty-detection assembly (`veriqec::enumerator`); the space-time
//! decoder (`veriqec_decoder::SpaceTimeDecoder`) sees only the schedule's
//! round count and history order.

/// One measurement site of a schedule: check `check` measured in round
/// `round`, with or without a measurement-flip indicator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasurementSite {
    /// Extraction round (0-based).
    pub round: usize,
    /// Check (generator) index within the code.
    pub check: usize,
    /// Whether this site's readout may flip (gets a fresh indicator).
    pub noisy: bool,
}

/// An `r`-round syndrome-extraction schedule over a fixed check set.
///
/// Rounds are full: every round measures every check, in check order. The
/// flattened site order (round-major, check-minor) is the canonical layout
/// of the syndrome *history* every consumer uses — decoder inputs, frame
/// circuit measurement order, and the VC's syndrome variables all follow it.
/// Noise is schedule-wide: either every site carries a flip indicator
/// ([`ExtractionSchedule::repeated`]) or none does
/// ([`ExtractionSchedule::perfect`]); the decoder-spec layer pairs claimed
/// flips with syndromes positionally and does not support mixed schedules.
///
/// # Examples
///
/// ```
/// use veriqec_codes::ExtractionSchedule;
/// let sched = ExtractionSchedule::repeated(3, 2);
/// assert_eq!(sched.num_sites(), 6);
/// assert_eq!(sched.history_index(1, 2), 5);
/// assert!(sched.sites().all(|s| s.noisy));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtractionSchedule {
    num_checks: usize,
    rounds: usize,
    noisy: bool,
}

impl ExtractionSchedule {
    /// A single perfect-measurement round (the paper's original model).
    pub fn perfect(num_checks: usize) -> Self {
        ExtractionSchedule {
            num_checks,
            rounds: 1,
            noisy: false,
        }
    }

    /// `rounds` rounds, every measurement faulty (a fresh flip indicator per
    /// site).
    ///
    /// # Panics
    ///
    /// Panics when `rounds` is zero.
    pub fn repeated(num_checks: usize, rounds: usize) -> Self {
        assert!(rounds > 0, "at least one extraction round");
        ExtractionSchedule {
            num_checks,
            rounds,
            noisy: true,
        }
    }

    /// Number of checks measured per round.
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }

    /// Number of extraction rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Whether measurements carry flip indicators.
    pub fn is_noisy(&self) -> bool {
        self.noisy
    }

    /// Total number of measurement sites (`rounds × num_checks`).
    pub fn num_sites(&self) -> usize {
        self.rounds * self.num_checks
    }

    /// Position of `(round, check)` in the flattened syndrome history.
    ///
    /// # Panics
    ///
    /// Panics when the round or check index is out of range.
    pub fn history_index(&self, round: usize, check: usize) -> usize {
        assert!(round < self.rounds && check < self.num_checks);
        round * self.num_checks + check
    }

    /// Iterates the sites in history order (round-major, check-minor).
    pub fn sites(&self) -> impl Iterator<Item = MeasurementSite> + '_ {
        (0..self.rounds).flat_map(move |round| {
            (0..self.num_checks).map(move |check| MeasurementSite {
                round,
                check,
                noisy: self.noisy,
            })
        })
    }

    /// Per-check majority vote over the rounds of a flattened syndrome
    /// history — the textbook repeated-measurement estimate of the true
    /// syndrome (ties, possible only for even round counts, report `true`:
    /// a fired check is the conservative reading).
    ///
    /// # Panics
    ///
    /// Panics when `history` has the wrong length.
    pub fn majority_vote(&self, history: &[bool]) -> Vec<bool> {
        assert_eq!(history.len(), self.num_sites(), "history length");
        (0..self.num_checks)
            .map(|check| {
                let fired = (0..self.rounds)
                    .filter(|&round| history[self.history_index(round, check)])
                    .count();
                2 * fired >= self.rounds
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_schedule_is_one_quiet_round() {
        let s = ExtractionSchedule::perfect(4);
        assert_eq!((s.rounds(), s.num_checks(), s.num_sites()), (1, 4, 4));
        assert!(!s.is_noisy());
        let sites: Vec<_> = s.sites().collect();
        assert_eq!(sites.len(), 4);
        assert!(sites.iter().all(|site| !site.noisy && site.round == 0));
    }

    #[test]
    fn history_order_is_round_major() {
        let s = ExtractionSchedule::repeated(3, 2);
        let sites: Vec<_> = s.sites().collect();
        assert_eq!(
            sites[4],
            MeasurementSite {
                round: 1,
                check: 1,
                noisy: true
            }
        );
        for (i, site) in sites.iter().enumerate() {
            assert_eq!(s.history_index(site.round, site.check), i);
        }
    }

    #[test]
    fn majority_vote_recovers_the_repeated_syndrome() {
        let s = ExtractionSchedule::repeated(2, 3);
        // True syndrome (1, 0); one flip in round 1 on each check.
        let history = [
            true, false, // round 0
            false, true, // round 1 (both flipped)
            true, false, // round 2
        ];
        assert_eq!(s.majority_vote(&history), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "at least one extraction round")]
    fn zero_rounds_is_rejected() {
        let _ = ExtractionSchedule::repeated(2, 0);
    }
}
