//! The stabilizer-code zoo of the paper's benchmark (Table 3).
//!
//! Provides [`StabilizerCode`] (generators + logicals + validation + exact
//! brute-force distance), CSS constructors, and the code family used in the
//! evaluation: Steane, rotated/XZZX surface, repetition, five/six-qubit,
//! Shor, Gottesman `[[8,3,3]]`, quantum Reed–Muller, hypergraph products
//! (incl. toric), the 3D colour cube `[[8,3,2]]`, pair-detection codes, the
//! cyclic `[[11,1,5]]` (dodecacode row) and a searched `[[12,2,4]]` (carbon
//! row). Scaled/substituted instances are documented in `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use veriqec_codes::{rotated_surface, steane};
//! let surface = rotated_surface(3);
//! assert_eq!((surface.n(), surface.k()), (9, 1));
//! assert_eq!(steane().brute_force_distance(3), Some(3));
//! ```

mod code;
mod concat;
pub mod css;
mod extraction;
mod hgp;
pub mod search;
mod surface;
mod zoo;

pub use code::{enumerate_errors, CodeValidationError, StabilizerCode};
pub use concat::concatenate;
pub use css::{css_code, self_dual_css};
pub use extraction::{ExtractionSchedule, MeasurementSite};
pub use hgp::{hamming_7_4, hgp_hamming, hypergraph_product, repetition_circulant, toric};
pub use surface::{rotated_surface, xzzx_surface};
pub use zoo::{
    c4_422, campbell_howard_k1, carbon_12_2_4, cube_color_822, five_qubit, gottesman8,
    pair_detection_code, reed_muller, repetition, shor9, six_qubit, steane,
};
