//! Small named codes of the benchmark family (Table 3 of the paper).

use crate::{css_code, StabilizerCode};
use veriqec_gf2::{BitMatrix, BitVec};
use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};

fn gens_from_letters(rows: &[&str]) -> StabilizerGroup {
    StabilizerGroup::new(
        rows.iter()
            .map(|s| SymPauli::plain(PauliString::from_letters(s).expect("valid letters")))
            .collect(),
    )
    .expect("valid generator set")
}

/// The `n`-qubit repetition (bit-flip) code `[[n, 1, n]]` against X errors:
/// generators `Z_i Z_{i+1}`, logicals `Z̄ = Z_0`, `X̄ = X^⊗n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn repetition(n: usize) -> StabilizerCode {
    assert!(n >= 2, "repetition code needs n >= 2");
    let gens: Vec<SymPauli> = (0..n - 1)
        .map(|i| {
            let z1 = PauliString::single(n, 'Z', i);
            let z2 = PauliString::single(n, 'Z', i + 1);
            SymPauli::plain(z1.mul(&z2))
        })
        .collect();
    let group = StabilizerGroup::new(gens).expect("repetition generators");
    let lx = SymPauli::plain(PauliString::from_bits(
        BitVec::from_bools(vec![true; n]),
        BitVec::zeros(n),
        0,
    ));
    let lz = SymPauli::plain(PauliString::single(n, 'Z', 0));
    StabilizerCode::new(
        format!("repetition-{n}"),
        group,
        vec![lx],
        vec![lz],
        Some(1), // distance as a quantum code is 1 (single Z is logical)
    )
}

/// The `[[7,1,3]]` Steane code (§2.2) with the paper's generators.
pub fn steane() -> StabilizerCode {
    let group = gens_from_letters(&[
        "XIXIXIX", "IXXIIXX", "IIIXXXX", "ZIZIZIZ", "IZZIIZZ", "IIIZZZZ",
    ]);
    let lx = SymPauli::plain(PauliString::from_letters("XXXXXXX").unwrap());
    let lz = SymPauli::plain(PauliString::from_letters("ZZZZZZZ").unwrap());
    StabilizerCode::new("Steane [[7,1,3]]", group, vec![lx], vec![lz], Some(3))
}

/// The `[[5,1,3]]` five-qubit perfect code (non-CSS).
pub fn five_qubit() -> StabilizerCode {
    let group = gens_from_letters(&["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]);
    let lx = SymPauli::plain(PauliString::from_letters("XXXXX").unwrap());
    let lz = SymPauli::plain(PauliString::from_letters("ZZZZZ").unwrap());
    StabilizerCode::new("five-qubit [[5,1,3]]", group, vec![lx], vec![lz], Some(3))
}

/// The `[[9,1,3]]` Shor code.
pub fn shor9() -> StabilizerCode {
    let hx = BitMatrix::parse(&["111111000", "000111111"]);
    let hz = BitMatrix::parse(&[
        "110000000",
        "011000000",
        "000110000",
        "000011000",
        "000000110",
        "000000011",
    ]);
    css_code("Shor [[9,1,3]]", &hx, &hz, Some(3)).expect("valid Shor code")
}

/// The `[[6,1,3]]` code of the benchmark, realized as the five-qubit code
/// extended by one stabilized ancilla (`Z` on the extra qubit). This keeps
/// `[[6,1,3]]` parameters exactly; the paper's six-qubit code from
/// Calderbank–Rains–Shor–Sloane is a different (but equivalent-parameter)
/// code — see `DESIGN.md` on substitutions.
pub fn six_qubit() -> StabilizerCode {
    let group = gens_from_letters(&["XZZXII", "IXZZXI", "XIXZZI", "ZXIXZI", "IIIIIZ"]);
    let lx = SymPauli::plain(PauliString::from_letters("XXXXXI").unwrap());
    let lz = SymPauli::plain(PauliString::from_letters("ZZZZZI").unwrap());
    StabilizerCode::new("six-qubit [[6,1,3]]", group, vec![lx], vec![lz], Some(3))
}

/// The `[[4,2,2]]` error-detection code (the smallest member of the
/// iceberg family): stabilizers `X^⊗4`, `Z^⊗4`, logicals
/// `X̄₁ = XXII`, `Z̄₁ = ZIZI`, `X̄₂ = XIXI`, `Z̄₂ = ZZII`. Distance 2 —
/// every single-qubit error is detected, none is correctable — which makes
/// it the smallest nontrivial input for the failure-enumerator backend.
pub fn c4_422() -> StabilizerCode {
    let group = gens_from_letters(&["XXXX", "ZZZZ"]);
    let lx = |s: &str| SymPauli::plain(PauliString::from_letters(s).unwrap());
    StabilizerCode::new(
        "C4 [[4,2,2]]",
        group,
        vec![lx("XXII"), lx("XIXI")],
        vec![lx("ZIZI"), lx("ZZII")],
        Some(2),
    )
}

/// Gottesman's `[[8,3,3]]` code (the `r = 3` member of the
/// `[[2^r, 2^r − r − 2, 3]]` family of Table 3).
pub fn gottesman8() -> StabilizerCode {
    let group = gens_from_letters(&["XXXXXXXX", "ZZZZZZZZ", "IXIXYZYZ", "IXZYIXZY", "IYXZXZIY"]);
    StabilizerCode::with_completed_logicals("Gottesman [[8,3,3]]", group, Some(3))
}

/// The 3D colour code on the cube, `[[8,3,2]]` (Table 3's error-detection
/// entry): `X^⊗8` plus four independent `Z`-faces. Qubit `i` sits at cube
/// vertex with coordinates `(i⁄4, i⁄2 mod 2, i mod 2)`.
pub fn cube_color_822() -> StabilizerCode {
    let n = 8;
    let face = |bits: [usize; 4]| {
        let mut v = BitVec::zeros(n);
        for b in bits {
            v.set(b, true);
        }
        v
    };
    let x_all = {
        let mut v = BitVec::zeros(n);
        for i in 0..n {
            v.set(i, true);
        }
        SymPauli::plain(PauliString::from_bits(v, BitVec::zeros(n), 0))
    };
    let zf =
        |bits: [usize; 4]| SymPauli::plain(PauliString::from_bits(BitVec::zeros(n), face(bits), 0));
    let gens = vec![
        x_all,
        zf([0, 1, 2, 3]), // x = 0 face
        zf([4, 5, 6, 7]), // x = 1 face
        zf([0, 1, 4, 5]), // y = 0 face
        zf([0, 2, 4, 6]), // z = 0 face
    ];
    let group = StabilizerGroup::new(gens).expect("cube code generators");
    StabilizerCode::with_completed_logicals("3D colour [[8,3,2]]", group, Some(2))
}

/// Campbell–Howard-style error-detection code, `k = 1` instance `[[8,3,2]]`
/// (coincides with the cube code).
pub fn campbell_howard_k1() -> StabilizerCode {
    let mut c = cube_color_822();
    c = StabilizerCode::new(
        "Campbell-Howard [[8,3,2]] (k=1)",
        c.group().clone(),
        c.logical_x().to_vec(),
        c.logical_z().to_vec(),
        Some(2),
    );
    c
}

/// A `[[2m, 2m−2−a−b, 2]]` error-detection "pair code": `X^⊗n`, `Z^⊗n` and
/// `a`/`b` pair operators. Used as the scaled stand-in for the triorthogonal
/// and Campbell–Howard families of Table 3 (the verification task — detection
/// of any single-qubit Pauli error — is identical; see `DESIGN.md`).
///
/// # Panics
///
/// Panics unless `a, b < m − 1` and `m >= 2`.
pub fn pair_detection_code(m: usize, a: usize, b: usize) -> StabilizerCode {
    assert!(m >= 2 && a < m - 1 && b < m - 1, "pair code parameters");
    let n = 2 * m;
    let all = BitVec::from_bools(vec![true; n]);
    let pair = |i: usize| BitVec::from_ones(n, &[2 * i, 2 * i + 1]);
    let mut gens = Vec::new();
    gens.push(SymPauli::plain(PauliString::from_bits(
        all.clone(),
        BitVec::zeros(n),
        0,
    )));
    for i in 0..a {
        gens.push(SymPauli::plain(PauliString::from_bits(
            pair(i),
            BitVec::zeros(n),
            0,
        )));
    }
    gens.push(SymPauli::plain(PauliString::from_bits(
        BitVec::zeros(n),
        all,
        0,
    )));
    for i in 0..b {
        gens.push(SymPauli::plain(PauliString::from_bits(
            BitVec::zeros(n),
            pair(i),
            0,
        )));
    }
    let group = StabilizerGroup::new(gens).expect("pair code generators");
    StabilizerCode::with_completed_logicals(
        format!("pair-detection [[{}, {}, 2]]", n, n - 2 - a - b),
        group,
        Some(2),
    )
}

/// The quantum Reed–Muller code `[[2^r − 1, 1, 3]]` (Table 3; `r = 3` is the
/// Steane code): X-checks are the coordinate functions on nonzero points of
/// `F_2^r`, Z-checks are all monomials of degree `≤ r − 2`.
///
/// # Panics
///
/// Panics if `r < 3` or `r > 8`.
pub fn reed_muller(r: usize) -> StabilizerCode {
    assert!((3..=8).contains(&r), "reed_muller supports 3 <= r <= 8");
    let n = (1usize << r) - 1;
    // Point i (1-based value i) has coordinates = bits of i.
    let eval = |mask: u32| -> BitVec {
        // Monomial Π_{j ∈ mask} x_j evaluated at points 1..=n.
        BitVec::from_bools((1..=n as u32).map(|p| p & mask == mask))
    };
    let hx = BitMatrix::from_rows((0..r).map(|j| eval(1 << j)).collect());
    let mut z_rows = Vec::new();
    for mask in 1u32..(1 << r) {
        let deg = mask.count_ones() as usize;
        if deg >= 1 && deg <= r - 2 {
            z_rows.push(eval(mask));
        }
    }
    let hz = BitMatrix::from_rows(z_rows);
    css_code(
        format!("Reed-Muller [[{n},1,3]] (r={r})"),
        &hx,
        &hz,
        Some(3),
    )
    .expect("valid quantum Reed-Muller code")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c4_is_valid_distance_2() {
        let c = c4_422();
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (4, 2));
        assert_eq!(c.brute_force_distance(2), Some(2));
        assert!(c.css_split().is_some());
    }

    #[test]
    fn steane_is_valid_distance_3() {
        let c = steane();
        c.validate().unwrap();
        assert_eq!(c.brute_force_distance(3), Some(3));
        assert!(c.css_split().is_some());
    }

    #[test]
    fn five_qubit_is_valid_distance_3() {
        let c = five_qubit();
        c.validate().unwrap();
        assert_eq!(c.brute_force_distance(3), Some(3));
        assert!(c.css_split().is_none());
    }

    #[test]
    fn six_qubit_is_valid_distance_3() {
        let c = six_qubit();
        c.validate().unwrap();
        assert_eq!(c.brute_force_distance(3), Some(3));
    }

    #[test]
    fn shor_is_valid_distance_3() {
        let c = shor9();
        c.validate().unwrap();
        assert_eq!(c.brute_force_distance(3), Some(3));
    }

    #[test]
    fn gottesman8_is_valid_distance_3() {
        let c = gottesman8();
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (8, 3));
        assert_eq!(c.brute_force_distance(3), Some(3));
    }

    #[test]
    fn cube_code_is_valid_distance_2() {
        let c = cube_color_822();
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (8, 3));
        assert_eq!(c.brute_force_distance(2), Some(2));
    }

    #[test]
    fn pair_codes_detect_single_errors() {
        for (m, a, b) in [(7, 5, 5), (7, 3, 3), (4, 2, 2)] {
            let c = pair_detection_code(m, a, b);
            c.validate().unwrap();
            assert_eq!(c.k(), 2 * m - 2 - a - b, "k for m={m},a={a},b={b}");
            assert_eq!(c.brute_force_distance(2), Some(2));
        }
    }

    #[test]
    fn reed_muller_r3_is_steane() {
        let rm = reed_muller(3);
        rm.validate().unwrap();
        assert_eq!((rm.n(), rm.k()), (7, 1));
        assert_eq!(rm.brute_force_distance(3), Some(3));
    }

    #[test]
    fn reed_muller_r4_parameters() {
        let rm = reed_muller(4);
        rm.validate().unwrap();
        assert_eq!((rm.n(), rm.k()), (15, 1));
        assert_eq!(rm.brute_force_distance(3), Some(3));
    }

    #[test]
    fn repetition_detects_x_errors() {
        let c = repetition(5);
        c.validate().unwrap();
        // Any X error of weight <= 2 is detected.
        let mut undetected_x = 0;
        crate::enumerate_errors(5, 1, &mut |e| {
            if e.z_bits().is_zero() && c.group().is_undetected(e) {
                undetected_x += 1;
            }
        });
        assert_eq!(undetected_x, 0);
    }
}

/// A `[[12,2,4]]` stabilizer code standing in for Table 3's carbon code
/// (same parameters `n`, `k`, `d`; the published carbon code's exact
/// generators are not reproduced here). Discovered by the random-Clifford
/// search in [`crate::search`] (see the `search_codes` binary) and verified
/// to have distance exactly 4 by brute force.
pub fn carbon_12_2_4() -> StabilizerCode {
    let group = gens_from_letters(&[
        "XIYYXXZZZZYY",
        "XIZIXYZXYYZI",
        "ZYXZXZIIXXYI",
        "IXXIIYXZZXXZ",
        "XYIXIXXYZXYI",
        "IXYZZYIIZXZZ",
        "XZXIYXZXZYIY",
        "ZXYZXYXZIYIZ",
        "YZYXYXXYYYIZ",
        "ZXXXZXIZXXYY",
    ]);
    let lx = [
        SymPauli::plain(PauliString::from_letters("XIIXIIIXXXII").unwrap()),
        SymPauli::plain(PauliString::from_letters("YXXYXXIXIXII").unwrap()),
    ];
    let lz = [
        SymPauli::plain(PauliString::from_letters("YIXIIXXXIIII").unwrap()),
        SymPauli::plain(PauliString::from_letters("IIIXIIIIXIXX").unwrap()),
    ];
    StabilizerCode::new(
        "carbon-substitute [[12,2,4]] (searched)",
        group,
        lx.to_vec(),
        lz.to_vec(),
        Some(4),
    )
}

#[cfg(test)]
mod carbon_tests {
    use super::*;

    #[test]
    fn carbon_substitute_is_valid_distance_4() {
        let c = carbon_12_2_4();
        c.validate().unwrap();
        assert_eq!((c.n(), c.k()), (12, 2));
        assert_eq!(c.brute_force_distance(4), Some(4));
    }
}
