//! Fault-tolerant scenario verification (§7.3: Figs. 8–10) plus the
//! non-Pauli case study (§5.2.2 / Appendix C).

use veriqec::scenario::{
    cnot_propagation_scenario, correction_fault_scenario, ghz_scenario, logical_h_scenario,
    memory_scenario, multi_cycle_scenario, ErrorModel,
};
use veriqec::tasks::{verify_correction, verify_nonpauli_memory};
use veriqec_codes::steane;
use veriqec_pauli::Gate1;
use veriqec_sat::SolverConfig;
use veriqec_vcgen::{NonPauliOutcome, VcOutcome};

#[test]
fn steane_logical_h_one_cycle() {
    // Eqn. 2: Σ(e_i + ep_i) ≤ 1 errors around a logical H are corrected.
    let s = logical_h_scenario(&steane(), ErrorModel::YErrors);
    let report = verify_correction(&s, 1, SolverConfig::default());
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    // And two errors break it.
    let report2 = verify_correction(&s, 2, SolverConfig::default());
    assert!(matches!(report2.outcome, VcOutcome::CounterExample(_)));
}

#[test]
fn steane_multi_cycle_memory() {
    // Two correction rounds tolerate one error per round.
    let s = multi_cycle_scenario(&steane(), ErrorModel::YErrors, 2);
    // Budget 1 across both rounds is certainly correctable.
    let report = verify_correction(&s, 1, SolverConfig::default());
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
}

#[test]
fn steane_faulty_corrections_cycle() {
    // One fault among {data errors, correction faults}: the second clean
    // round catches the faulted correction.
    let s = correction_fault_scenario(&steane(), ErrorModel::YErrors);
    let report = verify_correction(&s, 1, SolverConfig::default());
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
}

#[test]
fn steane_cnot_with_propagated_errors() {
    // Fig. 10: a single propagated error through transversal CNOT (fans out
    // to both blocks) is still corrected by per-block rounds.
    let s = cnot_propagation_scenario(&steane(), ErrorModel::YErrors);
    let report = verify_correction(&s, 1, SolverConfig::default());
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
}

#[test]
fn steane_ghz_preparation() {
    // Fig. 9: logical GHZ preparation with one injected error per stage.
    let s = ghz_scenario(&steane(), ErrorModel::YErrors);
    let report = verify_correction(&s, 1, SolverConfig::default());
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
}

#[test]
fn steane_x_and_z_error_models() {
    for model in [
        ErrorModel::XErrors,
        ErrorModel::ZErrors,
        ErrorModel::Depolarizing,
    ] {
        let s = memory_scenario(&steane(), model);
        let report = verify_correction(&s, 1, SolverConfig::default());
        assert!(
            report.outcome.is_verified(),
            "{model:?}: {:?}",
            report.outcome
        );
    }
}

#[test]
fn steane_t_error_all_positions() {
    // §5.2.2: a single T error anywhere in the Steane code is corrected.
    for q in 0..7 {
        let out = verify_nonpauli_memory(&steane(), Gate1::T, q).expect("heuristic applies");
        assert_eq!(out, NonPauliOutcome::Verified, "T error on qubit {q}");
    }
}

#[test]
fn steane_h_error_single_position() {
    // Appendix C.2: an H error is corrected too.
    for q in [0, 3, 6] {
        let out = verify_nonpauli_memory(&steane(), Gate1::H, q).expect("heuristic applies");
        assert_eq!(out, NonPauliOutcome::Verified, "H error on qubit {q}");
    }
}
