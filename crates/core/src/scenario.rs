//! Fault-tolerant scenario builders (Table 1, Figs. 8–10).
//!
//! Each builder assembles: the QEC program (error injection → logical
//! operation → syndrome measurement → decoding → correction), the
//! correctness-formula sides (the pre generating set with symbolic logical
//! phases, and the postcondition in QEC normal form), the error-indicator
//! variables for `P_c`, and the decoder wiring for `P_f`.

use veriqec_cexpr::{BExp, VarId, VarRole, VarTable};
use veriqec_codes::{ExtractionSchedule, StabilizerCode};
use veriqec_gf2::BitVec;
use veriqec_logic::QecAssertion;
use veriqec_pauli::{conj1, conj2, ExtPauli, Gate1, Gate2, PauliString, SymPauli};
use veriqec_prog::{DecodeCall, Stmt};

/// Which single-qubit error is injected at each location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorModel {
    /// One `X` indicator per qubit.
    XErrors,
    /// One `Z` indicator per qubit.
    ZErrors,
    /// One `Y` indicator per qubit (the paper's main choice: `Y` covers the
    /// combined effect of `X` and `Z` on the same qubit).
    YErrors,
    /// Independent `X` and `Z` indicators per qubit (arbitrary Pauli).
    Depolarizing,
}

impl ErrorModel {
    /// Gates injected per qubit, with a variable-family tag.
    pub(crate) fn gates(self) -> &'static [(Gate1, &'static str)] {
        match self {
            ErrorModel::XErrors => &[(Gate1::X, "ex")],
            ErrorModel::ZErrors => &[(Gate1::Z, "ez")],
            ErrorModel::YErrors => &[(Gate1::Y, "ey")],
            ErrorModel::Depolarizing => &[(Gate1::X, "ex"), (Gate1::Z, "ez")],
        }
    }
}

/// Decoder wiring for one decoder call: enough to rebuild the `P_f` spec.
#[derive(Clone, Debug)]
pub struct DecoderWiring {
    /// One row per syndrome: the correction variables that flip it.
    pub checks: Vec<Vec<VarId>>,
    /// Syndrome variables (inputs of the call). For multi-round extraction
    /// these are the full round-major history this decoder consumes.
    pub syndromes: Vec<VarId>,
    /// Correction variables (outputs of the call).
    pub corrections: Vec<VarId>,
    /// Claimed measurement-flip variables (decoder outputs), parallel to
    /// `syndromes`; empty under perfect measurement.
    pub flips: Vec<VarId>,
    /// Measurement-error indicators of this decoder's sites, for the
    /// right-hand side of the `P_f` weight comparison; empty under perfect
    /// measurement.
    pub meas_errors: Vec<VarId>,
}

/// A fully assembled verification scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable description.
    pub name: String,
    /// The program to verify.
    pub program: Stmt,
    /// Variable registry.
    pub vt: VarTable,
    /// Physical qubits.
    pub num_qubits: usize,
    /// Precondition generating set (stabilizers + `(−1)^{b_i}` logicals).
    pub lhs: Vec<SymPauli>,
    /// Postcondition in QEC normal form.
    pub post: QecAssertion,
    /// Error indicators constrained by `P_c` (includes propagation vars).
    pub error_vars: Vec<VarId>,
    /// Measurement-flip indicators, constrained by the separate
    /// measurement-error budget `Σm ≤ t_m`; empty under perfect measurement.
    pub meas_error_vars: Vec<VarId>,
    /// Decoder wirings for `P_f`.
    pub decoders: Vec<DecoderWiring>,
    /// Specification parameters (logical phases `b_i`).
    pub params: Vec<VarId>,
}

/// Builder state for assembling scenarios over one or more code blocks.
pub struct ScenarioBuilder {
    code: StabilizerCode,
    blocks: usize,
    vt: VarTable,
    stmts: Vec<Stmt>,
    error_vars: Vec<VarId>,
    meas_error_vars: Vec<VarId>,
    decoders: Vec<DecoderWiring>,
    /// Current logical operators per block (conjugated forward through
    /// logical gates as they are emitted).
    logical_x: Vec<Vec<SymPauli>>,
    logical_z: Vec<Vec<SymPauli>>,
    cycle: usize,
}

impl ScenarioBuilder {
    /// Starts a scenario over `blocks` copies of `code`.
    pub fn new(code: &StabilizerCode, blocks: usize) -> Self {
        let n = code.n() * blocks;
        let embed = |p: &SymPauli, b: usize| embed_block(p, b, code.n(), n);
        let logical_x = (0..blocks)
            .map(|b| code.logical_x().iter().map(|p| embed(p, b)).collect())
            .collect();
        let logical_z = (0..blocks)
            .map(|b| code.logical_z().iter().map(|p| embed(p, b)).collect())
            .collect();
        ScenarioBuilder {
            code: code.clone(),
            blocks,
            vt: VarTable::new(),
            stmts: Vec::new(),
            error_vars: Vec::new(),
            meas_error_vars: Vec::new(),
            decoders: Vec::new(),
            logical_x,
            logical_z,
            cycle: 0,
        }
    }

    /// Total physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.code.n() * self.blocks
    }

    fn embedded_generators(&self) -> Vec<SymPauli> {
        let n = self.num_qubits();
        let mut gens = Vec::new();
        for b in 0..self.blocks {
            for g in self.code.generators() {
                gens.push(embed_block(g, b, self.code.n(), n));
            }
        }
        gens
    }

    /// Injects one conditional error per qubit (fresh indicator family,
    /// tagged by the current count so repeated injections stay distinct).
    pub fn inject_errors(&mut self, model: ErrorModel, tag: &str) {
        let n = self.num_qubits();
        for (gate, family) in model.gates() {
            for q in 0..n {
                let v = self.vt.fresh(&format!("{tag}{family}_{q}"), VarRole::Error);
                self.error_vars.push(v);
                self.stmts.push(Stmt::CondGate1(BExp::var(v), *gate, q));
            }
        }
    }

    /// Injects a single *fixed* (unconditional) gate error.
    pub fn inject_fixed_error(&mut self, gate: Gate1, qubit: usize) {
        self.stmts.push(Stmt::CondGate1(BExp::tt(), gate, qubit));
    }

    /// Applies a transversal single-qubit logical gate to a block, updating
    /// the tracked logical operators.
    pub fn logical_transversal(&mut self, gate: Gate1, block: usize) {
        let base = block * self.code.n();
        for q in 0..self.code.n() {
            self.stmts.push(Stmt::Gate1(gate, base + q));
        }
        let conj_all = |p: &SymPauli| {
            let mut out = p.clone();
            for q in 0..self.code.n() {
                out = conj1(gate, base + q, &out, false);
            }
            out
        };
        for l in &mut self.logical_x[block] {
            *l = conj_all(l);
        }
        for l in &mut self.logical_z[block] {
            *l = conj_all(l);
        }
    }

    /// Applies a transversal CNOT between two blocks (control → target).
    pub fn logical_cnot(&mut self, control: usize, target: usize) {
        let (cb, tb) = (control * self.code.n(), target * self.code.n());
        for q in 0..self.code.n() {
            self.stmts.push(Stmt::Gate2(Gate2::Cnot, cb + q, tb + q));
        }
        let conj_all = |p: &SymPauli| {
            let mut out = p.clone();
            for q in 0..self.code.n() {
                out = conj2(Gate2::Cnot, cb + q, tb + q, &out, false);
            }
            out
        };
        for b in 0..self.blocks {
            for l in &mut self.logical_x[b] {
                *l = conj_all(l);
            }
            for l in &mut self.logical_z[b] {
                *l = conj_all(l);
            }
        }
    }

    /// Emits one full error-correction round on a block: syndrome
    /// measurements, decoder calls (per CSS sector when available, joint
    /// otherwise) and conditional corrections. Optionally the corrections
    /// are faulted by fresh indicators (the `C_E` scenario).
    pub fn correction_round(&mut self, block: usize, faulty_corrections: bool) {
        self.cycle += 1;
        let cyc = self.cycle;
        let n = self.num_qubits();
        let base = block * self.code.n();
        let gens: Vec<SymPauli> = self
            .code
            .generators()
            .iter()
            .map(|g| embed_block(g, block, self.code.n(), n))
            .collect();
        // Measure all generators.
        let s_vars: Vec<VarId> = (0..gens.len())
            .map(|i| {
                self.vt
                    .fresh(&format!("s{cyc}b{block}_{i}"), VarRole::Syndrome)
            })
            .collect();
        for (i, g) in gens.iter().enumerate() {
            self.stmts.push(Stmt::Meas(s_vars[i], g.clone()));
        }
        // Decode + correct.
        match self.code.css_split() {
            Some((x_idx, z_idx)) => {
                // X-type checks detect Z errors; their syndromes feed the Z
                // decoder. Z-type checks feed the X decoder.
                let hx = self.code.css_hx().expect("CSS");
                let hz = self.code.css_hz().expect("CSS");
                let sx: Vec<VarId> = x_idx.iter().map(|&i| s_vars[i]).collect();
                let sz: Vec<VarId> = z_idx.iter().map(|&i| s_vars[i]).collect();
                let cz: Vec<VarId> = (0..self.code.n())
                    .map(|q| {
                        self.vt
                            .fresh(&format!("cz{cyc}b{block}_{q}"), VarRole::Correction)
                    })
                    .collect();
                let cx: Vec<VarId> = (0..self.code.n())
                    .map(|q| {
                        self.vt
                            .fresh(&format!("cx{cyc}b{block}_{q}"), VarRole::Correction)
                    })
                    .collect();
                self.stmts.push(Stmt::Decode(DecodeCall {
                    name: "decode_z".into(),
                    outputs: cz.clone(),
                    inputs: sx.clone(),
                }));
                self.stmts.push(Stmt::Decode(DecodeCall {
                    name: "decode_x".into(),
                    outputs: cx.clone(),
                    inputs: sz.clone(),
                }));
                self.decoders.push(DecoderWiring {
                    checks: hx
                        .iter()
                        .map(|row| row.iter_ones().map(|q| cz[q]).collect())
                        .collect(),
                    syndromes: sx,
                    corrections: cz.clone(),
                    flips: vec![],
                    meas_errors: vec![],
                });
                self.decoders.push(DecoderWiring {
                    checks: hz
                        .iter()
                        .map(|row| row.iter_ones().map(|q| cx[q]).collect())
                        .collect(),
                    syndromes: sz,
                    corrections: cx.clone(),
                    flips: vec![],
                    meas_errors: vec![],
                });
                self.emit_corrections(base, &cx, Gate1::X, faulty_corrections, cyc, block);
                self.emit_corrections(base, &cz, Gate1::Z, faulty_corrections, cyc, block);
            }
            None => {
                // Joint decoder: X and Z correction bits per qubit.
                let cx: Vec<VarId> = (0..self.code.n())
                    .map(|q| {
                        self.vt
                            .fresh(&format!("cx{cyc}b{block}_{q}"), VarRole::Correction)
                    })
                    .collect();
                let cz: Vec<VarId> = (0..self.code.n())
                    .map(|q| {
                        self.vt
                            .fresh(&format!("cz{cyc}b{block}_{q}"), VarRole::Correction)
                    })
                    .collect();
                let mut outputs = cx.clone();
                outputs.extend(cz.iter().copied());
                self.stmts.push(Stmt::Decode(DecodeCall {
                    name: "decode_full".into(),
                    outputs: outputs.clone(),
                    inputs: s_vars.clone(),
                }));
                // Check rows: generator i flips under correction bits that
                // anticommute with it locally.
                let checks: Vec<Vec<VarId>> = self
                    .code
                    .generators()
                    .iter()
                    .map(|g| {
                        let mut row = Vec::new();
                        for q in 0..self.code.n() {
                            if g.pauli().z_bit(q) {
                                row.push(cx[q]); // X correction flips Z part
                            }
                            if g.pauli().x_bit(q) {
                                row.push(cz[q]);
                            }
                        }
                        row
                    })
                    .collect();
                self.decoders.push(DecoderWiring {
                    checks,
                    syndromes: s_vars.clone(),
                    corrections: outputs,
                    flips: vec![],
                    meas_errors: vec![],
                });
                self.emit_corrections(base, &cx, Gate1::X, faulty_corrections, cyc, block);
                self.emit_corrections(base, &cz, Gate1::Z, faulty_corrections, cyc, block);
            }
        }
    }

    /// Emits a multi-round syndrome-extraction + decode + correct gadget on
    /// a block, following `schedule`: each round measures every generator —
    /// with a fresh measurement-flip indicator per site when the schedule is
    /// noisy (`s := meas[g] ^ m`) — then one decoder call per CSS sector
    /// consumes the full round-major syndrome history, outputting its
    /// corrections *and* its claimed flips (the space-time explanation of
    /// the record), and the corrections are applied.
    ///
    /// # Panics
    ///
    /// Panics when the code is not CSS or the schedule's check count does
    /// not match the generator count.
    pub fn syndrome_extraction(&mut self, block: usize, schedule: &ExtractionSchedule) {
        self.cycle += 1;
        let cyc = self.cycle;
        let n = self.num_qubits();
        let base = block * self.code.n();
        let gens: Vec<SymPauli> = self
            .code
            .generators()
            .iter()
            .map(|g| embed_block(g, block, self.code.n(), n))
            .collect();
        assert_eq!(
            schedule.num_checks(),
            gens.len(),
            "schedule must cover every generator"
        );
        let (x_idx, z_idx) = self
            .code
            .css_split()
            .expect("syndrome extraction requires a CSS code");
        // Measure: rounds × generators, with per-site flip indicators.
        let mut s_vars: Vec<VarId> = Vec::with_capacity(schedule.num_sites());
        let mut m_vars: Vec<Option<VarId>> = Vec::with_capacity(schedule.num_sites());
        for site in schedule.sites() {
            let s = self.vt.fresh(
                &format!("s{cyc}b{block}r{}_{}", site.round, site.check),
                VarRole::Syndrome,
            );
            s_vars.push(s);
            if site.noisy {
                let m = self.vt.fresh(
                    &format!("m{cyc}b{block}r{}_{}", site.round, site.check),
                    VarRole::MeasError,
                );
                self.meas_error_vars.push(m);
                m_vars.push(Some(m));
                self.stmts
                    .push(Stmt::MeasFlip(s, gens[site.check].clone(), m));
            } else {
                m_vars.push(None);
                self.stmts.push(Stmt::Meas(s, gens[site.check].clone()));
            }
        }
        // One space-time decoder call per CSS sector over the full history.
        let hx = self.code.css_hx().expect("CSS");
        let hz = self.code.css_hz().expect("CSS");
        let cz = self.extraction_decode(
            &hx,
            &x_idx,
            schedule,
            &s_vars,
            &m_vars,
            "decode_z",
            &format!("cz{cyc}b{block}"),
            &format!("fz{cyc}b{block}"),
        );
        let cx = self.extraction_decode(
            &hz,
            &z_idx,
            schedule,
            &s_vars,
            &m_vars,
            "decode_x",
            &format!("cx{cyc}b{block}"),
            &format!("fx{cyc}b{block}"),
        );
        self.emit_corrections(base, &cx, Gate1::X, false, cyc, block);
        self.emit_corrections(base, &cz, Gate1::Z, false, cyc, block);
    }

    /// One CSS sector of a multi-round extraction: allocates the correction
    /// and claimed-flip variables, emits the decoder call over the sector's
    /// round-major syndrome history, and records the wiring for `P_f`.
    #[allow(clippy::too_many_arguments)]
    fn extraction_decode(
        &mut self,
        checks: &veriqec_gf2::BitMatrix,
        idx: &[usize],
        schedule: &ExtractionSchedule,
        s_vars: &[VarId],
        m_vars: &[Option<VarId>],
        decoder_name: &str,
        corr_prefix: &str,
        flip_prefix: &str,
    ) -> Vec<VarId> {
        let corrections: Vec<VarId> = (0..self.code.n())
            .map(|q| {
                self.vt
                    .fresh(&format!("{corr_prefix}_{q}"), VarRole::Correction)
            })
            .collect();
        let mut syndromes = Vec::new();
        let mut flips = Vec::new();
        let mut meas_errors = Vec::new();
        let mut check_rows = Vec::new();
        for round in 0..schedule.rounds() {
            for (k, &i) in idx.iter().enumerate() {
                let site = schedule.history_index(round, i);
                syndromes.push(s_vars[site]);
                if let Some(m) = m_vars[site] {
                    meas_errors.push(m);
                    flips.push(
                        self.vt
                            .fresh(&format!("{flip_prefix}r{round}_{k}"), VarRole::Correction),
                    );
                }
                check_rows.push(checks.row(k).iter_ones().map(|q| corrections[q]).collect());
            }
        }
        let mut outputs = corrections.clone();
        outputs.extend(flips.iter().copied());
        self.stmts.push(Stmt::Decode(DecodeCall {
            name: decoder_name.into(),
            outputs,
            inputs: syndromes.clone(),
        }));
        self.decoders.push(DecoderWiring {
            checks: check_rows,
            syndromes,
            corrections: corrections.clone(),
            flips,
            meas_errors,
        });
        corrections
    }

    fn emit_corrections(
        &mut self,
        base: usize,
        vars: &[VarId],
        gate: Gate1,
        faulty: bool,
        cyc: usize,
        block: usize,
    ) {
        for (q, &v) in vars.iter().enumerate() {
            if faulty {
                // A fault flips the applied correction: [c ⊕ f] q *= P.
                let f = self
                    .vt
                    .fresh(&format!("f{cyc}b{block}{gate}_{q}"), VarRole::Error);
                self.error_vars.push(f);
                self.stmts.push(Stmt::CondGate1(
                    BExp::xor(BExp::var(v), BExp::var(f)),
                    gate,
                    base + q,
                ));
            } else {
                self.stmts
                    .push(Stmt::CondGate1(BExp::var(v), gate, base + q));
            }
        }
    }

    /// Finalizes: the precondition uses `(−1)^{b_i} L_i` in the given basis
    /// (`use_x_basis` per block-logical), the postcondition carries the same
    /// phases on the *current* (forward-conjugated) logical operators.
    pub fn finish(mut self, name: impl Into<String>, use_x_basis: bool) -> Scenario {
        let n = self.num_qubits();
        let gens = self.embedded_generators();
        let code_k = self.code.k();
        let mut lhs = gens.clone();
        let mut post_conjuncts: Vec<ExtPauli> =
            gens.iter().cloned().map(ExtPauli::from_sym).collect();
        let mut params = Vec::new();
        for b in 0..self.blocks {
            for i in 0..code_k {
                let bv = self
                    .vt
                    .fresh(&format!("b_{}", b * code_k + i), VarRole::Param);
                params.push(bv);
                let initial = if use_x_basis {
                    embed_block(&self.code.logical_x()[i], b, self.code.n(), n)
                } else {
                    embed_block(&self.code.logical_z()[i], b, self.code.n(), n)
                };
                let current = if use_x_basis {
                    self.logical_x[b][i].clone()
                } else {
                    self.logical_z[b][i].clone()
                };
                let mut initial_phase = initial.phase().clone();
                initial_phase.xor_var(bv);
                lhs.push(SymPauli::new(initial.pauli().clone(), initial_phase));
                let mut current_phase = current.phase().clone();
                current_phase.xor_var(bv);
                post_conjuncts.push(ExtPauli::from_sym(SymPauli::new(
                    current.pauli().clone(),
                    current_phase,
                )));
            }
        }
        Scenario {
            name: name.into(),
            program: Stmt::seq(self.stmts),
            vt: self.vt,
            num_qubits: n,
            lhs,
            post: QecAssertion::from_conjuncts(n, post_conjuncts),
            error_vars: self.error_vars,
            meas_error_vars: self.meas_error_vars,
            decoders: self.decoders,
            params,
        }
    }
}

/// Embeds a single-block operator into block `b` of an `n`-qubit system.
fn embed_block(p: &SymPauli, b: usize, block_size: usize, n: usize) -> SymPauli {
    let base = b * block_size;
    let mut x = BitVec::zeros(n);
    let mut z = BitVec::zeros(n);
    for q in 0..block_size {
        if p.pauli().x_bit(q) {
            x.set(base + q, true);
        }
        if p.pauli().z_bit(q) {
            z.set(base + q, true);
        }
    }
    let y = x.anded(&z).weight();
    SymPauli::new(
        PauliString::from_bits(x, z, (y % 4) as u8),
        p.phase().clone(),
    )
}

/// The logical-free memory scenario `E M C` (one round of error correction).
pub fn memory_scenario(code: &StabilizerCode, model: ErrorModel) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    b.inject_errors(model, "");
    b.correction_round(0, false);
    let self_dual = code.css_hx().map(|hx| {
        code.css_hz()
            .map(|hz| hx.num_rows() == hz.num_rows())
            .unwrap_or(false)
    });
    let _ = self_dual;
    b.finish(format!("{} memory EMC", code.name()), false)
}

/// The one-cycle logical-Hadamard scenario of Table 1:
/// `E_p ; H̄ ; E ; M ; C` (propagated errors, transversal logical `H`,
/// fresh errors, one correction round). Requires a self-dual CSS code where
/// transversal `H` implements the logical Hadamard.
pub fn logical_h_scenario(code: &StabilizerCode, model: ErrorModel) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    b.inject_errors(model, "p"); // propagation errors ep_i
    b.logical_transversal(Gate1::H, 0);
    b.inject_errors(model, "");
    b.correction_round(0, false);
    // |+⟩_L → |0⟩_L: precondition in the X basis, postcondition follows the
    // tracked logical (X̄ → Z̄ under H).
    b.finish(format!("{} one cycle Ep H E M C", code.name()), true)
}

/// Errors inside the correction step (`L̄ M C_E` + a clean round to catch the
/// faulted corrections).
pub fn correction_fault_scenario(code: &StabilizerCode, model: ErrorModel) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    b.inject_errors(model, "");
    b.correction_round(0, true); // faulty corrections
    b.correction_round(0, false); // clean round catches residual faults
    b.finish(format!("{} faulty-correction cycle", code.name()), false)
}

/// Multi-cycle memory: `E M C` repeated `cycles` times.
pub fn multi_cycle_scenario(code: &StabilizerCode, model: ErrorModel, cycles: usize) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    for _ in 0..cycles {
        b.inject_errors(model, &format!("c{}", b.cycle));
        b.correction_round(0, false);
    }
    b.finish(format!("{} {cycles}-cycle memory", code.name()), false)
}

/// Fig. 9: fault-tolerant logical GHZ preparation over three blocks
/// (`H̄` on block 1; correction; `CNOT̄` 1→0 and 0→2; correction).
pub fn ghz_scenario(code: &StabilizerCode, model: ErrorModel) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 3);
    b.logical_transversal(Gate1::H, 1);
    b.inject_errors(model, "a");
    for blk in 0..3 {
        b.correction_round(blk, false);
    }
    b.logical_cnot(1, 0);
    b.logical_cnot(0, 2);
    b.inject_errors(model, "b");
    for blk in 0..3 {
        b.correction_round(blk, false);
    }
    b.finish(format!("{} logical GHZ preparation", code.name()), false)
}

/// Fig. 10: a propagated error passes through a transversal logical CNOT,
/// followed by one correction round on each block.
pub fn cnot_propagation_scenario(code: &StabilizerCode, model: ErrorModel) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 2);
    b.inject_errors(model, "p");
    b.logical_cnot(0, 1);
    for blk in 0..2 {
        b.correction_round(blk, false);
    }
    b.finish(
        format!("{} CNOT with propagated errors", code.name()),
        false,
    )
}

/// Faulty-measurement memory: errors injected once, then `rounds` rounds of
/// syndrome extraction in which every readout may flip
/// (`s := meas[g] ^ m`), one space-time decode per CSS sector over the full
/// history, corrections, and the usual exact-restoration postcondition. The
/// correctness formula is checked under the *split* budget
/// `Σe ≤ t_d ∧ Σm ≤ t_m` (see `veriqec::tasks::build_problem_split`).
///
/// # Panics
///
/// Panics when the code is not CSS.
pub fn faulty_memory_scenario(code: &StabilizerCode, model: ErrorModel, rounds: usize) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    b.inject_errors(model, "");
    b.syndrome_extraction(
        0,
        &ExtractionSchedule::repeated(code.generators().len(), rounds),
    );
    b.finish(
        format!("{} {rounds}-round faulty-measurement memory", code.name()),
        false,
    )
}

/// A memory scenario with one *fixed* non-Pauli error (`T` or `H`) injected
/// on `qubit` before the correction round. Used by the case-3 pipeline.
pub fn nonpauli_scenario(code: &StabilizerCode, gate: Gate1, qubit: usize) -> Scenario {
    let mut b = ScenarioBuilder::new(code, 1);
    b.inject_fixed_error(gate, qubit);
    b.correction_round(0, false);
    // T-type errors preserve Z̄ but twist X̄; verify in the X basis (the
    // paper's |±⟩_L case). H errors are checked in both bases by callers.
    b.finish(
        format!("{} fixed {gate} error on q{qubit}", code.name()),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::steane;

    #[test]
    fn memory_scenario_shape() {
        let s = memory_scenario(&steane(), ErrorModel::YErrors);
        assert_eq!(s.num_qubits, 7);
        assert_eq!(s.error_vars.len(), 7);
        assert_eq!(s.lhs.len(), 7); // 6 gens + 1 logical
        assert_eq!(s.post.conjuncts.len(), 7);
        assert_eq!(s.decoders.len(), 2);
        assert_eq!(s.params.len(), 1);
        // 7 injections + 6 meas + 2 decodes + 14 corrections
        assert_eq!(s.program.flatten().len(), 7 + 6 + 2 + 14);
    }

    #[test]
    fn logical_h_tracks_logicals() {
        let s = logical_h_scenario(&steane(), ErrorModel::YErrors);
        // Pre logical is X̄ (X basis), post logical must be Z̄.
        let pre_logical = &s.lhs[6];
        assert!(pre_logical.pauli().z_bits().is_zero());
        let post_logical = s.post.conjuncts[6].as_single().unwrap();
        assert!(post_logical.pauli().x_bits().is_zero());
    }

    #[test]
    fn faulty_memory_scenario_shape() {
        let s = faulty_memory_scenario(&steane(), ErrorModel::YErrors, 3);
        assert_eq!(s.num_qubits, 7);
        assert_eq!(s.error_vars.len(), 7);
        assert_eq!(s.meas_error_vars.len(), 6 * 3, "one flip per site");
        // 7 injections + 18 faulty measurements + 2 decodes + 14 corrections.
        assert_eq!(s.program.flatten().len(), 7 + 18 + 2 + 14);
        // Each sector decoder consumes the full 3-round history of its
        // checks and claims one flip per site.
        assert_eq!(s.decoders.len(), 2);
        for w in &s.decoders {
            assert_eq!(w.syndromes.len(), 9);
            assert_eq!(w.flips.len(), 9);
            assert_eq!(w.meas_errors.len(), 9);
            assert_eq!(w.checks.len(), 9);
        }
        // The program uses the flip-annotated measurement statement.
        let flips = s
            .program
            .flatten()
            .iter()
            .filter(|st| matches!(st, veriqec_prog::Stmt::MeasFlip(..)))
            .count();
        assert_eq!(flips, 18);
    }

    #[test]
    fn ghz_scenario_spans_three_blocks() {
        let s = ghz_scenario(&steane(), ErrorModel::YErrors);
        assert_eq!(s.num_qubits, 21);
        assert_eq!(s.lhs.len(), 21);
        assert_eq!(s.params.len(), 3);
        assert_eq!(s.decoders.len(), 12); // 2 sectors × 3 blocks × 2 rounds
    }
}
