//! The incremental verification engine: persistent solver sessions,
//! assumption-driven weight sweeps, and the shared batch driver.
//!
//! The paper's workloads are *families* of closely related SAT queries —
//! distance discovery sweeps a weight threshold, the §6 parallel task sweeps
//! enumeration cubes, the evaluation sweeps a whole code zoo. This module
//! makes the family, not the single query, the unit of work:
//!
//! * [`DetectionSession`] — the precise-detection formula (Eqn. 15) encoded
//!   once per code; every threshold `dt` is an assumption on one shared
//!   cardinality handle, so a distance sweep pays encode + solver warm-up
//!   exactly once and reuses learnt clauses across bounds.
//! * [`CorrectionSweep`] — the same discipline for the general/constrained
//!   tasks: one [`VcSession`] per (scenario, constraints), weight bounds
//!   swept as assumptions.
//! * [`Engine`] — a batch driver owning one worker pool that serves a queue
//!   of heterogeneous [`Job`]s (code-zoo × error-model × task sweeps,
//!   including [`JobKind::Count`] failure-enumerator jobs served by the
//!   decision-diagram backend).
//!   Correction jobs stream their enumeration cubes lazily from
//!   [`SubtaskIter`]; each worker keeps one persistent session per job.
//!   Cancellation is cooperative at both levels (whole batch, single job on
//!   its first counterexample), statistics are per-job, and
//!   [`BatchReport`] renders as markdown or machine-readable JSON.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use veriqec_cexpr::{BExp, CMem, VarId};
use veriqec_codes::StabilizerCode;
use veriqec_dd::{CompileConfig, CompileError, DdStats};
use veriqec_sat::{Lit, SolverConfig, SolverStats};
use veriqec_smt::{CardinalityHandle, CheckResult, SmtContext};
use veriqec_vcgen::{VcOutcome, VcProblem, VcSession};

use crate::enumerator::{FailureEnumerator, WeightEnumerator};
use crate::parallel::{SplitConfig, SubtaskIter};
use crate::scenario::Scenario;
use crate::tasks::{build_problem_unbounded, DetectionOutcome, DistanceOutcome};

// ------------------------------------------------------------------ sessions

/// An incremental precise-detection session (Eqn. 15) for one code.
///
/// The syndrome-zero equations, the logical-flip disjunction and a single
/// support totalizer are encoded once at construction; each
/// [`DetectionSession::check`] call decides one threshold `dt` by assuming
/// `Σ support ≤ dt − 1` on the shared [`CardinalityHandle`]. Distance
/// discovery ([`DetectionSession::find_distance`]) is therefore one base
/// encoding plus a sequence of assumption-only queries, with learnt clauses
/// carried across the sweep.
#[derive(Clone, Debug)]
pub struct DetectionSession {
    ctx: SmtContext,
    ex: Vec<VarId>,
    ez: Vec<VarId>,
    support: CardinalityHandle,
    encodes: usize,
    queries: usize,
}

impl DetectionSession {
    /// Encodes the detection formula for `code` once (the shared Eqn. 15
    /// assembly of [`crate::enumerator`], plus this session's totalizer).
    pub fn new(code: &StabilizerCode, config: SolverConfig) -> Self {
        Self::from_parts(crate::enumerator::detection_parts(code, config))
    }

    /// Like [`DetectionSession::new`], but under a (possibly noisy)
    /// extraction schedule: the threshold `dt` then bounds the *total*
    /// weight `|supp(e)| + |m|` of an undetected `(error, flip)` pair whose
    /// observed syndromes vanish in every round — the faulty-measurement
    /// form of precise detection.
    pub fn with_schedule(
        code: &StabilizerCode,
        schedule: &veriqec_codes::ExtractionSchedule,
        config: SolverConfig,
    ) -> Self {
        Self::from_parts(crate::enumerator::detection_parts_with_schedule(
            code, schedule, config,
        ))
    }

    fn from_parts(parts: crate::enumerator::DetectionParts) -> Self {
        let crate::enumerator::DetectionParts {
            mut ctx,
            ex,
            ez,
            support: support_lits,
            ..
        } = parts;
        // One totalizer serves the whole sweep: the lower bound (≥ 1) is
        // constant and baked in, the upper bound arrives per query as an
        // assumption.
        let support = ctx.cardinality(&support_lits);
        if let Some(l) = support.at_least(1) {
            ctx.add_clause([l]);
        }
        DetectionSession {
            ctx,
            ex,
            ez,
            support,
            encodes: 1,
            queries: 0,
        }
    }

    /// Decides threshold `dt`: does an undetected logical error of weight
    /// in `[1, dt − 1]` exist? Solver-budget exhaustion reports
    /// [`DetectionOutcome::Inconclusive`] — never a silent `AllDetected`.
    pub fn check(&mut self, dt: usize) -> DetectionOutcome {
        self.queries += 1;
        let assumptions: Vec<Lit> = self.support.at_most(dt as i64 - 1).into_iter().collect();
        match self.ctx.check(&assumptions) {
            CheckResult::Unsat => DetectionOutcome::AllDetected,
            CheckResult::Sat => {
                let m = self.ctx.model();
                let sup = |vars: &[VarId], m: &CMem| {
                    vars.iter()
                        .enumerate()
                        .filter_map(|(q, &v)| m.get(v).as_bool().then_some(q))
                        .collect::<Vec<_>>()
                };
                DetectionOutcome::UndetectedLogical {
                    x_support: sup(&self.ex, &m),
                    z_support: sup(&self.ez, &m),
                }
            }
            CheckResult::Unknown => DetectionOutcome::Inconclusive,
        }
    }

    /// Sweeps `dt` upward until an undetected logical error appears — the
    /// paper's distance-discovery workflow, incremental: one base encoding,
    /// `max` assumption queries.
    pub fn find_distance(&mut self, max: usize) -> DistanceOutcome {
        for dt in 2..=max + 1 {
            match self.check(dt) {
                DetectionOutcome::AllDetected => {}
                DetectionOutcome::UndetectedLogical { .. } => {
                    return DistanceOutcome::Exact(dt - 1)
                }
                DetectionOutcome::Inconclusive => {
                    // The last UNSAT answer was at dt − 1, which proves
                    // weights < dt − 1 detected; claiming `dt` here would
                    // silently extend the detection claim by one weight.
                    return DistanceOutcome::Inconclusive {
                        verified_below: dt - 1,
                    };
                }
            }
        }
        DistanceOutcome::AtLeast(max + 1)
    }

    /// Installs a cooperative stop flag (see [`SmtContext::set_stop_flag`]);
    /// an aborted query reports [`DetectionOutcome::Inconclusive`].
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.ctx.set_stop_flag(flag);
    }

    /// Number of base encodings performed (always 1; exposed so sweep tests
    /// can assert nothing was re-encoded).
    pub fn encode_count(&self) -> usize {
        self.encodes
    }

    /// Number of [`DetectionSession::check`] queries so far.
    pub fn query_count(&self) -> usize {
        self.queries
    }

    /// Statistics of the underlying solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.ctx.solver_stats()
    }

    /// Why the last query came back inconclusive (see
    /// [`veriqec_sat::UnknownCause`]).
    pub fn unknown_cause(&self) -> Option<veriqec_sat::UnknownCause> {
        self.ctx.unknown_cause()
    }
}

/// An incremental weight sweep over the general/constrained correction task.
///
/// The base formula (guards, decoder condition `P_f`, any locality or
/// discreteness constraints, refutation goal) is encoded once into a
/// [`VcSession`]; the error-weight bound `Σe ≤ t` — baked into the CNF by
/// the one-shot [`crate::tasks::verify_correction`] path — becomes an
/// assumption on a shared cardinality handle, so one session answers every
/// budget `t`.
#[derive(Clone, Debug)]
pub struct CorrectionSweep {
    session: VcSession,
    weight: CardinalityHandle,
}

impl CorrectionSweep {
    /// Encodes the scenario (with optional extra constraints such as
    /// [`crate::tasks::locality_constraint`] /
    /// [`crate::tasks::discreteness_constraint`]) once, leaving the weight
    /// bound open.
    pub fn new(scenario: &Scenario, constraints: Vec<BExp>, config: SolverConfig) -> Self {
        let problem = build_problem_unbounded(scenario, constraints);
        let mut session = problem.session(config);
        let lits: Vec<Lit> = scenario
            .error_vars
            .iter()
            .map(|&v| session.ctx_mut().lit_of(v))
            .collect();
        let weight = session.ctx_mut().cardinality(&lits);
        CorrectionSweep { session, weight }
    }

    /// Decides the task under the budget `Σe ≤ max_errors`.
    pub fn check_weight(&mut self, max_errors: i64) -> VcOutcome {
        let assumptions: Vec<Lit> = self.weight.at_most(max_errors).into_iter().collect();
        self.session.query(&assumptions)
    }

    /// Number of base encodings performed (always 1).
    pub fn encode_count(&self) -> usize {
        self.session.encode_count()
    }

    /// Number of weight queries so far.
    pub fn query_count(&self) -> usize {
        self.session.query_count()
    }

    /// The underlying session (problem-size and solver statistics).
    pub fn session(&self) -> &VcSession {
        &self.session
    }
}

/// An incremental sweep over the faulty-measurement fault-tolerance grid.
///
/// The base formula of an r-round faulty-measurement scenario is encoded
/// once; each grid point `(t_data, t_meas)` is decided under assumption
/// literals drawn from four kinds of shared [`CardinalityHandle`]s — the
/// adversary's data-error and measurement-flip budgets, plus every faulty
/// decoder's *claim* budgets (`Σc ≤ t_data`, `Σf ≤ t_meas`; see
/// [`crate::tasks::build_problem_split`] for why the claims are bounded).
/// One encoding therefore serves the whole correctable frontier.
#[derive(Clone, Debug)]
pub struct FaultToleranceSweep {
    session: VcSession,
    data: CardinalityHandle,
    meas: CardinalityHandle,
    /// Per faulty decoder: (corrections handle, claimed-flips handle).
    claims: Vec<(CardinalityHandle, CardinalityHandle)>,
}

impl FaultToleranceSweep {
    /// Encodes the scenario once, leaving every budget open.
    pub fn new(scenario: &Scenario, constraints: Vec<BExp>, config: SolverConfig) -> Self {
        let problem = build_problem_unbounded(scenario, constraints);
        Self::from_problem(
            &problem,
            &scenario.error_vars,
            &scenario.meas_error_vars,
            config,
        )
    }

    /// Opens a sweep over an already-assembled unbounded problem (the batch
    /// driver's path: jobs carry problems, not scenarios).
    pub fn from_problem(
        problem: &VcProblem,
        data_vars: &[VarId],
        meas_vars: &[VarId],
        config: SolverConfig,
    ) -> Self {
        let mut session = problem.session(config);
        let lits = |session: &mut VcSession, vars: &[VarId]| -> Vec<Lit> {
            vars.iter().map(|&v| session.ctx_mut().lit_of(v)).collect()
        };
        let data_lits = lits(&mut session, data_vars);
        let meas_lits = lits(&mut session, meas_vars);
        let data = session.ctx_mut().cardinality(&data_lits);
        let meas = session.ctx_mut().cardinality(&meas_lits);
        let claims = problem
            .decoder_specs
            .iter()
            .filter(|spec| !spec.flips.is_empty())
            .map(|spec| {
                let c = lits(&mut session, &spec.corrections);
                let f = lits(&mut session, &spec.flips);
                let ch = session.ctx_mut().cardinality(&c);
                let fh = session.ctx_mut().cardinality(&f);
                (ch, fh)
            })
            .collect();
        FaultToleranceSweep {
            session,
            data,
            meas,
            claims,
        }
    }

    /// Assumption literals selecting one `(t_data, t_meas)` grid point.
    fn assumptions(&self, t_data: i64, t_meas: i64) -> Vec<Lit> {
        let mut assumptions: Vec<Lit> = self.data.at_most(t_data).into_iter().collect();
        assumptions.extend(self.meas.at_most(t_meas));
        for (c, f) in &self.claims {
            assumptions.extend(c.at_most(t_data));
            assumptions.extend(f.at_most(t_meas));
        }
        assumptions
    }

    /// Decides one grid point: is every configuration of `≤ t_data` data
    /// errors and `≤ t_meas` measurement flips corrected?
    pub fn check(&mut self, t_data: i64, t_meas: i64) -> VcOutcome {
        let assumptions = self.assumptions(t_data, t_meas);
        self.session.query(&assumptions)
    }

    /// Installs a cooperative stop flag; in-flight queries abort with
    /// [`VcOutcome::Unknown`].
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.session.set_stop_flag(flag);
    }

    /// Number of base encodings performed (always 1).
    pub fn encode_count(&self) -> usize {
        self.session.encode_count()
    }

    /// Number of grid-point queries so far.
    pub fn query_count(&self) -> usize {
        self.session.query_count()
    }

    /// The underlying session (problem-size and solver statistics).
    pub fn session(&self) -> &VcSession {
        &self.session
    }
}

/// One grid point of a fault-tolerance sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierPoint {
    /// Data-error budget.
    pub t_data: usize,
    /// Measurement-flip budget.
    pub t_meas: usize,
    /// `Some(true)` verified, `Some(false)` counterexample, `None` when the
    /// solver budget ran out or the job was cancelled mid-grid.
    pub correctable: Option<bool>,
}

/// The correctable frontier reported by a [`JobKind::FaultTolerance`] job:
/// every `(t_data, t_meas)` grid point with its verdict.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultToleranceFrontier {
    /// Grid points in row-major order (`t_data` outer, `t_meas` inner).
    pub points: Vec<FrontierPoint>,
}

impl FaultToleranceFrontier {
    /// The verdict at one grid point, if it was decided.
    pub fn correctable(&self, t_data: usize, t_meas: usize) -> Option<bool> {
        self.points
            .iter()
            .find(|p| p.t_data == t_data && p.t_meas == t_meas)
            .and_then(|p| p.correctable)
    }

    /// The largest `t_meas` verified at `t_data`, scanning contiguously
    /// from 0 (`None` when even `t_meas = 0` is not verified).
    pub fn max_t_meas(&self, t_data: usize) -> Option<usize> {
        let mut best = None;
        for tm in 0.. {
            match self.correctable(t_data, tm) {
                Some(true) => best = Some(tm),
                _ => break,
            }
        }
        best
    }
}

// -------------------------------------------------------------- batch driver

/// Configuration of the batch [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the engine-owned pool.
    pub workers: usize,
    /// Solver configuration for every session the engine opens.
    pub solver: SolverConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            solver: SolverConfig::default(),
        }
    }
}

/// A named unit of work for the batch driver.
#[derive(Clone, Debug)]
pub struct Job {
    /// Human-readable identifier, echoed in reports.
    pub name: String,
    /// What to verify.
    pub kind: JobKind,
}

/// The task behind a [`Job`].
#[derive(Clone, Debug)]
pub enum JobKind {
    /// General verification by parallel enumeration over `enum_vars`
    /// (typically the scenario's error indicators): cubes stream lazily to
    /// the pool, every worker holds one persistent session for the problem.
    Correction {
        /// The assembled problem (error model baked in).
        problem: VcProblem,
        /// Variables enumerated by the `ET` split.
        enum_vars: Vec<VarId>,
        /// Split parameters.
        split: SplitConfig,
    },
    /// One precise-detection query at threshold `dt`.
    Detection {
        /// The code under test.
        code: StabilizerCode,
        /// Detection threshold.
        dt: usize,
    },
    /// Incremental distance discovery up to `max`.
    Distance {
        /// The code under test.
        code: StabilizerCode,
        /// Largest weight to sweep.
        max: usize,
    },
    /// Exact failure weight enumerator via the decision-diagram backend
    /// ([`FailureEnumerator`]): compile once, stratify by weight, report
    /// every coefficient.
    Count {
        /// The code under test.
        code: StabilizerCode,
        /// Diagram compile budget and ordering (the job's cancel flag is
        /// layered on top as the stop flag).
        config: CompileConfig,
    },
    /// Fault-tolerance frontier sweep over an r-round faulty-measurement
    /// scenario: one base encoding, every `(t_data, t_meas)` pair up to the
    /// maxima decided as an assumption query (the [`FaultToleranceSweep`]
    /// discipline on a worker).
    FaultTolerance {
        /// The unbounded problem (no weight constraints baked in).
        problem: VcProblem,
        /// Data-error indicators.
        data_vars: Vec<VarId>,
        /// Measurement-flip indicators.
        meas_vars: Vec<VarId>,
        /// Largest data budget to sweep (inclusive).
        max_t_data: usize,
        /// Largest measurement budget to sweep (inclusive).
        max_t_meas: usize,
    },
    /// An opaque embedder-supplied callable: work that is not one of the
    /// built-in verification shapes still rides the pool, the cancel
    /// plumbing, and the reporting (the resilience tests inject
    /// deliberately panicking jobs through this).
    Custom {
        /// The callable; receives the job's cancel flag.
        run: CustomJobFn,
    },
}

/// The callable behind [`JobKind::Custom`]: gets the job's cancel flag
/// (doubling as the cooperative stop flag) and returns the job's outcome.
#[derive(Clone)]
pub struct CustomJobFn(pub Arc<dyn Fn(&AtomicBool) -> JobOutcome + Send + Sync>);

impl std::fmt::Debug for CustomJobFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CustomJobFn(..)")
    }
}

impl Job {
    /// A general-verification job.
    pub fn correction(
        name: impl Into<String>,
        problem: VcProblem,
        enum_vars: Vec<VarId>,
        split: SplitConfig,
    ) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::Correction {
                problem,
                enum_vars,
                split,
            },
        }
    }

    /// A single precise-detection job.
    pub fn detection(name: impl Into<String>, code: StabilizerCode, dt: usize) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::Detection { code, dt },
        }
    }

    /// An incremental distance-sweep job.
    pub fn distance(name: impl Into<String>, code: StabilizerCode, max: usize) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::Distance { code, max },
        }
    }

    /// A failure-enumerator counting job with the default diagram budget.
    pub fn count(name: impl Into<String>, code: StabilizerCode) -> Job {
        Job::count_with_config(name, code, CompileConfig::default())
    }

    /// A counting job with an explicit compile budget/ordering.
    pub fn count_with_config(
        name: impl Into<String>,
        code: StabilizerCode,
        config: CompileConfig,
    ) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::Count { code, config },
        }
    }

    /// A fault-tolerance frontier job over a faulty-measurement scenario:
    /// sweeps every `(t_data, t_meas)` pair up to the given maxima on one
    /// persistent session.
    pub fn fault_tolerance(
        name: impl Into<String>,
        scenario: &Scenario,
        max_t_data: usize,
        max_t_meas: usize,
    ) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::FaultTolerance {
                problem: build_problem_unbounded(scenario, vec![]),
                data_vars: scenario.error_vars.clone(),
                meas_vars: scenario.meas_error_vars.clone(),
                max_t_data,
                max_t_meas,
            },
        }
    }

    /// An opaque custom job (see [`JobKind::Custom`]).
    pub fn custom(
        name: impl Into<String>,
        run: impl Fn(&AtomicBool) -> JobOutcome + Send + Sync + 'static,
    ) -> Job {
        Job {
            name: name.into(),
            kind: JobKind::Custom {
                run: CustomJobFn(Arc::new(run)),
            },
        }
    }
}

/// Outcome of one [`Job`].
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Correction: every subtask refuted.
    Verified,
    /// Correction: a violating assignment was found.
    CounterExample(CMem),
    /// Correction: some subtask exhausted its solver budget.
    Unknown,
    /// Detection result.
    Detection(DetectionOutcome),
    /// Distance-sweep result.
    Distance(DistanceOutcome),
    /// Counting result: the full failure weight enumerator.
    Enumerator(WeightEnumerator),
    /// Fault-tolerance sweep result: the correctable frontier.
    Frontier(FaultToleranceFrontier),
    /// The batch was cancelled before this job completed.
    Cancelled,
}

impl JobOutcome {
    /// True for [`JobOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, JobOutcome::Verified)
    }

    /// Collapses to the sequential driver's [`VcOutcome`] (used by
    /// [`crate::parallel::check_parallel`]); detection/distance outcomes and
    /// cancellation map to [`VcOutcome::Unknown`].
    pub fn into_vc(self) -> VcOutcome {
        match self {
            JobOutcome::Verified => VcOutcome::Verified,
            JobOutcome::CounterExample(m) => VcOutcome::CounterExample(m),
            _ => VcOutcome::Unknown,
        }
    }

    /// True when the job ran to a definite verdict. `Unknown`,
    /// `Cancelled`, inconclusive detection/distance outcomes and frontiers
    /// with undecided grid points are *not* conclusive — a batch containing
    /// one is a partial result, and the `tables` smoke modes exit nonzero
    /// on it so CI cannot mistake a half-finished report for a green run.
    pub fn is_conclusive(&self) -> bool {
        match self {
            JobOutcome::Unknown | JobOutcome::Cancelled => false,
            JobOutcome::Detection(DetectionOutcome::Inconclusive) => false,
            JobOutcome::Distance(DistanceOutcome::Inconclusive { .. }) => false,
            JobOutcome::Frontier(f) => f.points.iter().all(|p| p.correctable.is_some()),
            _ => true,
        }
    }

    /// Short machine-readable tag for reports.
    fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Verified => "verified",
            JobOutcome::CounterExample(_) => "counterexample",
            JobOutcome::Unknown => "unknown",
            JobOutcome::Detection(DetectionOutcome::AllDetected) => "all_detected",
            JobOutcome::Detection(DetectionOutcome::UndetectedLogical { .. }) => {
                "undetected_logical"
            }
            JobOutcome::Detection(DetectionOutcome::Inconclusive) => "inconclusive",
            JobOutcome::Distance(DistanceOutcome::Exact(_)) => "distance_exact",
            JobOutcome::Distance(DistanceOutcome::AtLeast(_)) => "distance_at_least",
            JobOutcome::Distance(DistanceOutcome::Inconclusive { .. }) => "distance_inconclusive",
            JobOutcome::Enumerator(_) => "enumerator",
            JobOutcome::Frontier(_) => "frontier",
            JobOutcome::Cancelled => "cancelled",
        }
    }
}

/// How one generated markdown column renders its metric.
enum ColStyle {
    /// Integer count, verbatim.
    Count,
    /// Real value with two decimals.
    Fixed2,
    /// Ratio in `[0, 1]` shown as a one-decimal percentage.
    Pct1,
}

/// One generated report column: the metric it reads and how it renders.
/// Markdown rows and headers both come from this table, so adding a metric
/// to a stats `to_metrics()` plus one entry here is the whole change.
struct MdColumn {
    header: &'static str,
    metric: &'static str,
    style: ColStyle,
}

impl MdColumn {
    fn render(&self, m: &veriqec_obs::MetricsSnapshot) -> String {
        match self.style {
            ColStyle::Count => format!("{}", m.count(self.metric)),
            ColStyle::Fixed2 => format!("{:.2}", m.value(self.metric)),
            ColStyle::Pct1 => format!("{:.1}", m.value(self.metric) * 100.0),
        }
    }
}

const MD_COLUMNS: &[MdColumn] = &[
    MdColumn {
        header: "conflicts",
        metric: "conflicts",
        style: ColStyle::Count,
    },
    MdColumn {
        header: "decisions",
        metric: "decisions",
        style: ColStyle::Count,
    },
    MdColumn {
        header: "mean LBD",
        metric: "mean_lbd",
        style: ColStyle::Fixed2,
    },
    MdColumn {
        header: "dd nodes",
        metric: "dd_nodes",
        style: ColStyle::Count,
    },
    MdColumn {
        header: "dd hit%",
        metric: "dd_hit_rate",
        style: ColStyle::Pct1,
    },
    MdColumn {
        header: "dd gc",
        metric: "dd_gc_runs",
        style: ColStyle::Count,
    },
    MdColumn {
        header: "dd swaps",
        metric: "dd_reorder_swaps",
        style: ColStyle::Count,
    },
];

/// Per-job result within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's name.
    pub name: String,
    /// The job's outcome.
    pub outcome: JobOutcome,
    /// Work items issued (enumeration cubes for correction jobs, 1 for
    /// detection/distance jobs claimed by a worker, 0 if never started).
    pub subtasks: usize,
    /// Summed worker time spent on this job (CPU-side, not wall clock;
    /// excludes queue wait — each item is timed from its claim).
    pub busy_time: Duration,
    /// Time from batch start to the job's first claim by a worker (the
    /// whole batch for a job no worker ever reached).
    pub queue_wait: Duration,
    /// Why an inconclusive outcome is inconclusive: `"conflict_budget"`,
    /// `"interrupted"`, `"node_limit(N nodes)"`, or `"cancelled"`. `None`
    /// for conclusive outcomes.
    pub reason: Option<String>,
    /// Solver statistics summed over every session that served this job.
    pub stats: SolverStats,
    /// Decision-diagram statistics (counting jobs; zero elsewhere).
    pub dd: DdStats,
}

impl JobReport {
    /// The job's solver and DD statistics lowered into one
    /// [`veriqec_obs::MetricsSnapshot`] — the single table the markdown
    /// and JSON report columns are generated from.
    pub fn metrics(&self) -> veriqec_obs::MetricsSnapshot {
        let mut m = self.stats.to_metrics();
        m.merge(&self.dd.to_metrics());
        m
    }
}

/// Result of one [`Engine::run`] batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport>,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Aggregated per-phase span summary, attached by trace-collecting
    /// drivers via [`BatchReport::attach_phase_summary`]; empty when
    /// tracing was off.
    pub phases: Vec<veriqec_obs::PhaseSummary>,
}

impl BatchReport {
    /// Solver statistics summed across all jobs.
    pub fn total_stats(&self) -> SolverStats {
        self.jobs.iter().map(|j| j.stats).sum()
    }

    /// Decision-diagram statistics summed across all jobs.
    pub fn total_dd_stats(&self) -> DdStats {
        self.jobs.iter().map(|j| j.dd).sum()
    }

    /// Names of jobs without a definite verdict (see
    /// [`JobOutcome::is_conclusive`]). Empty for a fully-resolved batch;
    /// the `tables` smoke modes exit nonzero when it is not.
    pub fn incomplete_jobs(&self) -> Vec<&str> {
        self.jobs
            .iter()
            .filter(|j| !j.outcome.is_conclusive())
            .map(|j| j.name.as_str())
            .collect()
    }

    /// Like [`BatchReport::incomplete_jobs`], with each job's budget-trip
    /// reason (when one was recorded) — what the `tables` smoke gates print
    /// instead of a bare "inconclusive".
    pub fn incomplete_jobs_with_reasons(&self) -> Vec<(&str, Option<&str>)> {
        self.jobs
            .iter()
            .filter(|j| !j.outcome.is_conclusive())
            .map(|j| (j.name.as_str(), j.reason.as_deref()))
            .collect()
    }

    /// Attaches the per-phase span summary (from
    /// [`veriqec_obs::Collector::phase_summary`]) so the markdown and JSON
    /// renderings include it.
    pub fn attach_phase_summary(&mut self, phases: Vec<veriqec_obs::PhaseSummary>) {
        self.phases = phases;
    }

    /// Renders the batch as a markdown table. The solver/DD columns are
    /// generated from one internal column table over the jobs' metric
    /// snapshots — the same snapshots the JSON rendering draws from.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| job | outcome | subtasks | busy | queue |");
        for col in MD_COLUMNS {
            out.push_str(&format!(" {} |", col.header));
        }
        out.push('\n');
        out.push_str("|-----|---------|----------|------|-------|");
        for col in MD_COLUMNS {
            out.push_str(&format!("{}|", "-".repeat(col.header.len() + 2)));
        }
        out.push('\n');
        for j in &self.jobs {
            let m = j.metrics();
            out.push_str(&format!(
                "| {} | {} | {} | {:?} | {:?} |",
                j.name,
                j.outcome.tag(),
                j.subtasks,
                j.busy_time,
                j.queue_wait,
            ));
            for col in MD_COLUMNS {
                out.push_str(&format!(" {} |", col.render(&m)));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "\n{} jobs on {} workers in {:?}\n",
            self.jobs.len(),
            self.workers,
            self.wall_time
        ));
        if !self.phases.is_empty() {
            out.push_str("\n| phase | spans | total |\n|-------|-------|-------|\n");
            for p in &self.phases {
                out.push_str(&format!(
                    "| {}/{} | {} | {:.3}ms |\n",
                    p.cat,
                    p.name,
                    p.count,
                    p.total_us as f64 / 1e3
                ));
            }
        }
        out
    }

    /// Renders the batch as machine-readable JSON (stable field names; no
    /// external serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"wall_time_ms\":{:.3},\"workers\":{},\"jobs\":[",
            self.wall_time.as_secs_f64() * 1e3,
            self.workers
        ));
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"outcome\":\"{}\"",
                json_escape(&j.name),
                j.outcome.tag()
            ));
            match &j.outcome {
                JobOutcome::Distance(DistanceOutcome::Exact(d)) => {
                    out.push_str(&format!(",\"distance\":{d}"));
                }
                JobOutcome::Distance(DistanceOutcome::AtLeast(d)) => {
                    out.push_str(&format!(",\"distance_at_least\":{d}"));
                }
                JobOutcome::Distance(DistanceOutcome::Inconclusive { verified_below }) => {
                    out.push_str(&format!(",\"verified_below\":{verified_below}"));
                }
                JobOutcome::Detection(DetectionOutcome::UndetectedLogical {
                    x_support,
                    z_support,
                }) => {
                    out.push_str(&format!(
                        ",\"x_support\":{x_support:?},\"z_support\":{z_support:?}"
                    ));
                }
                JobOutcome::Enumerator(e) => {
                    if let Some(w) = e.min_weight {
                        out.push_str(&format!(",\"min_weight\":{w}"));
                    }
                    out.push_str(&format!(",\"coefficients\":{:?}", e.coefficients));
                }
                JobOutcome::Frontier(f) => {
                    out.push_str(",\"points\":[");
                    for (k, p) in f.points.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        let verdict = match p.correctable {
                            Some(true) => "true",
                            Some(false) => "false",
                            None => "null",
                        };
                        out.push_str(&format!(
                            "{{\"t_data\":{},\"t_meas\":{},\"correctable\":{verdict}}}",
                            p.t_data, p.t_meas
                        ));
                    }
                    out.push(']');
                }
                _ => {}
            }
            out.push_str(&format!(
                ",\"subtasks\":{},\"busy_ms\":{:.3},\"queue_wait_ms\":{:.3}",
                j.subtasks,
                j.busy_time.as_secs_f64() * 1e3,
                j.queue_wait.as_secs_f64() * 1e3,
            ));
            if let Some(reason) = &j.reason {
                out.push_str(&format!(",\"reason\":\"{}\"", json_escape(reason)));
            }
            // Solver columns straight from the metric snapshot (same
            // source as the markdown table); DD columns only for jobs that
            // touched the counting backend, as before.
            push_metrics_json(&mut out, &j.stats.to_metrics());
            if j.dd != DdStats::default() {
                push_metrics_json(&mut out, &j.dd.to_metrics());
            }
            out.push('}');
        }
        out.push(']');
        if !self.phases.is_empty() {
            out.push_str(",\"phases\":[");
            for (i, p) in self.phases.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"cat\":\"{}\",\"name\":\"{}\",\"count\":{},\"total_us\":{}}}",
                    json_escape(&p.cat),
                    json_escape(&p.name),
                    p.count,
                    p.total_us
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Appends every snapshot entry as a `,"name":value` JSON field: counts as
/// integers, derived values with fixed four-decimal precision.
fn push_metrics_json(out: &mut String, m: &veriqec_obs::MetricsSnapshot) {
    for (name, value) in &m.entries {
        match value {
            veriqec_obs::MetricValue::Count(c) => {
                out.push_str(&format!(",\"{name}\":{c}"));
            }
            veriqec_obs::MetricValue::Value(v) => {
                out.push_str(&format!(",\"{name}\":{v:.4}"));
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locks a mutex, recovering from poisoning: a worker that panicked
/// mid-update left at worst a partially bumped statistic behind, and a
/// resident process must degrade that to one job erroring — not cascade
/// panics through every later status read until the daemon dies.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a panic payload (the `&str`/`String` payloads that
/// `panic!` and the assert macros produce).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

// ----------------------------------------------------------- the work queue

/// A claimable work item: one enumeration cube of a correction job, or the
/// whole of a detection/distance job.
enum WorkItem {
    Cube(usize, Vec<(VarId, bool)>),
    Whole(usize),
}

/// Where a job's remaining work comes from.
enum JobSource {
    /// Lazily streamed enumeration cubes.
    Cubes(SubtaskIter),
    /// A single indivisible item, claimed at most once.
    Whole { claimed: bool },
    /// Nothing left to hand out.
    Exhausted,
}

/// Shared per-job state while a batch runs.
struct JobState {
    name: String,
    kind: JobKind,
    /// Raised on the job's first counterexample or on batch cancellation;
    /// doubles as the cooperative stop flag of every session serving the job.
    cancel: Arc<AtomicBool>,
    source: Mutex<JobSource>,
    outcome: Mutex<Option<JobOutcome>>,
    stats: Mutex<SolverStats>,
    dd: Mutex<DdStats>,
    busy: Mutex<Duration>,
    issued: AtomicUsize,
    /// When the job entered the queue (batch start).
    queued_at: Instant,
    /// Time from enqueue to the first worker claim; `None` until claimed.
    queue_wait: Mutex<Option<Duration>>,
    /// First recorded budget-trip reason (see [`JobReport::reason`]).
    reason: Mutex<Option<String>>,
}

impl JobState {
    fn new(job: Job) -> Self {
        let source = match &job.kind {
            JobKind::Correction {
                enum_vars, split, ..
            } => JobSource::Cubes(SubtaskIter::new(enum_vars.clone(), *split)),
            JobKind::Detection { .. }
            | JobKind::Distance { .. }
            | JobKind::Count { .. }
            | JobKind::FaultTolerance { .. }
            | JobKind::Custom { .. } => JobSource::Whole { claimed: false },
        };
        JobState {
            name: job.name,
            kind: job.kind,
            cancel: Arc::new(AtomicBool::new(false)),
            source: Mutex::new(source),
            outcome: Mutex::new(None),
            stats: Mutex::new(SolverStats::default()),
            dd: Mutex::new(DdStats::default()),
            busy: Mutex::new(Duration::ZERO),
            issued: AtomicUsize::new(0),
            queued_at: Instant::now(),
            queue_wait: Mutex::new(None),
            reason: Mutex::new(None),
        }
    }

    /// Records how long the job waited in the queue, on its first claim.
    fn mark_claimed(&self) {
        let mut qw = lock_unpoisoned(&self.queue_wait);
        if qw.is_none() {
            *qw = Some(self.queued_at.elapsed());
        }
    }

    /// Records the first budget-trip reason (later ones add no information:
    /// the first trip is what stopped the job making progress).
    fn record_reason(&self, reason: String) {
        let mut r = lock_unpoisoned(&self.reason);
        if r.is_none() {
            *r = Some(reason);
        }
    }

    /// Records `outcome` unless one is already present — except that a
    /// counterexample always wins over a previously recorded `Unknown`
    /// (another worker's budget exhaustion must not mask a real violation).
    fn record(&self, outcome: JobOutcome) {
        let mut o = lock_unpoisoned(&self.outcome);
        let displaces = matches!(outcome, JobOutcome::CounterExample(_))
            && matches!(*o, Some(JobOutcome::Unknown));
        if o.is_none() || displaces {
            *o = Some(outcome);
        }
    }
}

/// Claims the next work item, scanning jobs in submission order (so a batch
/// drains front-to-back, with later jobs picked up as soon as workers free
/// up or earlier jobs cancel).
fn next_item(states: &[JobState]) -> Option<WorkItem> {
    for (j, st) in states.iter().enumerate() {
        if st.cancel.load(Ordering::Relaxed) {
            continue;
        }
        let mut src = lock_unpoisoned(&st.source);
        match &mut *src {
            JobSource::Cubes(iter) => {
                if let Some(cube) = iter.next() {
                    st.issued.fetch_add(1, Ordering::Relaxed);
                    return Some(WorkItem::Cube(j, cube));
                }
                *src = JobSource::Exhausted;
                // Last cube issued ≈ job done: close enough for the
                // heartbeat's ETA (in-flight cubes finish within one claim).
                veriqec_obs::heartbeat::JOBS_DONE.add(1);
            }
            JobSource::Whole { claimed } if !*claimed => {
                *claimed = true;
                st.issued.fetch_add(1, Ordering::Relaxed);
                return Some(WorkItem::Whole(j));
            }
            _ => {}
        }
    }
    None
}

/// The shared batch driver: one worker pool serving a queue of heterogeneous
/// verification jobs.
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    cancel: Arc<AtomicBool>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given pool configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The batch-level cancel flag: raising it (from any thread, e.g. a
    /// signal handler or a deadline watchdog) aborts in-flight solver calls
    /// cooperatively and drains the queue without starting new work.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Runs a batch of jobs to completion (or cancellation) on the
    /// engine-owned worker pool and reports per-job outcomes and statistics.
    pub fn run(&self, jobs: Vec<Job>) -> BatchReport {
        let start = Instant::now();
        let _batch_span = veriqec_obs::span("engine", "batch");
        let states: Vec<JobState> = jobs.into_iter().map(JobState::new).collect();
        // Unconditional (the stores are relaxed atomics, cheap either way):
        // a resident process runs many batches in one lifetime, and stale
        // conflict/DD/phase state from the previous batch would otherwise
        // surface as a bogus jobs-done fraction and negative-drift ETA the
        // moment someone turns the heartbeat on mid-run.
        veriqec_obs::heartbeat::reset_progress();
        veriqec_obs::heartbeat::JOBS_TOTAL.set(states.len() as u64);
        if veriqec_obs::active() {
            // Indices, not names, to keep the instants cheap; the per-claim
            // job spans carry the names.
            for i in 0..states.len() {
                veriqec_obs::instant("engine", "job_queued", &[("job", i as f64)]);
            }
        }
        let workers = self.config.workers.max(1);
        let active = AtomicUsize::new(workers);
        let done = Mutex::new(false);
        let done_cv = std::sync::Condvar::new();
        // Signals worker exit from a destructor so the countdown also runs
        // when a worker unwinds on panic — otherwise the watchdog below
        // would wait forever and `thread::scope` could never join to
        // propagate the panic.
        struct WorkerExit<'a> {
            active: &'a AtomicUsize,
            done: &'a Mutex<bool>,
            done_cv: &'a std::sync::Condvar,
        }
        impl Drop for WorkerExit<'_> {
            fn drop(&mut self) {
                if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    *self
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
                    self.done_cv.notify_all();
                }
            }
        }
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _exit = WorkerExit {
                        active: &active,
                        done: &done,
                        done_cv: &done_cv,
                    };
                    self.worker(&states);
                });
            }
            // Watchdog: the solvers poll only the per-job flags, so a batch
            // cancel raised while every worker is mid-solve must be fanned
            // out here — the workers' own loop-top check never runs then.
            // Exits immediately when the last worker signals completion;
            // otherwise re-checks the cancel flag every millisecond.
            scope.spawn(|| {
                let mut finished = done
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*finished {
                    if self.cancel.load(Ordering::Relaxed) {
                        for st in &states {
                            st.cancel.store(true, Ordering::Relaxed);
                        }
                        break;
                    }
                    finished = match done_cv.wait_timeout(finished, Duration::from_millis(1)) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            });
        });
        let batch_cancelled = self.cancel.load(Ordering::Relaxed);
        let jobs = states
            .into_iter()
            .map(|st| {
                let recorded = st
                    .outcome
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner);
                let cancelled = batch_cancelled || st.cancel.load(Ordering::Relaxed);
                let outcome = match recorded {
                    Some(o) => o,
                    // No recorded outcome: either the job ran all its cubes
                    // without a violation (correction ⇒ verified) or it was
                    // cancelled before completing.
                    None if cancelled => JobOutcome::Cancelled,
                    None => match st.kind {
                        JobKind::Correction { .. } => JobOutcome::Verified,
                        _ => JobOutcome::Cancelled,
                    },
                };
                let mut reason = st
                    .reason
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner);
                if reason.is_none() && matches!(outcome, JobOutcome::Cancelled) {
                    reason = Some("cancelled".to_string());
                }
                JobReport {
                    name: st.name,
                    outcome,
                    subtasks: st.issued.into_inner(),
                    busy_time: st.busy.into_inner().unwrap_or_else(PoisonError::into_inner),
                    // A job no worker ever claimed waited out the batch.
                    queue_wait: st
                        .queue_wait
                        .into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .unwrap_or_else(|| start.elapsed()),
                    reason,
                    stats: st
                        .stats
                        .into_inner()
                        .unwrap_or_else(PoisonError::into_inner),
                    dd: st.dd.into_inner().unwrap_or_else(PoisonError::into_inner),
                }
            })
            .collect();
        BatchReport {
            jobs,
            wall_time: start.elapsed(),
            workers,
            phases: Vec::new(),
        }
    }

    /// One worker: claim items until the queue drains or the batch cancels.
    /// Correction jobs get one persistent [`VcSession`] per worker (base
    /// encoded once, cubes arrive as assumptions).
    fn worker(&self, states: &[JobState]) {
        let mut sessions: HashMap<usize, VcSession> = HashMap::new();
        loop {
            if self.cancel.load(Ordering::Relaxed) {
                for st in states {
                    st.cancel.store(true, Ordering::Relaxed);
                }
                break;
            }
            let Some(item) = next_item(states) else {
                break;
            };
            let idx = match &item {
                WorkItem::Cube(j, _) | WorkItem::Whole(j) => *j,
            };
            let is_whole = matches!(item, WorkItem::Whole(_));
            // Queue wait ends at the first claim and busy time starts
            // after it, so the two never overlap: busy measures work, not
            // time spent parked behind earlier jobs.
            states[idx].mark_claimed();
            if veriqec_obs::heartbeat::progress_enabled() {
                veriqec_obs::heartbeat::set_phase(&states[idx].name);
            }
            let _job_span =
                veriqec_obs::span_with("engine", || format!("job:{}", states[idx].name));
            let t0 = Instant::now();
            // One work item is the panic-containment unit: a panicking job
            // (bad input, a bug in one backend) must degrade to that job
            // erroring with a recorded reason — never to a dead worker or a
            // poisoned-mutex cascade, which a resident server cannot afford.
            let work = std::panic::AssertUnwindSafe(|| match item {
                WorkItem::Cube(j, cube) => {
                    let st = &states[j];
                    let session = sessions.entry(j).or_insert_with(|| {
                        let JobKind::Correction { problem, .. } = &st.kind else {
                            unreachable!("cubes only stream from correction jobs")
                        };
                        let mut s = problem.session(self.config.solver);
                        s.set_stop_flag(Arc::clone(&st.cancel));
                        s
                    });
                    let assumptions: Vec<Lit> = cube
                        .iter()
                        .map(|&(v, val)| {
                            let l = session.ctx_mut().lit_of(v);
                            if val {
                                l
                            } else {
                                !l
                            }
                        })
                        .collect();
                    match session.query(&assumptions) {
                        VcOutcome::Verified => {}
                        VcOutcome::CounterExample(m) => {
                            st.record(JobOutcome::CounterExample(m));
                            st.cancel.store(true, Ordering::Relaxed);
                        }
                        VcOutcome::Unknown => {
                            // Either a genuine budget exhaustion or a
                            // cooperative abort after cancellation; in the
                            // latter case a real outcome is already recorded
                            // and wins.
                            if !st.cancel.load(Ordering::Relaxed) {
                                st.record(JobOutcome::Unknown);
                                if let Some(cause) = session.unknown_cause() {
                                    st.record_reason(cause.to_string());
                                }
                            }
                        }
                    }
                }
                WorkItem::Whole(j) => {
                    let st = &states[j];
                    match &st.kind {
                        JobKind::Detection { code, dt } => {
                            let mut s = DetectionSession::new(code, self.config.solver);
                            s.set_stop_flag(Arc::clone(&st.cancel));
                            let out = s.check(*dt);
                            if matches!(out, DetectionOutcome::Inconclusive) {
                                if let Some(cause) = s.unknown_cause() {
                                    st.record_reason(cause.to_string());
                                }
                            }
                            *lock_unpoisoned(&st.stats) += s.solver_stats();
                            st.record(JobOutcome::Detection(out));
                        }
                        JobKind::Distance { code, max } => {
                            let mut s = DetectionSession::new(code, self.config.solver);
                            s.set_stop_flag(Arc::clone(&st.cancel));
                            let out = s.find_distance(*max);
                            if matches!(out, DistanceOutcome::Inconclusive { .. }) {
                                if let Some(cause) = s.unknown_cause() {
                                    st.record_reason(cause.to_string());
                                }
                            }
                            *lock_unpoisoned(&st.stats) += s.solver_stats();
                            st.record(JobOutcome::Distance(out));
                        }
                        JobKind::Count { code, config } => {
                            // Layer the job's cancel flag on top of any
                            // caller-supplied stop flags.
                            let mut config = config.clone();
                            config.stop_flags.push(Arc::clone(&st.cancel));
                            match FailureEnumerator::new(code, &config) {
                                Ok(mut fe) => {
                                    let out = fe.enumerator();
                                    *lock_unpoisoned(&st.dd) += fe.dd_stats();
                                    st.record(JobOutcome::Enumerator(out));
                                }
                                Err(CompileError::NodeLimit { nodes }) => {
                                    // Surface how far the diagram got so a
                                    // report consumer can tune the budget.
                                    lock_unpoisoned(&st.dd).nodes += nodes as u64;
                                    st.record_reason(format!("node_limit({nodes} nodes)"));
                                    st.record(JobOutcome::Unknown);
                                }
                                // Cancelled: a real outcome or the cancel
                                // flag already explains the job; record
                                // nothing.
                                Err(CompileError::Cancelled) => {}
                            }
                        }
                        JobKind::FaultTolerance {
                            problem,
                            data_vars,
                            meas_vars,
                            max_t_data,
                            max_t_meas,
                        } => {
                            let mut sweep = FaultToleranceSweep::from_problem(
                                problem,
                                data_vars,
                                meas_vars,
                                self.config.solver,
                            );
                            sweep.set_stop_flag(Arc::clone(&st.cancel));
                            let mut points = Vec::new();
                            'grid: for td in 0..=*max_t_data {
                                for tm in 0..=*max_t_meas {
                                    let correctable = match sweep.check(td as i64, tm as i64) {
                                        VcOutcome::Verified => Some(true),
                                        VcOutcome::CounterExample(_) => Some(false),
                                        VcOutcome::Unknown => None,
                                    };
                                    points.push(FrontierPoint {
                                        t_data: td,
                                        t_meas: tm,
                                        correctable,
                                    });
                                    if correctable.is_none() && st.cancel.load(Ordering::Relaxed) {
                                        break 'grid;
                                    }
                                }
                            }
                            *lock_unpoisoned(&st.stats) += sweep.session().solver_stats();
                            if points.iter().any(|p| p.correctable.is_none()) {
                                if let Some(cause) = sweep.session().unknown_cause() {
                                    st.record_reason(cause.to_string());
                                }
                            }
                            // A batch cancellation mid-grid is not a result;
                            // leaving the outcome empty reports Cancelled.
                            if !st.cancel.load(Ordering::Relaxed) {
                                st.record(JobOutcome::Frontier(FaultToleranceFrontier { points }));
                            }
                        }
                        JobKind::Custom { run } => {
                            let out = (run.0)(&st.cancel);
                            st.record(out);
                        }
                        JobKind::Correction { .. } => {
                            unreachable!("correction jobs stream cubes")
                        }
                    }
                }
            });
            if let Err(payload) = std::panic::catch_unwind(work) {
                let st = &states[idx];
                st.record_reason(format!("panicked: {}", panic_message(payload.as_ref())));
                st.record(JobOutcome::Unknown);
                // The job's state is suspect: stop handing it work, abort
                // its in-flight queries on other workers, drop any session
                // this worker kept for it.
                st.cancel.store(true, Ordering::Relaxed);
                sessions.remove(&idx);
            }
            *lock_unpoisoned(&states[idx].busy) += t0.elapsed();
            if is_whole {
                veriqec_obs::heartbeat::JOBS_DONE.add(1);
            }
        }
        // Fold this worker's session statistics into their jobs.
        for (j, s) in sessions {
            *lock_unpoisoned(&states[j].stats) += s.solver_stats();
        }
        // Hand this worker's buffered trace events to the global sink
        // before the closure returns. `thread::scope` considers a thread
        // finished when its closure returns — thread-local destructors may
        // still be running after the scope joins — so relying on the
        // buffer's drop-flush would race with a post-run drain.
        veriqec_obs::flush_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use crate::tasks::{build_problem, verify_correction, verify_detection};
    use veriqec_codes::{five_qubit, rotated_surface, steane};

    #[test]
    fn conclusiveness_separates_verdicts_from_partial_results() {
        assert!(JobOutcome::Verified.is_conclusive());
        assert!(JobOutcome::Distance(DistanceOutcome::Exact(3)).is_conclusive());
        assert!(!JobOutcome::Unknown.is_conclusive());
        assert!(!JobOutcome::Cancelled.is_conclusive());
        assert!(!JobOutcome::Detection(DetectionOutcome::Inconclusive).is_conclusive());
        assert!(
            !JobOutcome::Distance(DistanceOutcome::Inconclusive { verified_below: 2 })
                .is_conclusive()
        );
        // A frontier is conclusive only when every grid point has a verdict.
        let point = |correctable| FrontierPoint {
            t_data: 0,
            t_meas: 0,
            correctable,
        };
        let full = FaultToleranceFrontier {
            points: vec![point(Some(true)), point(Some(false))],
        };
        let partial = FaultToleranceFrontier {
            points: vec![point(Some(true)), point(None)],
        };
        assert!(JobOutcome::Frontier(full).is_conclusive());
        assert!(!JobOutcome::Frontier(partial.clone()).is_conclusive());

        let report = BatchReport {
            jobs: vec![
                JobReport {
                    name: "done".into(),
                    outcome: JobOutcome::Verified,
                    subtasks: 1,
                    busy_time: Duration::ZERO,
                    queue_wait: Duration::ZERO,
                    reason: None,
                    stats: SolverStats::default(),
                    dd: DdStats::default(),
                },
                JobReport {
                    name: "half".into(),
                    outcome: JobOutcome::Frontier(partial),
                    subtasks: 1,
                    busy_time: Duration::ZERO,
                    queue_wait: Duration::ZERO,
                    reason: Some("conflict_budget".into()),
                    stats: SolverStats::default(),
                    dd: DdStats::default(),
                },
            ],
            wall_time: Duration::ZERO,
            workers: 1,
            phases: Vec::new(),
        };
        assert_eq!(report.incomplete_jobs(), vec!["half"]);
        assert_eq!(
            report.incomplete_jobs_with_reasons(),
            vec![("half", Some("conflict_budget"))]
        );
    }

    #[test]
    fn detection_session_sweep_is_single_encode() {
        let code = rotated_surface(3);
        let mut session = DetectionSession::new(&code, SolverConfig::default());
        let out = session.find_distance(4);
        assert_eq!(out, DistanceOutcome::Exact(3));
        assert_eq!(session.encode_count(), 1, "one base encoding per code");
        assert_eq!(session.query_count(), 3, "dt = 2, 3, 4");
    }

    #[test]
    fn detection_session_matches_fresh_solves() {
        let code = steane();
        let mut session = DetectionSession::new(&code, SolverConfig::default());
        for dt in 2..=5 {
            let incremental = session.check(dt);
            let fresh = verify_detection(&code, dt, SolverConfig::default());
            assert_eq!(
                std::mem::discriminant(&incremental),
                std::mem::discriminant(&fresh),
                "dt={dt}: {incremental:?} vs {fresh:?}"
            );
        }
        assert_eq!(session.encode_count(), 1);
    }

    #[test]
    fn correction_sweep_matches_fresh_solves() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let mut sweep = CorrectionSweep::new(&scenario, vec![], SolverConfig::default());
        for t in 0..=2i64 {
            let incremental = sweep.check_weight(t);
            let fresh = verify_correction(&scenario, t, SolverConfig::default()).outcome;
            assert_eq!(
                std::mem::discriminant(&incremental),
                std::mem::discriminant(&fresh),
                "t={t}: {incremental:?} vs {fresh:?}"
            );
        }
        // Sweeping down again after the SAT answer stays correct.
        assert!(sweep.check_weight(1).is_verified());
        assert_eq!(sweep.encode_count(), 1);
        assert_eq!(sweep.query_count(), 4);
    }

    #[test]
    fn fault_tolerance_sweep_matches_fresh_solves() {
        use crate::scenario::faulty_memory_scenario;
        use crate::tasks::verify_fault_tolerance;
        let scenario = faulty_memory_scenario(&steane(), ErrorModel::YErrors, 3);
        let mut sweep = FaultToleranceSweep::new(&scenario, vec![], SolverConfig::default());
        for td in 0..=1i64 {
            for tm in 0..=1i64 {
                let incremental = sweep.check(td, tm);
                let fresh =
                    verify_fault_tolerance(&scenario, td, tm, SolverConfig::default()).outcome;
                assert_eq!(
                    std::mem::discriminant(&incremental),
                    std::mem::discriminant(&fresh),
                    "(t_d={td}, t_m={tm}): {incremental:?} vs {fresh:?}"
                );
            }
        }
        assert_eq!(sweep.encode_count(), 1, "one base encoding for the grid");
        assert_eq!(sweep.query_count(), 4);
    }

    #[test]
    fn fault_tolerance_job_reports_the_textbook_frontier() {
        use crate::scenario::faulty_memory_scenario;
        let r1 = faulty_memory_scenario(&steane(), ErrorModel::YErrors, 1);
        let r3 = faulty_memory_scenario(&steane(), ErrorModel::YErrors, 3);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            solver: SolverConfig::default(),
        });
        let report = engine.run(vec![
            Job::fault_tolerance("steane_r1", &r1, 1, 1),
            Job::fault_tolerance("steane_r3", &r3, 1, 1),
        ]);
        let JobOutcome::Frontier(f1) = &report.jobs[0].outcome else {
            panic!("{:?}", report.jobs[0].outcome);
        };
        let JobOutcome::Frontier(f3) = &report.jobs[1].outcome else {
            panic!("{:?}", report.jobs[1].outcome);
        };
        // Single round: t_m = 1 only correctable when there is nothing to
        // correct; three rounds: the full (1,1) grid point verifies.
        assert_eq!(f1.correctable(1, 1), Some(false));
        assert_eq!(f1.correctable(1, 0), Some(true));
        assert_eq!(f1.correctable(0, 1), Some(true));
        assert_eq!(f1.max_t_meas(1), Some(0));
        assert_eq!(f3.correctable(1, 1), Some(true));
        assert_eq!(f3.max_t_meas(1), Some(1));
        let json = report.to_json();
        assert!(json.contains("\"outcome\":\"frontier\""));
        assert!(json.contains("{\"t_data\":1,\"t_meas\":1,\"correctable\":true}"));
        assert!(report.to_markdown().contains("| steane_r3 | frontier |"));
    }

    #[test]
    fn batch_agrees_with_sequential_on_steane_and_surface() {
        let steane_scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let surface_scenario = memory_scenario(&rotated_surface(3), ErrorModel::YErrors);
        let jobs = vec![
            Job::correction(
                "steane_t1",
                build_problem(&steane_scenario, 1, vec![]),
                steane_scenario.error_vars.clone(),
                SplitConfig {
                    heuristic_distance: 3,
                    et_threshold: 8,
                },
            ),
            Job::correction(
                "steane_t2",
                build_problem(&steane_scenario, 2, vec![]),
                steane_scenario.error_vars.clone(),
                SplitConfig::default(),
            ),
            Job::correction(
                "surface3_t1",
                build_problem(&surface_scenario, 1, vec![]),
                surface_scenario.error_vars.clone(),
                SplitConfig::default(),
            ),
            Job::detection("steane_dt3", steane(), 3),
            Job::distance("surface3_distance", rotated_surface(3), 4),
            Job::count("steane_enumerator", steane()),
        ];
        let engine = Engine::new(EngineConfig {
            workers: 4,
            solver: SolverConfig::default(),
        });
        let report = engine.run(jobs);
        assert_eq!(report.jobs.len(), 6);
        // Sequential ground truth.
        assert!(report.jobs[0].outcome.is_verified(), "steane t=1 verifies");
        assert!(
            matches!(report.jobs[1].outcome, JobOutcome::CounterExample(_)),
            "steane t=2 must fail: {:?}",
            report.jobs[1].outcome
        );
        assert!(report.jobs[2].outcome.is_verified(), "surface3 t=1");
        assert!(matches!(
            report.jobs[3].outcome,
            JobOutcome::Detection(DetectionOutcome::AllDetected)
        ));
        assert!(matches!(
            report.jobs[4].outcome,
            JobOutcome::Distance(DistanceOutcome::Exact(3))
        ));
        // The counting job reports the full Steane enumerator through the
        // same pool: 192 failures, least weight 3 (the code distance).
        let JobOutcome::Enumerator(e) = &report.jobs[5].outcome else {
            panic!("count job must report an enumerator: {:?}", report.jobs[5]);
        };
        assert_eq!(e.min_weight, Some(3));
        assert_eq!(e.total(), 192);
        assert!(report.jobs[5].dd.nodes > 0, "DD stats flow into the report");
        // Per-job stats reflect real work; reports render.
        assert!(report.total_stats().propagations > 0);
        assert!(report.total_dd_stats().nodes > 0);
        let json = report.to_json();
        for name in [
            "steane_t1",
            "steane_t2",
            "surface3_t1",
            "steane_dt3",
            "surface3_distance",
            "steane_enumerator",
        ] {
            assert!(json.contains(name), "JSON report must mention {name}");
        }
        assert!(json.contains("\"distance\":3"));
        assert!(json.contains("\"min_weight\":3"));
        assert!(json.contains("\"dd_nodes\":"));
        assert!(report.to_markdown().contains("| steane_t1 | verified |"));
        assert!(report
            .to_markdown()
            .contains("| steane_enumerator | enumerator |"));
    }

    #[test]
    fn pre_cancelled_engine_reports_cancelled_jobs() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            solver: SolverConfig::default(),
        });
        engine.cancel_flag().store(true, Ordering::Relaxed);
        let report = engine.run(vec![
            Job::correction(
                "cancelled_correction",
                build_problem(&scenario, 1, vec![]),
                scenario.error_vars.clone(),
                SplitConfig::default(),
            ),
            Job::distance("cancelled_distance", steane(), 4),
            Job::count("cancelled_count", steane()),
        ]);
        for job in &report.jobs {
            assert!(
                matches!(job.outcome, JobOutcome::Cancelled),
                "{}: {:?}",
                job.name,
                job.outcome
            );
        }
    }

    #[test]
    fn count_job_over_node_budget_reports_unknown() {
        use veriqec_dd::CompileConfig;
        let engine = Engine::new(EngineConfig {
            workers: 1,
            solver: SolverConfig::default(),
        });
        let report = engine.run(vec![Job::count_with_config(
            "starved_count",
            steane(),
            CompileConfig {
                node_limit: Some(16),
                ..CompileConfig::default()
            },
        )]);
        assert!(
            matches!(report.jobs[0].outcome, JobOutcome::Unknown),
            "{:?}",
            report.jobs[0].outcome
        );
    }

    #[test]
    fn panicking_job_degrades_to_that_job_erroring() {
        // A deliberately panicking job next to real work: the panic must be
        // contained to its own job (Unknown + "panicked: …" reason) while
        // the neighbours run to their verdicts and every later status read
        // — record folds, report rendering — survives the poisoned mutexes.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            solver: SolverConfig::default(),
        });
        let report = engine.run(vec![
            Job::custom("boom", |_| panic!("deliberate test panic")),
            Job::distance("survivor_distance", steane(), 4),
            Job::detection("survivor_detection", five_qubit(), 3),
        ]);
        assert!(
            matches!(report.jobs[0].outcome, JobOutcome::Unknown),
            "{:?}",
            report.jobs[0].outcome
        );
        assert_eq!(
            report.jobs[0].reason.as_deref(),
            Some("panicked: deliberate test panic")
        );
        assert!(matches!(
            report.jobs[1].outcome,
            JobOutcome::Distance(DistanceOutcome::Exact(3))
        ));
        assert!(matches!(
            report.jobs[2].outcome,
            JobOutcome::Detection(DetectionOutcome::AllDetected)
        ));
        // The failed job is a partial result, listed with its reason.
        assert_eq!(
            report.incomplete_jobs_with_reasons(),
            vec![("boom", Some("panicked: deliberate test panic"))]
        );
        assert!(report
            .to_json()
            .contains("\"reason\":\"panicked: deliberate test panic\""));
        assert!(report.to_markdown().contains("| boom | unknown |"));
    }

    #[test]
    fn custom_jobs_ride_the_pool_and_see_their_cancel_flag() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            solver: SolverConfig::default(),
        });
        let report = engine.run(vec![Job::custom("flagged", |cancel| {
            assert!(!cancel.load(Ordering::Relaxed));
            JobOutcome::Verified
        })]);
        assert!(report.jobs[0].outcome.is_verified());
        assert_eq!(report.jobs[0].subtasks, 1);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use crate::tasks::{verify_correction, verify_detection};
    use proptest::prelude::*;
    use veriqec_codes::{
        five_qubit, gottesman8, rotated_surface, shor9, six_qubit, steane, xzzx_surface,
        StabilizerCode,
    };

    fn zoo(idx: usize) -> StabilizerCode {
        match idx % 7 {
            0 => steane(),
            1 => five_qubit(),
            2 => six_qubit(),
            3 => shor9(),
            4 => gottesman8(),
            5 => rotated_surface(3),
            _ => xzzx_surface(3),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn incremental_detection_sweep_agrees_with_fresh_solves(
            code_idx in 0usize..7,
            max_dt in 2usize..6,
        ) {
            // One session swept over dt must answer exactly like a cold
            // re-encode at every threshold, across the code zoo.
            let code = zoo(code_idx);
            let mut session = DetectionSession::new(&code, SolverConfig::default());
            for dt in 2..=max_dt {
                let incremental = session.check(dt);
                let fresh = verify_detection(&code, dt, SolverConfig::default());
                prop_assert!(
                    std::mem::discriminant(&incremental) == std::mem::discriminant(&fresh),
                    "{} dt={}: {:?} vs {:?}",
                    code.name(), dt, incremental, fresh
                );
            }
            prop_assert_eq!(session.encode_count(), 1);
        }

        #[test]
        fn incremental_weight_sweep_agrees_with_fresh_solves(
            code_idx in 0usize..3,
            budgets in proptest::collection::vec(0i64..3, 1..4),
        ) {
            // Weight bounds as assumptions vs baked-in clauses, in an
            // arbitrary (not necessarily monotone) query order.
            let code = zoo(code_idx);
            let scenario = memory_scenario(&code, ErrorModel::YErrors);
            let mut sweep = CorrectionSweep::new(&scenario, vec![], SolverConfig::default());
            for &t in &budgets {
                let incremental = sweep.check_weight(t);
                let fresh = verify_correction(&scenario, t, SolverConfig::default()).outcome;
                prop_assert!(
                    std::mem::discriminant(&incremental) == std::mem::discriminant(&fresh),
                    "{} t={}: {:?} vs {:?}",
                    code.name(), t, incremental, fresh
                );
            }
            prop_assert_eq!(sweep.encode_count(), 1);
        }
    }
}
