//! The parallel verification driver (§6/§7.1, Appendix D.4).
//!
//! The general task is split into subtasks by enumerating the values of
//! selected error indicators; enumeration stops when the paper's heuristic
//! `ET = 2d·N(ones) + N(bits) > threshold` fires, and the residual subtask
//! goes to a SAT solver. Subtasks run on a thread pool with cancellation on
//! the first counterexample — the architecture of the paper's 250-core
//! driver, scaled to a thread count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use veriqec_cexpr::VarId;
use veriqec_sat::{Lit, SolverConfig, SolverStats};
use veriqec_smt::{CheckResult, SmtContext};
use veriqec_vcgen::{VcOutcome, VcProblem};

/// Configuration of the parallel driver.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads.
    pub workers: usize,
    /// The `d` in the `ET = 2d·N(ones) + N(bits)` heuristic.
    pub heuristic_distance: usize,
    /// Enumeration stops when `ET` exceeds this threshold.
    pub et_threshold: usize,
    /// Solver configuration for each subtask.
    pub solver: SolverConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            heuristic_distance: 3,
            et_threshold: 12,
            solver: SolverConfig::default(),
        }
    }
}

/// Report of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Overall outcome.
    pub outcome: VcOutcome,
    /// Number of subtasks generated.
    pub subtasks: usize,
    /// Wall-clock time.
    pub wall_time: Duration,
    /// Solver statistics summed across all workers (conflicts, decisions,
    /// propagations, restarts, kept learnt clauses).
    pub stats: SolverStats,
}

/// Enumerates assumption sets over `enum_vars` using the `ET` heuristic.
///
/// Each subtask is a partial assignment (as assumption literals); the union
/// of subtasks covers the full space, mirroring Appendix D.4.
pub fn split_subtasks(enum_vars: &[VarId], config: &ParallelConfig) -> Vec<Vec<(VarId, bool)>> {
    let mut out = Vec::new();
    let mut stack: Vec<Vec<(VarId, bool)>> = vec![vec![]];
    while let Some(partial) = stack.pop() {
        let ones = partial.iter().filter(|(_, v)| *v).count();
        let bits = partial.len();
        let et = 2 * config.heuristic_distance * ones + bits;
        if et > config.et_threshold || bits == enum_vars.len() {
            out.push(partial);
            continue;
        }
        let next = enum_vars[bits];
        let mut zero = partial.clone();
        zero.push((next, false));
        let mut one = partial;
        one.push((next, true));
        stack.push(zero);
        stack.push(one);
    }
    out
}

/// Solves a [`VcProblem`] by parallel enumeration over `enum_vars` (typically
/// the error indicators). Cancels outstanding work on the first
/// counterexample: the shared flag is both the work-loop guard and a
/// cooperative stop flag installed on every worker's solver, so a worker
/// stuck *inside* a long subtask aborts at its next conflict/decision
/// boundary instead of only between subtasks.
pub fn check_parallel(
    problem: &VcProblem,
    enum_vars: &[VarId],
    config: &ParallelConfig,
) -> ParallelReport {
    let start = Instant::now();
    let subtasks = split_subtasks(enum_vars, config);
    let n_subtasks = subtasks.len();
    let cancelled = Arc::new(AtomicBool::new(false));
    let result: Mutex<Option<VcOutcome>> = Mutex::new(None);
    let stats: Mutex<SolverStats> = Mutex::new(SolverStats::default());
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    // Encode the base problem once per worker (contexts are not Sync);
    // subtasks become assumption vectors on the worker's context.
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| {
                let mut ctx = SmtContext::with_config(config.solver);
                ctx.set_stop_flag(Arc::clone(&cancelled));
                problem.assert_base(&mut ctx);
                if let Some(goal) = problem.goal_lit(&mut ctx) {
                    ctx.add_clause([goal]);
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= subtasks.len() {
                            break;
                        }
                        let assumptions: Vec<Lit> = subtasks[idx]
                            .iter()
                            .map(|&(v, val)| {
                                let l = ctx.lit_of(v);
                                if val {
                                    l
                                } else {
                                    !l
                                }
                            })
                            .collect();
                        match ctx.check(&assumptions) {
                            CheckResult::Unsat => {}
                            CheckResult::Sat => {
                                let model = ctx.model();
                                *result.lock().expect("poisoned") =
                                    Some(VcOutcome::CounterExample(model));
                                cancelled.store(true, Ordering::Relaxed);
                                break;
                            }
                            CheckResult::Unknown => {
                                // Either a genuine budget exhaustion or a
                                // cooperative abort after cancellation; in
                                // the latter case a real outcome is already
                                // recorded and wins.
                                let mut r = result.lock().expect("poisoned");
                                if r.is_none() && !cancelled.load(Ordering::Relaxed) {
                                    *r = Some(VcOutcome::Unknown);
                                }
                            }
                        }
                    }
                }
                *stats.lock().expect("poisoned") += ctx.solver_stats();
            });
        }
    });

    let outcome = result
        .into_inner()
        .expect("poisoned")
        .unwrap_or(VcOutcome::Verified);
    ParallelReport {
        outcome,
        subtasks: n_subtasks,
        wall_time: start.elapsed(),
        stats: stats.into_inner().expect("poisoned"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use crate::tasks::build_problem;
    use veriqec_codes::steane;

    #[test]
    fn subtask_split_covers_space() {
        let vars: Vec<VarId> = (0..6).map(VarId).collect();
        let cfg = ParallelConfig {
            heuristic_distance: 2,
            et_threshold: 5,
            ..ParallelConfig::default()
        };
        let tasks = split_subtasks(&vars, &cfg);
        // Coverage: total weight of the partial-assignment cylinders is 1.
        let total: f64 = tasks.iter().map(|t| 1.0 / (1u64 << t.len()) as f64).sum();
        assert!((total - 1.0).abs() < 1e-12, "cylinders must partition");
        assert!(tasks.len() > 1);
    }

    #[test]
    fn parallel_agrees_with_sequential_on_steane() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let problem = build_problem(&scenario, 1, vec![]);
        let (seq, _) = problem.check();
        let par = check_parallel(
            &problem,
            &scenario.error_vars,
            &ParallelConfig {
                workers: 4,
                heuristic_distance: 3,
                et_threshold: 8,
                ..ParallelConfig::default()
            },
        );
        assert!(seq.is_verified());
        assert!(par.outcome.is_verified());
        assert!(par.subtasks > 1);
        // The aggregated worker stats must reflect real solver work.
        assert!(par.stats.propagations > 0);
        assert!(par.stats.decisions > 0);
    }

    #[test]
    fn parallel_finds_counterexamples() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let problem = build_problem(&scenario, 2, vec![]);
        let par = check_parallel(&problem, &scenario.error_vars, &ParallelConfig::default());
        assert!(matches!(par.outcome, VcOutcome::CounterExample(_)));
    }
}
