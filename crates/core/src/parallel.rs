//! The parallel verification driver (§6/§7.1, Appendix D.4).
//!
//! The general task is split into subtasks by enumerating the values of
//! selected error indicators; enumeration stops when the paper's heuristic
//! `ET = 2d·N(ones) + N(bits) > threshold` fires, and the residual subtask
//! goes to a SAT solver. Subtasks are *streamed* from [`SubtaskIter`] — the
//! exponential enumeration is never materialized — and executed by the
//! engine's worker pool ([`crate::engine::Engine`]), cancelling on the first
//! counterexample: the architecture of the paper's 250-core driver, scaled
//! to a thread count.

use std::time::Duration;

use veriqec_cexpr::VarId;
use veriqec_sat::{SolverConfig, SolverStats};
use veriqec_vcgen::{VcOutcome, VcProblem};

use crate::engine::{Engine, EngineConfig, Job};

/// Parameters of the `ET` enumeration split (§6, Appendix D.4).
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// The `d` in the `ET = 2d·N(ones) + N(bits)` heuristic.
    pub heuristic_distance: usize,
    /// Enumeration stops when `ET` exceeds this threshold.
    pub et_threshold: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            heuristic_distance: 3,
            et_threshold: 12,
        }
    }
}

/// Configuration of the parallel driver.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads.
    pub workers: usize,
    /// The `d` in the `ET = 2d·N(ones) + N(bits)` heuristic.
    pub heuristic_distance: usize,
    /// Enumeration stops when `ET` exceeds this threshold.
    pub et_threshold: usize,
    /// Solver configuration for each subtask.
    pub solver: SolverConfig,
}

impl ParallelConfig {
    /// The enumeration-split part of this configuration.
    pub fn split(&self) -> SplitConfig {
        SplitConfig {
            heuristic_distance: self.heuristic_distance,
            et_threshold: self.et_threshold,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            heuristic_distance: 3,
            et_threshold: 12,
            solver: SolverConfig::default(),
        }
    }
}

/// Report of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Overall outcome.
    pub outcome: VcOutcome,
    /// Number of subtasks issued to workers (on a verified run: the full
    /// enumeration; on early cancellation: the prefix actually dispatched).
    pub subtasks: usize,
    /// Wall-clock time.
    pub wall_time: Duration,
    /// Solver statistics summed across all workers (conflicts, decisions,
    /// propagations, restarts, kept learnt clauses, minimization and
    /// clause-arena GC counters; `arena_bytes` sums the final footprint of
    /// every worker session).
    pub stats: SolverStats,
}

/// A lazy stream of enumeration subtasks over `enum_vars` using the `ET`
/// heuristic (depth-first, so the live frontier is at most one partial
/// assignment per enumeration depth — large `et_threshold` values never
/// materialize the exponential subtask set).
///
/// Each yielded subtask is a partial assignment (as variable/value pairs);
/// the union of subtasks covers the full space, mirroring Appendix D.4.
#[derive(Clone, Debug)]
pub struct SubtaskIter {
    enum_vars: Vec<VarId>,
    split: SplitConfig,
    stack: Vec<Vec<(VarId, bool)>>,
}

impl SubtaskIter {
    /// Starts the enumeration over `enum_vars`.
    pub fn new(enum_vars: Vec<VarId>, split: SplitConfig) -> Self {
        SubtaskIter {
            enum_vars,
            split,
            stack: vec![vec![]],
        }
    }
}

impl Iterator for SubtaskIter {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(partial) = self.stack.pop() {
            let ones = partial.iter().filter(|(_, v)| *v).count();
            let bits = partial.len();
            let et = 2 * self.split.heuristic_distance * ones + bits;
            if et > self.split.et_threshold || bits == self.enum_vars.len() {
                return Some(partial);
            }
            let next = self.enum_vars[bits];
            let mut zero = partial.clone();
            zero.push((next, false));
            let mut one = partial;
            one.push((next, true));
            self.stack.push(zero);
            self.stack.push(one);
        }
        None
    }
}

/// Enumerates assumption sets over `enum_vars` using the `ET` heuristic,
/// lazily: the returned iterator yields one subtask at a time instead of
/// materializing the full (worst-case exponential) enumeration.
pub fn split_subtasks(enum_vars: &[VarId], config: &ParallelConfig) -> SubtaskIter {
    SubtaskIter::new(enum_vars.to_vec(), config.split())
}

/// Solves a [`VcProblem`] by parallel enumeration over `enum_vars` (typically
/// the error indicators). One-job form of the engine's batch driver
/// ([`crate::engine::Engine::run`]): subtasks stream lazily to the worker
/// pool, every worker encodes the base formula once into a persistent
/// session, and the first counterexample cancels outstanding work — both
/// between subtasks and *inside* one, via the cooperative solver stop flag.
pub fn check_parallel(
    problem: &VcProblem,
    enum_vars: &[VarId],
    config: &ParallelConfig,
) -> ParallelReport {
    let engine = Engine::new(EngineConfig {
        workers: config.workers,
        solver: config.solver,
    });
    let batch = engine.run(vec![Job::correction(
        "check_parallel",
        problem.clone(),
        enum_vars.to_vec(),
        config.split(),
    )]);
    let wall_time = batch.wall_time;
    let job = batch
        .jobs
        .into_iter()
        .next()
        .expect("one job in, one report out");
    ParallelReport {
        outcome: job.outcome.into_vc(),
        subtasks: job.subtasks,
        wall_time,
        stats: job.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use crate::tasks::build_problem;
    use veriqec_codes::steane;

    #[test]
    fn subtask_split_covers_space() {
        let vars: Vec<VarId> = (0..6).map(VarId).collect();
        let cfg = ParallelConfig {
            heuristic_distance: 2,
            et_threshold: 5,
            ..ParallelConfig::default()
        };
        let tasks: Vec<_> = split_subtasks(&vars, &cfg).collect();
        // Coverage: total weight of the partial-assignment cylinders is 1.
        let total: f64 = tasks.iter().map(|t| 1.0 / (1u64 << t.len()) as f64).sum();
        assert!((total - 1.0).abs() < 1e-12, "cylinders must partition");
        assert!(tasks.len() > 1);
    }

    #[test]
    fn subtask_stream_is_lazy() {
        // 64 variables with a threshold that never fires would enumerate
        // 2^64 subtasks if materialized; the iterator hands out a prefix
        // without ever building that set.
        let vars: Vec<VarId> = (0..64).map(VarId).collect();
        let cfg = ParallelConfig {
            heuristic_distance: 1,
            et_threshold: usize::MAX,
            ..ParallelConfig::default()
        };
        let prefix: Vec<_> = split_subtasks(&vars, &cfg).take(5).collect();
        assert_eq!(prefix.len(), 5);
        for t in &prefix {
            assert_eq!(t.len(), 64, "threshold never fires: full assignments");
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_on_steane() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let problem = build_problem(&scenario, 1, vec![]);
        let (seq, _) = problem.check();
        let par = check_parallel(
            &problem,
            &scenario.error_vars,
            &ParallelConfig {
                workers: 4,
                heuristic_distance: 3,
                et_threshold: 8,
                ..ParallelConfig::default()
            },
        );
        assert!(seq.is_verified());
        assert!(par.outcome.is_verified());
        assert!(par.subtasks > 1);
        // The aggregated worker stats must reflect real solver work.
        assert!(par.stats.propagations > 0);
        assert!(par.stats.decisions > 0);
    }

    #[test]
    fn parallel_finds_counterexamples() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let problem = build_problem(&scenario, 2, vec![]);
        let par = check_parallel(&problem, &scenario.error_vars, &ParallelConfig::default());
        assert!(matches!(par.outcome, VcOutcome::CounterExample(_)));
    }
}
