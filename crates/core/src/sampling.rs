//! The sampling/testing baseline (§7.2's Stim comparison).
//!
//! Stabilizer-simulation testing draws random error configurations and
//! checks single executions; it is fast per sample but *incomplete* — the
//! paper's point is that covering all configurations of a `d = 19` surface
//! code under its constraints would need `19^18 ≈ 2^76` samples. This module
//! reproduces both sides: a tableau-based sampler for cycle programs and the
//! combinatorial sample-count formulas.

use rand::prelude::*;

use veriqec_cexpr::{CMem, Value};
use veriqec_codes::{ExtractionSchedule, StabilizerCode};
use veriqec_pauli::PauliString;
use veriqec_prog::{run_tableau, DecoderOracle};
use veriqec_qsim::{FrameCircuit, Tableau};

use crate::scenario::{ErrorModel, Scenario};

/// Outcome of a sampling campaign.
#[derive(Clone, Debug)]
pub struct SamplingReport {
    /// Samples executed.
    pub samples: usize,
    /// Samples whose final state failed the postcondition.
    pub failures: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs `samples` random-error executions of a (Clifford) scenario program on
/// the tableau backend, checking that the post conjuncts stabilize the final
/// state. Errors are drawn uniformly among configurations of weight
/// `≤ max_errors`.
///
/// # Panics
///
/// Panics if the scenario program contains non-Clifford gates.
pub fn sample_scenario<O: DecoderOracle, R: Rng>(
    scenario: &Scenario,
    max_errors: usize,
    samples: usize,
    oracle: &O,
    rng: &mut R,
) -> SamplingReport {
    let start = std::time::Instant::now();
    let mut failures = 0;
    for _ in 0..samples {
        // Random error pattern of weight <= max_errors.
        let mut mem = CMem::new();
        let weight = rng.gen_range(0..=max_errors);
        let mut chosen: Vec<usize> = (0..scenario.error_vars.len()).collect();
        chosen.shuffle(rng);
        for &i in chosen.iter().take(weight) {
            mem.set(scenario.error_vars[i], Value::Bool(true));
        }
        // Params b_i = 0 (the |0…0⟩_L family member).
        // Prepare the codeword: stabilizer state of the LHS generating set.
        let mut tab = prepare_codeword_state(scenario, &CMem::new(), rng);
        let mut coin = || rng_coin(rng);
        run_tableau(&scenario.program, &mut mem, &mut tab, oracle, &mut coin);
        // Check: all post conjuncts (at params = 0, with measured syndrome
        // values from mem) stabilize the final state.
        let ok = scenario.post.conjuncts.iter().all(|c| {
            let single = c.as_single().expect("Pauli-error scenarios");
            let concrete = single.eval(&mem);
            tab.is_stabilized_by(&concrete)
        });
        if !ok {
            failures += 1;
        }
    }
    SamplingReport {
        samples,
        failures,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn rng_coin<R: Rng>(rng: &mut R) -> bool {
    rng.gen()
}

/// Prepares a stabilizer state of the scenario's LHS generating set — at
/// the parameter values carried in `params` (unset parameters read as 0) —
/// by measuring each generator and, on a −1 outcome, applying that
/// generator's exact *destabilizer*: a Pauli anticommuting with it and
/// commuting with every other LHS element, found by solving the symplectic
/// system `⟨v, lhs_j⟩ = δ_ij` over GF(2). Counterexample replays pass the
/// model's parameter assignment so the prepared codeword matches the
/// violated family member.
pub fn prepare_codeword_state<R: Rng>(scenario: &Scenario, params: &CMem, rng: &mut R) -> Tableau {
    use veriqec_gf2::{BitMatrix, BitVec};
    let n = scenario.num_qubits;
    let m = params;

    // Symplectic matrix with swapped halves: row_j · v = ⟨lhs_j, v⟩.
    let swapped = BitMatrix::from_rows(
        scenario
            .lhs
            .iter()
            .map(|g| {
                let row = g.pauli().symplectic_row();
                let x = row.slice(0, n);
                let z = row.slice(n, n);
                z.concat(&x)
            })
            .collect(),
    );
    let destabilizers: Vec<veriqec_pauli::PauliString> = (0..scenario.lhs.len())
        .map(|i| {
            let mut rhs = BitVec::zeros(scenario.lhs.len());
            rhs.set(i, true);
            let v = swapped
                .solve(&rhs)
                .expect("full-rank symplectic system is solvable");
            veriqec_pauli::PauliString::from_symplectic_row(&v)
        })
        .collect();
    let mut tab = Tableau::zero_state(n);
    for (g, destab) in scenario.lhs.iter().zip(&destabilizers) {
        let target = g.eval(m);
        let outcome = tab.measure_pauli(&target, || rng.gen());
        if outcome {
            debug_assert!(destab.anticommutes_with(&target));
            tab.apply_pauli(destab);
        }
    }
    tab
}

/// A faulty-measurement memory protocol compiled for the Pauli-frame
/// sampler: the *same* noise process as
/// [`crate::scenario::faulty_memory_scenario`] — per-qubit data-error sites
/// in [`ErrorModel`] order, then one noisy measurement per schedule site in
/// round-major order — so an error vector for this circuit is
/// `scenario.error_vars` followed by `scenario.meas_error_vars`, index for
/// index.
#[derive(Clone, Debug)]
pub struct FaultyMemoryFrame {
    /// The compiled frame circuit.
    pub circuit: FrameCircuit,
    /// The Pauli applied by each data-error site, in site order (the
    /// single source of truth for residue reconstruction).
    pub data_site_paulis: Vec<PauliString>,
    /// Error-vector suffix length holding the measurement-flip sites.
    pub num_meas_sites: usize,
}

impl FaultyMemoryFrame {
    /// Error-vector prefix length holding the data-error sites.
    pub fn num_data_sites(&self) -> usize {
        self.data_site_paulis.len()
    }
}

/// Compiles the faulty-measurement memory protocol of a code into a frame
/// circuit (see [`FaultyMemoryFrame`] for the site layout). The reference
/// outcomes are all 0: the noiseless run measures stabilizers of the
/// codeword.
pub fn faulty_memory_frame(
    code: &StabilizerCode,
    model: ErrorModel,
    schedule: &ExtractionSchedule,
) -> FaultyMemoryFrame {
    let n = code.n();
    let mut circuit = FrameCircuit::new(n);
    let mut data_site_paulis = Vec::new();
    for (gate, _) in model.gates() {
        for q in 0..n {
            let letter = match gate {
                veriqec_pauli::Gate1::X => 'X',
                veriqec_pauli::Gate1::Z => 'Z',
                _ => 'Y',
            };
            let p = PauliString::single(n, letter, q);
            circuit.error_site(p.clone());
            data_site_paulis.push(p);
        }
    }
    let num_data_sites = circuit.num_error_sites();
    for site in schedule.sites() {
        let op = code.generators()[site.check].pauli().clone();
        if site.noisy {
            circuit.measure_noisy(op, false);
        } else {
            circuit.measure(op, false);
        }
    }
    let num_meas_sites = circuit.num_error_sites() - num_data_sites;
    FaultyMemoryFrame {
        circuit,
        data_site_paulis,
        num_meas_sites,
    }
}

/// Exhaustively validates a faulty-measurement protocol with the fast
/// frame sampler: every configuration of `≤ t_data` data errors and
/// `≤ t_meas` measurement flips is sampled, decoded with the exact
/// budget-aware space-time decoder per CSS sector, and the residual error
/// checked for stabilizer-ness. Returns the first failing configuration as
/// `(data site indices, measurement site indices)`, or `None` when every
/// in-budget configuration recovers.
///
/// This is the sampling-side mirror of the symbolic fault-tolerance
/// verdict: a `Verified` grid point implies `None` here (the concrete
/// decoder is a member of the quantified class), while a frame-found
/// failure at a point refutes correctability constructively.
///
/// # Panics
///
/// Panics when the code is not CSS.
pub fn exhaustive_frame_check(
    code: &StabilizerCode,
    model: ErrorModel,
    rounds: usize,
    t_data: usize,
    t_meas: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let n = code.n();
    let num_checks = code.generators().len();
    let schedule = ExtractionSchedule::repeated(num_checks, rounds);
    let frame = faulty_memory_frame(code, model, &schedule);
    let hx = code.css_hx().expect("CSS code required");
    let hz = code.css_hz().expect("CSS code required");
    let (x_idx, z_idx) = code.css_split().expect("CSS");
    let x_decoder = veriqec_decoder::SpaceTimeDecoder::new(hz, rounds);
    let z_decoder = veriqec_decoder::SpaceTimeDecoder::new(hx, rounds);
    let mut errors = vec![false; frame.circuit.num_error_sites()];
    for data in subsets_up_to(frame.num_data_sites(), t_data) {
        for meas in subsets_up_to(frame.num_meas_sites, t_meas) {
            errors.iter_mut().for_each(|b| *b = false);
            for &i in &data {
                errors[i] = true;
            }
            for &j in &meas {
                errors[frame.num_data_sites() + j] = true;
            }
            let history = frame.circuit.sample(&errors);
            // Split the round-major history into per-sector histories.
            let pick = |idx: &[usize]| -> Vec<bool> {
                let mut v = Vec::with_capacity(rounds * idx.len());
                for r in 0..rounds {
                    for &i in idx {
                        v.push(history[r * num_checks + i]);
                    }
                }
                v
            };
            let (cz, _) = z_decoder.decode_bounded(&pick(&x_idx), t_data, t_meas);
            let (cx, _) = x_decoder.decode_bounded(&pick(&z_idx), t_data, t_meas);
            // Residue = injected error × applied correction, with the
            // frame's own site layout as the source of truth.
            let mut residue = PauliString::identity(n);
            for &i in &data {
                residue = residue.mul(&frame.data_site_paulis[i]);
            }
            for q in cx.iter_ones() {
                residue = residue.mul(&PauliString::single(n, 'X', q));
            }
            for q in cz.iter_ones() {
                residue = residue.mul(&PauliString::single(n, 'Z', q));
            }
            if code.group().decompose(&residue).is_none() {
                return Some((data, meas));
            }
        }
    }
    None
}

/// All subsets of `{0..n}` of size at most `t`, smallest first — the
/// in-budget configuration enumerator shared by [`exhaustive_frame_check`]
/// and the end-to-end differential tests.
pub fn subsets_up_to(n: usize, t: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    let mut frontier: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..t.min(n) {
        let mut next = Vec::new();
        for s in &frontier {
            let start = s.last().map_or(0, |&x| x + 1);
            for i in start..n {
                let mut grown = s.clone();
                grown.push(i);
                next.push(grown);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// `log2` of the number of error configurations of weight exactly ≤ `t` over
/// `n` binary indicators — the sample count complete testing would need.
pub fn log2_configurations(n: usize, t: usize) -> f64 {
    // log2( Σ_{w=0..t} C(n, w) )
    let mut total: f64 = 0.0;
    for w in 0..=t {
        total += binom_f64(n, w);
    }
    total.log2()
}

/// `log2` of the paper's §7.2 count `Σ_{i} C(n−1, i)·(n−1)^i ≈ n^{n−1}` for
/// the `d = 19` constrained story.
pub fn log2_constrained_configurations(segments: usize, seg_size: usize) -> f64 {
    // Each of `segments` segments independently has (1 + seg_size) choices
    // (no error, or one of seg_size positions).
    (segments as f64) * ((1 + seg_size) as f64).log2()
}

fn binom_f64(n: usize, k: usize) -> f64 {
    let mut r = 1f64;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use veriqec_codes::steane;
    use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};

    #[test]
    fn sampling_steane_never_fails_within_budget() {
        let code = steane();
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(decoder, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let report = sample_scenario(&scenario, 1, 200, &oracle, &mut rng);
        assert_eq!(report.failures, 0, "single Y errors must always correct");
    }

    #[test]
    fn frame_check_mirrors_the_symbolic_frontier() {
        // The sampling-side view of the textbook result: single-round
        // extraction has a concrete in-budget failure at (1, 1); three
        // rounds recover every in-budget configuration.
        let code = steane();
        let failure = exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 1, 1);
        let (data, meas) = failure.expect("single round must fail at (1,1)");
        assert!(data.len() <= 1 && meas.len() <= 1);
        assert!(
            exhaustive_frame_check(&code, ErrorModel::YErrors, 3, 1, 1).is_none(),
            "three rounds recover every (1,1) configuration"
        );
        // Degenerate budgets recover even in one round.
        assert!(exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 1, 0).is_none());
        assert!(exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 0, 1).is_none());
    }

    #[test]
    fn subsets_enumeration_is_complete() {
        let subs = subsets_up_to(4, 2);
        assert_eq!(subs.len(), 1 + 4 + 6);
        assert!(subs.iter().all(|s| s.len() <= 2));
        let unique: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(unique.len(), subs.len());
    }

    #[test]
    fn sample_counts_match_paper_story() {
        // d = 19 discreteness: 19 segments of 19 qubits — ~2^76 configs.
        let bits = log2_constrained_configurations(18, 18);
        assert!(bits > 70.0 && bits < 80.0, "{bits}");
    }
}
