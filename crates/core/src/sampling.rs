//! The sampling/testing baseline (§7.2's Stim comparison).
//!
//! Stabilizer-simulation testing draws random error configurations and
//! checks single executions; it is fast per sample but *incomplete* — the
//! paper's point is that covering all configurations of a `d = 19` surface
//! code under its constraints would need `19^18 ≈ 2^76` samples. This module
//! reproduces both sides: a tableau-based sampler for cycle programs and the
//! combinatorial sample-count formulas.

use rand::prelude::*;

use veriqec_cexpr::{CMem, Value};
use veriqec_codes::{ExtractionSchedule, StabilizerCode};
use veriqec_pauli::PauliString;
use veriqec_prog::{run_tableau, DecoderOracle};
use veriqec_qsim::{FrameCircuit, Tableau, LANES};

use crate::scenario::{ErrorModel, Scenario};

/// Outcome of a sampling campaign.
#[derive(Clone, Debug)]
pub struct SamplingReport {
    /// Samples executed.
    pub samples: usize,
    /// Samples whose final state failed the postcondition.
    pub failures: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs `samples` random-error executions of a (Clifford) scenario program on
/// the tableau backend, checking that the post conjuncts stabilize the final
/// state. Errors are drawn uniformly among configurations of weight
/// `≤ max_errors`.
///
/// # Panics
///
/// Panics if the scenario program contains non-Clifford gates.
pub fn sample_scenario<O: DecoderOracle, R: Rng>(
    scenario: &Scenario,
    max_errors: usize,
    samples: usize,
    oracle: &O,
    rng: &mut R,
) -> SamplingReport {
    let start = std::time::Instant::now();
    let mut failures = 0;
    for _ in 0..samples {
        // Random error pattern of weight <= max_errors.
        let mut mem = CMem::new();
        let weight = rng.gen_range(0..=max_errors);
        let mut chosen: Vec<usize> = (0..scenario.error_vars.len()).collect();
        chosen.shuffle(rng);
        for &i in chosen.iter().take(weight) {
            mem.set(scenario.error_vars[i], Value::Bool(true));
        }
        // Params b_i = 0 (the |0…0⟩_L family member).
        // Prepare the codeword: stabilizer state of the LHS generating set.
        let mut tab = prepare_codeword_state(scenario, &CMem::new(), rng);
        let mut coin = || rng_coin(rng);
        run_tableau(&scenario.program, &mut mem, &mut tab, oracle, &mut coin);
        // Check: all post conjuncts (at params = 0, with measured syndrome
        // values from mem) stabilize the final state.
        let ok = scenario.post.conjuncts.iter().all(|c| {
            let single = c.as_single().expect("Pauli-error scenarios");
            let concrete = single.eval(&mem);
            tab.is_stabilized_by(&concrete)
        });
        if !ok {
            failures += 1;
        }
    }
    SamplingReport {
        samples,
        failures,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn rng_coin<R: Rng>(rng: &mut R) -> bool {
    rng.gen()
}

/// Prepares a stabilizer state of the scenario's LHS generating set — at
/// the parameter values carried in `params` (unset parameters read as 0) —
/// by measuring each generator and, on a −1 outcome, applying that
/// generator's exact *destabilizer*: a Pauli anticommuting with it and
/// commuting with every other LHS element, found by solving the symplectic
/// system `⟨v, lhs_j⟩ = δ_ij` over GF(2). Counterexample replays pass the
/// model's parameter assignment so the prepared codeword matches the
/// violated family member.
pub fn prepare_codeword_state<R: Rng>(scenario: &Scenario, params: &CMem, rng: &mut R) -> Tableau {
    use veriqec_gf2::{BitMatrix, BitVec};
    let n = scenario.num_qubits;
    let m = params;

    // Symplectic matrix with swapped halves: row_j · v = ⟨lhs_j, v⟩.
    let swapped = BitMatrix::from_rows(
        scenario
            .lhs
            .iter()
            .map(|g| {
                let row = g.pauli().symplectic_row();
                let x = row.slice(0, n);
                let z = row.slice(n, n);
                z.concat(&x)
            })
            .collect(),
    );
    let destabilizers: Vec<veriqec_pauli::PauliString> = (0..scenario.lhs.len())
        .map(|i| {
            let mut rhs = BitVec::zeros(scenario.lhs.len());
            rhs.set(i, true);
            let v = swapped
                .solve(&rhs)
                .expect("full-rank symplectic system is solvable");
            veriqec_pauli::PauliString::from_symplectic_row(&v)
        })
        .collect();
    let mut tab = Tableau::zero_state(n);
    for (g, destab) in scenario.lhs.iter().zip(&destabilizers) {
        let target = g.eval(m);
        let outcome = tab.measure_pauli(&target, || rng.gen());
        if outcome {
            debug_assert!(destab.anticommutes_with(&target));
            tab.apply_pauli(destab);
        }
    }
    tab
}

/// A faulty-measurement memory protocol compiled for the Pauli-frame
/// sampler: the *same* noise process as
/// [`crate::scenario::faulty_memory_scenario`] — per-qubit data-error sites
/// in [`ErrorModel`] order, then one noisy measurement per schedule site in
/// round-major order — so an error vector for this circuit is
/// `scenario.error_vars` followed by `scenario.meas_error_vars`, index for
/// index.
#[derive(Clone, Debug)]
pub struct FaultyMemoryFrame {
    /// The compiled frame circuit.
    pub circuit: FrameCircuit,
    /// The Pauli applied by each data-error site, in site order (the
    /// single source of truth for residue reconstruction).
    pub data_site_paulis: Vec<PauliString>,
    /// Error-vector suffix length holding the measurement-flip sites.
    pub num_meas_sites: usize,
}

impl FaultyMemoryFrame {
    /// Error-vector prefix length holding the data-error sites.
    pub fn num_data_sites(&self) -> usize {
        self.data_site_paulis.len()
    }
}

/// Compiles the faulty-measurement memory protocol of a code into a frame
/// circuit (see [`FaultyMemoryFrame`] for the site layout). The reference
/// outcomes are all 0: the noiseless run measures stabilizers of the
/// codeword.
pub fn faulty_memory_frame(
    code: &StabilizerCode,
    model: ErrorModel,
    schedule: &ExtractionSchedule,
) -> FaultyMemoryFrame {
    let n = code.n();
    let mut circuit = FrameCircuit::new(n);
    let mut data_site_paulis = Vec::new();
    for (gate, _) in model.gates() {
        for q in 0..n {
            let letter = match gate {
                veriqec_pauli::Gate1::X => 'X',
                veriqec_pauli::Gate1::Z => 'Z',
                _ => 'Y',
            };
            let p = PauliString::single(n, letter, q);
            circuit.error_site(p.clone());
            data_site_paulis.push(p);
        }
    }
    let num_data_sites = circuit.num_error_sites();
    for site in schedule.sites() {
        let op = code.generators()[site.check].pauli().clone();
        if site.noisy {
            circuit.measure_noisy(op, false);
        } else {
            circuit.measure(op, false);
        }
    }
    let num_meas_sites = circuit.num_error_sites() - num_data_sites;
    FaultyMemoryFrame {
        circuit,
        data_site_paulis,
        num_meas_sites,
    }
}

/// Exhaustively validates a faulty-measurement protocol with the
/// bit-sliced frame sampler: every configuration of `≤ t_data` data errors
/// and `≤ t_meas` measurement flips is streamed through the circuit in
/// batches of [`LANES`]` = 64` (one lane per configuration, one
/// `FrameCircuit::sample_batch` pass per batch), each lane's syndrome
/// history decoded with the exact budget-aware space-time decoder per CSS
/// sector, and the residual error checked for stabilizer-ness. Returns the
/// first failing configuration — in budget-ascending enumeration order —
/// as `(data site indices, measurement site indices)`, or `None` when
/// every in-budget configuration recovers.
///
/// This is the sampling-side mirror of the symbolic fault-tolerance
/// verdict: a `Verified` grid point implies `None` here (the concrete
/// decoder is a member of the quantified class), while a frame-found
/// failure at a point refutes correctability constructively.
///
/// # Panics
///
/// Panics when the code is not CSS.
pub fn exhaustive_frame_check(
    code: &StabilizerCode,
    model: ErrorModel,
    rounds: usize,
    t_data: usize,
    t_meas: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let _span = veriqec_obs::span("engine", "frame_sweep");
    let n = code.n();
    let num_checks = code.generators().len();
    let schedule = ExtractionSchedule::repeated(num_checks, rounds);
    let frame = faulty_memory_frame(code, model, &schedule);
    let hx = code.css_hx().expect("CSS code required");
    let hz = code.css_hz().expect("CSS code required");
    let (x_idx, z_idx) = code.css_split().expect("CSS");
    let x_decoder = veriqec_decoder::SpaceTimeDecoder::new(hz, rounds);
    let z_decoder = veriqec_decoder::SpaceTimeDecoder::new(hx, rounds);
    let num_data = frame.num_data_sites();

    // Decodes every lane of one propagated batch; the per-lane work
    // (decode + residue) is unchanged from the single-frame path.
    let check_lanes =
        |masks: &[u64], pending: &[(Vec<usize>, Vec<usize>)]| -> Option<(Vec<usize>, Vec<usize>)> {
            let words = frame.circuit.sample_batch(masks);
            for (lane, (data, meas)) in pending.iter().enumerate() {
                // Split the round-major history into per-sector histories.
                let pick = |idx: &[usize]| -> Vec<bool> {
                    let mut v = Vec::with_capacity(rounds * idx.len());
                    for r in 0..rounds {
                        for &i in idx {
                            v.push(words[r * num_checks + i] >> lane & 1 == 1);
                        }
                    }
                    v
                };
                let (cz, _) = z_decoder.decode_bounded(&pick(&x_idx), t_data, t_meas);
                let (cx, _) = x_decoder.decode_bounded(&pick(&z_idx), t_data, t_meas);
                // Residue = injected error × applied correction, with the
                // frame's own site layout as the source of truth.
                let mut residue = PauliString::identity(n);
                for &i in data {
                    residue = residue.mul(&frame.data_site_paulis[i]);
                }
                for q in cx.iter_ones() {
                    residue = residue.mul(&PauliString::single(n, 'X', q));
                }
                for q in cz.iter_ones() {
                    residue = residue.mul(&PauliString::single(n, 'Z', q));
                }
                if code.group().decompose(&residue).is_none() {
                    return Some((data.clone(), meas.clone()));
                }
            }
            None
        };

    let mut masks = vec![0u64; frame.circuit.num_error_sites()];
    let mut pending: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(LANES);
    for data in SubsetsUpTo::new(num_data, t_data) {
        for meas in SubsetsUpTo::new(frame.num_meas_sites, t_meas) {
            let lane = pending.len();
            for &i in &data {
                masks[i] |= 1 << lane;
            }
            for &j in &meas {
                masks[num_data + j] |= 1 << lane;
            }
            pending.push((data.clone(), meas));
            if pending.len() == LANES {
                if let Some(hit) = check_lanes(&masks, &pending) {
                    return Some(hit);
                }
                masks.iter_mut().for_each(|w| *w = 0);
                pending.clear();
            }
        }
    }
    if pending.is_empty() {
        None
    } else {
        check_lanes(&masks, &pending)
    }
}

/// Streaming enumerator of all subsets of `{0..n}` of size at most `t`, in
/// budget-ascending order: sizes small to large, lexicographic within a
/// size. This is the configuration order of [`exhaustive_frame_check`]'s
/// batched inner loop — configurations are produced one at a time and
/// packed into 64-lane batches, so the full (combinatorially large) set is
/// never materialised.
pub struct SubsetsUpTo {
    n: usize,
    t: usize,
    current: Option<Vec<usize>>,
}

impl SubsetsUpTo {
    /// Creates the enumerator; the first item is always the empty subset.
    pub fn new(n: usize, t: usize) -> Self {
        SubsetsUpTo {
            n,
            t,
            current: Some(Vec::new()),
        }
    }

    /// The combination after `cur`: next in lex order at the same size, or
    /// the first combination of the next size, or `None` past the budget.
    fn successor(&self, cur: &[usize]) -> Option<Vec<usize>> {
        let k = cur.len();
        let mut next = cur.to_vec();
        let mut i = k;
        while i > 0 {
            i -= 1;
            // Slot i may climb to n - k + i, leaving room for the tail.
            if next[i] < self.n - (k - i) {
                next[i] += 1;
                for j in i + 1..k {
                    next[j] = next[j - 1] + 1;
                }
                return Some(next);
            }
        }
        if k < self.t.min(self.n) {
            Some((0..=k).collect())
        } else {
            None
        }
    }
}

impl Iterator for SubsetsUpTo {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.current.take()?;
        self.current = self.successor(&cur);
        Some(cur)
    }
}

/// All subsets of `{0..n}` of size at most `t`, smallest first — the
/// collected form of [`SubsetsUpTo`], kept for callers (and differential
/// tests) that want the whole in-budget configuration list at once.
pub fn subsets_up_to(n: usize, t: usize) -> Vec<Vec<usize>> {
    SubsetsUpTo::new(n, t).collect()
}

/// `log2` of the number of error configurations of weight exactly ≤ `t` over
/// `n` binary indicators — the sample count complete testing would need.
pub fn log2_configurations(n: usize, t: usize) -> f64 {
    // log2( Σ_{w=0..t} C(n, w) )
    let mut total: f64 = 0.0;
    for w in 0..=t {
        total += binom_f64(n, w);
    }
    total.log2()
}

/// `log2` of the paper's §7.2 count `Σ_{i} C(n−1, i)·(n−1)^i ≈ n^{n−1}` for
/// the `d = 19` constrained story.
pub fn log2_constrained_configurations(segments: usize, seg_size: usize) -> f64 {
    // Each of `segments` segments independently has (1 + seg_size) choices
    // (no error, or one of seg_size positions).
    (segments as f64) * ((1 + seg_size) as f64).log2()
}

fn binom_f64(n: usize, k: usize) -> f64 {
    let mut r = 1f64;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use veriqec_codes::steane;
    use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};

    #[test]
    fn sampling_steane_never_fails_within_budget() {
        let code = steane();
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(decoder, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let report = sample_scenario(&scenario, 1, 200, &oracle, &mut rng);
        assert_eq!(report.failures, 0, "single Y errors must always correct");
    }

    #[test]
    fn frame_check_mirrors_the_symbolic_frontier() {
        // The sampling-side view of the textbook result: single-round
        // extraction has a concrete in-budget failure at (1, 1); three
        // rounds recover every in-budget configuration.
        let code = steane();
        let failure = exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 1, 1);
        let (data, meas) = failure.expect("single round must fail at (1,1)");
        assert!(data.len() <= 1 && meas.len() <= 1);
        assert!(
            exhaustive_frame_check(&code, ErrorModel::YErrors, 3, 1, 1).is_none(),
            "three rounds recover every (1,1) configuration"
        );
        // Degenerate budgets recover even in one round.
        assert!(exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 1, 0).is_none());
        assert!(exhaustive_frame_check(&code, ErrorModel::YErrors, 1, 0, 1).is_none());
    }

    #[test]
    fn subsets_enumeration_is_complete() {
        let subs = subsets_up_to(4, 2);
        assert_eq!(subs.len(), 1 + 4 + 6);
        assert!(subs.iter().all(|s| s.len() <= 2));
        let unique: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(unique.len(), subs.len());
    }

    #[test]
    fn subsets_stream_in_budget_ascending_order() {
        let subs: Vec<Vec<usize>> = SubsetsUpTo::new(4, 2).collect();
        let expect: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![2],
            vec![3],
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
        ];
        assert_eq!(subs, expect);
        // Degenerate shapes: empty ground set, zero budget, budget > n.
        assert_eq!(subsets_up_to(0, 3), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_up_to(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_up_to(2, 5).len(), 4);
    }

    #[test]
    fn batched_check_crosses_the_lane_boundary() {
        // Steane + Y errors at (t_data, t_meas) = (2, 1) over 2 rounds:
        // (1 + 21 + 210) · (1 + 12) = 3016 configurations, ~47 full
        // batches — the flush path and the final partial batch both run.
        // Two rounds cannot distinguish a round-2 flip from a data error,
        // so a failure must surface; it is found inside a full batch, and
        // its shape is in budget.
        let code = steane();
        let failure = exhaustive_frame_check(&code, ErrorModel::YErrors, 2, 2, 1);
        let (data, meas) = failure.expect("two rounds under (2,1) must fail");
        assert!(data.len() <= 2 && meas.len() <= 1);
    }

    #[test]
    fn sample_counts_match_paper_story() {
        // d = 19 discreteness: 19 segments of 19 qubits — ~2^76 configs.
        let bits = log2_constrained_configurations(18, 18);
        assert!(bits > 70.0 && bits < 80.0, "{bits}");
    }
}
