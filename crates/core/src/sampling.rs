//! The sampling/testing baseline (§7.2's Stim comparison).
//!
//! Stabilizer-simulation testing draws random error configurations and
//! checks single executions; it is fast per sample but *incomplete* — the
//! paper's point is that covering all configurations of a `d = 19` surface
//! code under its constraints would need `19^18 ≈ 2^76` samples. This module
//! reproduces both sides: a tableau-based sampler for cycle programs and the
//! combinatorial sample-count formulas.

use rand::prelude::*;

use veriqec_cexpr::{CMem, Value};
use veriqec_prog::{run_tableau, DecoderOracle};
use veriqec_qsim::Tableau;

use crate::scenario::Scenario;

/// Outcome of a sampling campaign.
#[derive(Clone, Debug)]
pub struct SamplingReport {
    /// Samples executed.
    pub samples: usize,
    /// Samples whose final state failed the postcondition.
    pub failures: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs `samples` random-error executions of a (Clifford) scenario program on
/// the tableau backend, checking that the post conjuncts stabilize the final
/// state. Errors are drawn uniformly among configurations of weight
/// `≤ max_errors`.
///
/// # Panics
///
/// Panics if the scenario program contains non-Clifford gates.
pub fn sample_scenario<O: DecoderOracle, R: Rng>(
    scenario: &Scenario,
    max_errors: usize,
    samples: usize,
    oracle: &O,
    rng: &mut R,
) -> SamplingReport {
    let start = std::time::Instant::now();
    let mut failures = 0;
    for _ in 0..samples {
        // Random error pattern of weight <= max_errors.
        let mut mem = CMem::new();
        let weight = rng.gen_range(0..=max_errors);
        let mut chosen: Vec<usize> = (0..scenario.error_vars.len()).collect();
        chosen.shuffle(rng);
        for &i in chosen.iter().take(weight) {
            mem.set(scenario.error_vars[i], Value::Bool(true));
        }
        // Params b_i = 0 (the |0…0⟩_L family member).
        // Prepare the codeword: stabilizer state of the LHS generating set.
        let mut tab = prepare_stabilizer_state(scenario, rng);
        let mut coin = || rng_coin(rng);
        run_tableau(&scenario.program, &mut mem, &mut tab, oracle, &mut coin);
        // Check: all post conjuncts (at params = 0, with measured syndrome
        // values from mem) stabilize the final state.
        let ok = scenario.post.conjuncts.iter().all(|c| {
            let single = c.as_single().expect("Pauli-error scenarios");
            let concrete = single.eval(&mem);
            tab.is_stabilized_by(&concrete)
        });
        if !ok {
            failures += 1;
        }
    }
    SamplingReport {
        samples,
        failures,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn rng_coin<R: Rng>(rng: &mut R) -> bool {
    rng.gen()
}

/// Prepares a stabilizer state of the scenario's LHS generating set (at
/// parameter values 0) by measuring each generator and, on a −1 outcome,
/// applying that generator's exact *destabilizer* — a Pauli anticommuting
/// with it and commuting with every other LHS element, found by solving the
/// symplectic system `⟨v, lhs_j⟩ = δ_ij` over GF(2).
fn prepare_stabilizer_state<R: Rng>(scenario: &Scenario, rng: &mut R) -> Tableau {
    use veriqec_gf2::{BitMatrix, BitVec};
    let n = scenario.num_qubits;
    let m = CMem::new(); // params default to 0

    // Symplectic matrix with swapped halves: row_j · v = ⟨lhs_j, v⟩.
    let swapped = BitMatrix::from_rows(
        scenario
            .lhs
            .iter()
            .map(|g| {
                let row = g.pauli().symplectic_row();
                let x = row.slice(0, n);
                let z = row.slice(n, n);
                z.concat(&x)
            })
            .collect(),
    );
    let destabilizers: Vec<veriqec_pauli::PauliString> = (0..scenario.lhs.len())
        .map(|i| {
            let mut rhs = BitVec::zeros(scenario.lhs.len());
            rhs.set(i, true);
            let v = swapped
                .solve(&rhs)
                .expect("full-rank symplectic system is solvable");
            veriqec_pauli::PauliString::from_symplectic_row(&v)
        })
        .collect();
    let mut tab = Tableau::zero_state(n);
    for (g, destab) in scenario.lhs.iter().zip(&destabilizers) {
        let target = g.eval(&m);
        let outcome = tab.measure_pauli(&target, || rng.gen());
        if outcome {
            debug_assert!(destab.anticommutes_with(&target));
            tab.apply_pauli(destab);
        }
    }
    tab
}

/// `log2` of the number of error configurations of weight exactly ≤ `t` over
/// `n` binary indicators — the sample count complete testing would need.
pub fn log2_configurations(n: usize, t: usize) -> f64 {
    // log2( Σ_{w=0..t} C(n, w) )
    let mut total: f64 = 0.0;
    for w in 0..=t {
        total += binom_f64(n, w);
    }
    total.log2()
}

/// `log2` of the paper's §7.2 count `Σ_{i} C(n−1, i)·(n−1)^i ≈ n^{n−1}` for
/// the `d = 19` constrained story.
pub fn log2_constrained_configurations(segments: usize, seg_size: usize) -> f64 {
    // Each of `segments` segments independently has (1 + seg_size) choices
    // (no error, or one of seg_size positions).
    (segments as f64) * ((1 + seg_size) as f64).log2()
}

fn binom_f64(n: usize, k: usize) -> f64 {
    let mut r = 1f64;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{memory_scenario, ErrorModel};
    use veriqec_codes::steane;
    use veriqec_decoder::{decode_call_oracle, CssLookupDecoder};

    #[test]
    fn sampling_steane_never_fails_within_budget() {
        let code = steane();
        let scenario = memory_scenario(&code, ErrorModel::YErrors);
        let decoder = CssLookupDecoder::for_code(&code, 1);
        let oracle = decode_call_oracle(decoder, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let report = sample_scenario(&scenario, 1, 200, &oracle, &mut rng);
        assert_eq!(report.failures, 0, "single Y errors must always correct");
    }

    #[test]
    fn sample_counts_match_paper_story() {
        // d = 19 discreteness: 19 segments of 19 qubits — ~2^76 configs.
        let bits = log2_constrained_configurations(18, 18);
        assert!(bits > 70.0 && bits < 80.0, "{bits}");
    }
}
