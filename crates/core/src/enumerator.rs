//! Exact failure weight enumerators via the decision-diagram backend.
//!
//! The SAT tasks answer existence — "is there an undetected logical error
//! of weight `< dt`?" (Eqn. 15). This module answers the *counting* form of
//! the same question: for every Hamming weight `w`, exactly how many error
//! configurations are undetectable logical errors? The resulting vector
//! `A_1 … A_n` is the code's failure weight enumerator; its least nonzero
//! index is the code distance (cross-checked against
//! [`crate::tasks::find_distance`] by the test suite), and its magnitude
//! profile is what analytic bounds (quantum MacWilliams identities,
//! pseudo-threshold estimates) consume.
//!
//! The encoding is shared with the SAT path: the same
//! [`veriqec_smt::SmtContext`] assembles syndrome-zero XOR equations, the
//! logical-flip disjunction and per-qubit support indicators, then exports
//! the clause set ([`SmtContext::export_cnf`]) for one-time BDD compilation
//! (`veriqec_dd`). Every auxiliary variable is functionally determined by
//! the error components, so BDD model counts are error-configuration counts
//! exactly; the whole enumerator falls out of a single weight-stratified
//! pass instead of one SAT call per (weight, count) step of a
//! blocking-clause loop ([`sat_enumerator`], kept as the differential
//! baseline and the benchmark's contender).

use veriqec_cexpr::{Affine, CMem, VarId, VarRole, VarTable};
use veriqec_codes::{ExtractionSchedule, StabilizerCode};
use veriqec_dd::{compile_cnf_projected, Bdd, BddManager, CompileConfig, CompileError, DdStats};
use veriqec_sat::{Lit, SolverConfig};
use veriqec_smt::{CheckResult, SmtContext};

/// The failure weight enumerator of one code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightEnumerator {
    /// `coefficients[w]` is the number of error configurations of support
    /// weight `w` that are undetectable logical errors (`coefficients[0]`
    /// is always 0: the identity is not a failure).
    pub coefficients: Vec<u128>,
    /// Least weight with a nonzero coefficient — the code distance.
    pub min_weight: Option<usize>,
}

impl WeightEnumerator {
    /// Total number of failure configurations across all weights.
    pub fn total(&self) -> u128 {
        self.coefficients.iter().sum()
    }
}

/// A per-code counting session: the detection formula is compiled to a BDD
/// once, then enumerator coefficients (and any further counts) are
/// extracted without touching a solver.
///
/// The counting analogue of [`crate::engine::DetectionSession`] — same
/// formula, same single-encode discipline, but the backend is `veriqec_dd`
/// and the answer is the full weight distribution instead of one
/// SAT/UNSAT bit.
#[derive(Clone, Debug)]
pub struct FailureEnumerator {
    name: String,
    /// Largest possible support weight (`n` for the perfect model, plus one
    /// per measurement site under a noisy schedule).
    max_weight: usize,
    manager: BddManager,
    root: Bdd,
    /// Variables surviving the projection (error components + indicators).
    counted: Vec<usize>,
    /// Support-indicator literals as `(BDD variable, polarity)`.
    indicators: Vec<(usize, bool)>,
    coefficients: Option<Vec<u128>>,
    compiles: usize,
}

impl FailureEnumerator {
    /// Encodes and compiles the counting formula for `code` once (the
    /// perfect-measurement model).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] when the budget in `config` (node limit,
    /// stop flag) is exhausted mid-compilation.
    pub fn new(code: &StabilizerCode, config: &CompileConfig) -> Result<Self, CompileError> {
        Self::with_schedule(
            code,
            &ExtractionSchedule::perfect(code.generators().len()),
            config,
        )
    }

    /// Like [`FailureEnumerator::new`], but under a (possibly noisy)
    /// extraction schedule: undetected configurations are pairs `(e, m)`
    /// whose *observed* syndromes vanish in every round, counted by total
    /// weight `|supp(e)| + |m|`.
    ///
    /// # Errors
    ///
    /// See [`FailureEnumerator::new`].
    pub fn with_schedule(
        code: &StabilizerCode,
        schedule: &ExtractionSchedule,
        config: &CompileConfig,
    ) -> Result<Self, CompileError> {
        // No weight constraint on top of the shared parts: stratification
        // happens in the diagram, not the encoding.
        let DetectionParts { ctx, support, .. } =
            detection_parts_with_schedule(code, schedule, SolverConfig::default());
        let cnf = ctx.export_cnf();
        // Keep the error components and the support indicators; everything
        // else (XOR chain links, flip parities, the constant) is determined
        // and gets eliminated as the diagram is built.
        let mut keep: Vec<usize> = ctx.var_map().map(|(_, l)| l.var().index()).collect();
        keep.extend(support.iter().map(|l| l.var().index()));
        let compiled = compile_cnf_projected(&cnf, &keep, config)?;
        let indicators: Vec<(usize, bool)> = support
            .iter()
            .map(|l| (l.var().index(), l.is_positive()))
            .collect();
        Ok(FailureEnumerator {
            name: code.name().to_string(),
            max_weight: indicators.len(),
            manager: compiled.manager,
            root: compiled.root,
            counted: keep,
            indicators,
            coefficients: None,
            compiles: 1,
        })
    }

    /// The code's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enumerator coefficients by support weight (`0..=max_weight`),
    /// computed on first call and cached.
    pub fn coefficients(&mut self) -> &[u128] {
        if self.coefficients.is_none() {
            let w = self
                .manager
                .weight_count_over(self.root, &self.counted, &self.indicators);
            debug_assert_eq!(w.len(), self.max_weight + 1);
            self.coefficients = Some(w);
        }
        self.coefficients.as_deref().expect("just computed")
    }

    /// Least weight with a nonzero coefficient — the code distance.
    pub fn min_nonzero_weight(&mut self) -> Option<usize> {
        self.coefficients().iter().position(|&c| c > 0)
    }

    /// The full enumerator report.
    pub fn enumerator(&mut self) -> WeightEnumerator {
        let coefficients = self.coefficients().to_vec();
        let min_weight = coefficients.iter().position(|&c| c > 0);
        WeightEnumerator {
            coefficients,
            min_weight,
        }
    }

    /// Total failure configurations (all weights).
    pub fn total_failures(&mut self) -> u128 {
        self.coefficients().iter().sum()
    }

    /// Decision-diagram kernel counters.
    pub fn dd_stats(&self) -> DdStats {
        self.manager.stats()
    }

    /// Live BDD nodes held by the session.
    pub fn node_count(&self) -> usize {
        self.manager.node_count()
    }

    /// Number of compilations performed (always 1; the counter exists so
    /// tests can assert the session never recompiles).
    pub fn compile_count(&self) -> usize {
        self.compiles
    }
}

/// The detection formula (Eqn. 15) assembled once for every backend that
/// consumes it: [`crate::engine::DetectionSession`] (adds a cardinality
/// totalizer for weight sweeps), [`FailureEnumerator`] (exports the CNF for
/// diagram compilation) and [`sat_enumerator`] (adds a baked weight bound).
/// One assembly site means the SAT and counting backends cannot drift apart
/// on the encoding.
pub(crate) struct DetectionParts {
    /// The context holding observed-syndrome-zero equations and the
    /// logical-flip disjunction.
    pub ctx: SmtContext,
    /// Per-qubit X error components.
    pub ex: Vec<VarId>,
    /// Per-qubit Z error components.
    pub ez: Vec<VarId>,
    /// Measurement-flip indicators per (round, generator) in round-major
    /// order; empty for perfect schedules.
    pub em: Vec<VarId>,
    /// Support indicators: per-qubit (`ex_q ∨ ez_q`) followed by one
    /// literal per measurement-flip indicator. The per-qubit indicators are
    /// interleaved with their inputs in allocation order so diagram
    /// ordering heuristics inherit a near-optimal seed.
    pub support: Vec<Lit>,
}

/// Assembles the detection formula for `code` under the perfect
/// single-round schedule (the paper's Eqn. 15).
pub(crate) fn detection_parts(code: &StabilizerCode, config: SolverConfig) -> DetectionParts {
    detection_parts_with_schedule(
        code,
        &ExtractionSchedule::perfect(code.generators().len()),
        config,
    )
}

/// Assembles the detection formula for `code` under an extraction
/// schedule: per-qubit error components with support indicators, the
/// *observed*-syndromes-all-zero XOR equations (`syn_i(e) ⊕ m_{i,j} = 0`
/// per round `j`, with the flip term present only for noisy schedules),
/// and the some-logical-flips disjunction. No weight constraint — each
/// caller adds its own (totalizer assumptions, baked bound, or none for
/// counting). This is the single assembly site shared by the SAT and
/// decision-diagram backends, with or without measurement errors.
pub(crate) fn detection_parts_with_schedule(
    code: &StabilizerCode,
    schedule: &ExtractionSchedule,
    config: SolverConfig,
) -> DetectionParts {
    let n = code.n();
    assert_eq!(
        schedule.num_checks(),
        code.generators().len(),
        "schedule must cover every generator"
    );
    let mut vt = VarTable::new();
    let ex: Vec<VarId> = (0..n)
        .map(|q| vt.fresh_indexed("ex", q, VarRole::Error))
        .collect();
    let ez: Vec<VarId> = (0..n)
        .map(|q| vt.fresh_indexed("ez", q, VarRole::Error))
        .collect();
    let mut ctx = SmtContext::with_config(config);
    let mut support: Vec<Lit> = (0..n)
        .map(|q| {
            let lx = ctx.lit_of(ex[q]);
            let lz = ctx.lit_of(ez[q]);
            ctx.reify_disj(&[lx, lz])
        })
        .collect();
    // All *observed* syndromes zero in every round: the true syndrome of
    // the error, XOR the round's flip, vanishes.
    let mut em = Vec::new();
    for site in schedule.sites() {
        let g = &code.generators()[site.check];
        let mut aff = Affine::zero();
        for q in 0..n {
            if g.pauli().x_bit(q) {
                aff.xor_var(ez[q]);
            }
            if g.pauli().z_bit(q) {
                aff.xor_var(ex[q]);
            }
        }
        if site.noisy {
            let m = vt.fresh(
                &format!("m_r{}_{}", site.round, site.check),
                VarRole::MeasError,
            );
            aff.xor_var(m);
            em.push(m);
        }
        ctx.assert_affine_eq(&aff, false);
    }
    // Some logical operator anticommutes with the error.
    let mut flips = Vec::new();
    for l in code.logical_x().iter().chain(code.logical_z()) {
        let mut aff = Affine::zero();
        for q in 0..n {
            if l.pauli().x_bit(q) {
                aff.xor_var(ez[q]);
            }
            if l.pauli().z_bit(q) {
                aff.xor_var(ex[q]);
            }
        }
        flips.push(ctx.reify_affine(&aff));
    }
    ctx.add_clause(flips);
    support.extend(em.iter().map(|&m| ctx.lit_of(m)));
    DetectionParts {
        ctx,
        ex,
        ez,
        em,
        support,
    }
}

/// The CDCL contender: enumerate undetectable logical errors of support
/// weight `≤ max_weight` one model at a time, blocking each found
/// configuration with a clause. Exact on its truncated range — and
/// exponential in the number of failures, which is why the diagram backend
/// exists. Returns coefficients for weights `0..=max_weight`.
pub fn sat_enumerator(code: &StabilizerCode, max_weight: usize) -> Vec<u128> {
    sat_enumerator_with_schedule(
        code,
        &ExtractionSchedule::perfect(code.generators().len()),
        max_weight,
    )
}

/// The blocking-clause contender under an extraction schedule: enumerates
/// undetected `(e, m)` configurations of total weight
/// `|supp(e)| + |m| ≤ max_weight` one model at a time — the SAT half of the
/// faulty-measurement backend-agreement suite.
pub fn sat_enumerator_with_schedule(
    code: &StabilizerCode,
    schedule: &ExtractionSchedule,
    max_weight: usize,
) -> Vec<u128> {
    let n = code.n();
    let DetectionParts {
        mut ctx,
        ex,
        ez,
        em,
        support,
    } = detection_parts_with_schedule(code, schedule, SolverConfig::default());
    ctx.assert_at_most(&support, max_weight as i64);
    let mut coefficients = vec![0u128; max_weight + 1];
    while ctx.check(&[]) == CheckResult::Sat {
        let m = ctx.model();
        let weight = (0..n)
            .filter(|&q| m.get(ex[q]).as_bool() || m.get(ez[q]).as_bool())
            .count()
            + em.iter().filter(|&&v| m.get(v).as_bool()).count();
        coefficients[weight] += 1;
        block_model(&mut ctx, &m, ex.iter().chain(&ez).chain(&em));
    }
    coefficients
}

/// Adds the clause forbidding the model's assignment to `vars` (the
/// standard blocking clause of AllSAT loops).
fn block_model<'a, I: IntoIterator<Item = &'a VarId>>(ctx: &mut SmtContext, m: &CMem, vars: I) {
    let clause: Vec<Lit> = vars
        .into_iter()
        .map(|&v| {
            let l = ctx.lit_of(v);
            if m.get(v).as_bool() {
                !l
            } else {
                l
            }
        })
        .collect();
    ctx.add_clause(clause);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{find_distance, DistanceOutcome};
    use veriqec_codes::{
        c4_422, cube_color_822, five_qubit, gottesman8, rotated_surface, shor9, six_qubit, steane,
        xzzx_surface,
    };

    /// Truth-table reference for tiny codes: enumerate all `4^n` error
    /// configurations directly from the symplectic representation.
    fn brute_force_enumerator(code: &StabilizerCode) -> Vec<u128> {
        let n = code.n();
        assert!(2 * n <= 20, "brute force only for tiny codes");
        let mut coefficients = vec![0u128; n + 1];
        for bits in 0u64..1 << (2 * n) {
            let ex = |q: usize| (bits >> q) & 1 == 1;
            let ez = |q: usize| (bits >> (n + q)) & 1 == 1;
            let commutes_with_all = code.generators().iter().all(|g| {
                let mut parity = false;
                for q in 0..n {
                    parity ^= g.pauli().x_bit(q) & ez(q);
                    parity ^= g.pauli().z_bit(q) & ex(q);
                }
                !parity
            });
            let flips_some_logical = code.logical_x().iter().chain(code.logical_z()).any(|l| {
                let mut parity = false;
                for q in 0..n {
                    parity ^= l.pauli().x_bit(q) & ez(q);
                    parity ^= l.pauli().z_bit(q) & ex(q);
                }
                parity
            });
            if commutes_with_all && flips_some_logical {
                let weight = (0..n).filter(|&q| ex(q) || ez(q)).count();
                coefficients[weight] += 1;
            }
        }
        coefficients
    }

    #[test]
    fn c4_enumerator_matches_truth_table() {
        let code = c4_422();
        let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
        assert_eq!(fe.coefficients(), brute_force_enumerator(&code).as_slice());
        assert_eq!(fe.min_nonzero_weight(), Some(2));
        assert_eq!(fe.compile_count(), 1);
    }

    #[test]
    fn steane_enumerator_matches_truth_table_and_group_theory() {
        let code = steane();
        let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
        assert_eq!(fe.coefficients(), brute_force_enumerator(&code).as_slice());
        // |N(S)| − |S·⟨logical identity⟩|: 2^{n+k} − 2^{n−k} failures.
        assert_eq!(fe.total_failures(), (1 << 8) - (1 << 6));
        assert_eq!(fe.min_nonzero_weight(), Some(3));
    }

    #[test]
    fn enumerator_matches_blocking_clause_sat_on_small_zoo() {
        // The two backends answer the same counting question through
        // entirely different algorithms; they must agree coefficient by
        // coefficient (SAT side truncated to full range here — these codes
        // have few enough failures to enumerate one by one).
        for code in [c4_422(), five_qubit(), six_qubit(), steane()] {
            let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
            let sat = sat_enumerator(&code, code.n());
            assert_eq!(
                fe.coefficients(),
                sat.as_slice(),
                "{} enumerators disagree",
                code.name()
            );
        }
    }

    #[test]
    fn total_failures_match_group_counting_across_zoo() {
        // For any [[n,k]] stabilizer code the failure set is the normalizer
        // minus the stabilizer-times-identity classes: 2^{n+k} − 2^{n−k}.
        for code in [
            c4_422(),
            five_qubit(),
            six_qubit(),
            steane(),
            gottesman8(),
            cube_color_822(),
            shor9(),
            rotated_surface(3),
            xzzx_surface(3),
        ] {
            let (n, k) = (code.n() as u32, code.k() as u32);
            let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
            assert_eq!(
                fe.total_failures(),
                (1u128 << (n + k)) - (1u128 << (n - k)),
                "{}",
                code.name()
            );
        }
    }

    #[test]
    fn min_nonzero_weight_agrees_with_find_distance_across_zoo() {
        // The ISSUE's cross-check: the least weight with a nonzero
        // enumerator coefficient IS the code distance, and the SAT sweep
        // must land on the same value.
        for code in [
            c4_422(),
            five_qubit(),
            six_qubit(),
            steane(),
            gottesman8(),
            cube_color_822(),
            shor9(),
            rotated_surface(3),
            xzzx_surface(3),
        ] {
            let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
            let via_dd = fe.min_nonzero_weight().expect("every code has failures");
            let via_sat = find_distance(&code, code.n());
            assert_eq!(
                DistanceOutcome::Exact(via_dd),
                via_sat,
                "{}: enumerator says {via_dd}, sweep says {via_sat:?}",
                code.name()
            );
        }
    }

    #[test]
    fn truncated_sat_enumeration_matches_prefix() {
        // Weight-bounded blocking-clause enumeration (the only form that
        // scales to larger codes) must agree with the diagram's prefix.
        let code = rotated_surface(3);
        let mut fe = FailureEnumerator::new(&code, &CompileConfig::default()).unwrap();
        let sat = sat_enumerator(&code, 4);
        assert_eq!(&fe.coefficients()[..5], sat.as_slice());
    }

    /// Truth-table reference under a noisy schedule: the flips masking an
    /// error are *determined* (`m_{i,j} = syn_i(e)` in every round), so each
    /// logical-flipping `e` contributes one configuration of total weight
    /// `|supp(e)| + rounds·|syn(e)|`.
    fn brute_force_faulty_enumerator(code: &StabilizerCode, rounds: usize) -> Vec<u128> {
        let n = code.n();
        assert!(2 * n <= 20, "brute force only for tiny codes");
        let num_checks = code.generators().len();
        let mut coefficients = vec![0u128; n + rounds * num_checks + 1];
        for bits in 0u64..1 << (2 * n) {
            let ex = |q: usize| (bits >> q) & 1 == 1;
            let ez = |q: usize| (bits >> (n + q)) & 1 == 1;
            let syndrome_weight = code
                .generators()
                .iter()
                .filter(|g| {
                    let mut parity = false;
                    for q in 0..n {
                        parity ^= g.pauli().x_bit(q) & ez(q);
                        parity ^= g.pauli().z_bit(q) & ex(q);
                    }
                    parity
                })
                .count();
            let flips_some_logical = code.logical_x().iter().chain(code.logical_z()).any(|l| {
                let mut parity = false;
                for q in 0..n {
                    parity ^= l.pauli().x_bit(q) & ez(q);
                    parity ^= l.pauli().z_bit(q) & ex(q);
                }
                parity
            });
            if flips_some_logical {
                let weight = (0..n).filter(|&q| ex(q) || ez(q)).count() + rounds * syndrome_weight;
                coefficients[weight] += 1;
            }
        }
        coefficients
    }

    #[test]
    fn faulty_enumerator_matches_truth_table() {
        // The DD backend under noisy schedules vs the 4^n truth table:
        // measurement flips let errors with nonzero syndrome hide, at a
        // per-round weight price.
        for code in [c4_422(), steane()] {
            for rounds in [1, 2] {
                let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
                let mut fe =
                    FailureEnumerator::with_schedule(&code, &schedule, &CompileConfig::default())
                        .unwrap();
                assert_eq!(
                    fe.coefficients(),
                    brute_force_faulty_enumerator(&code, rounds).as_slice(),
                    "{} rounds={rounds}",
                    code.name()
                );
            }
        }
    }

    #[test]
    fn faulty_backends_agree_on_detection_verdicts() {
        // The ISSUE's regression: the shared assembly with measurement-error
        // indicators must yield identical detection verdicts from the SAT
        // session and the DD counting backend, at every threshold.
        use crate::engine::DetectionSession;
        use crate::tasks::DetectionOutcome;
        for code in [c4_422(), five_qubit(), steane()] {
            for rounds in [1, 2, 3] {
                let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
                let mut fe =
                    FailureEnumerator::with_schedule(&code, &schedule, &CompileConfig::default())
                        .unwrap();
                let coefficients = fe.coefficients().to_vec();
                let mut session =
                    DetectionSession::with_schedule(&code, &schedule, SolverConfig::default());
                let max_dt = fe.min_nonzero_weight().expect("failures exist") + 2;
                for dt in 2..=max_dt {
                    let sat_says = session.check(dt);
                    let dd_says_all_detected = coefficients[1..dt.min(coefficients.len())]
                        .iter()
                        .all(|&c| c == 0);
                    match (&sat_says, dd_says_all_detected) {
                        (DetectionOutcome::AllDetected, true)
                        | (DetectionOutcome::UndetectedLogical { .. }, false) => {}
                        other => panic!(
                            "{} rounds={rounds} dt={dt}: SAT and DD disagree: {other:?}",
                            code.name()
                        ),
                    }
                }
                assert_eq!(session.encode_count(), 1);
            }
        }
    }

    #[test]
    fn faulty_enumerator_matches_blocking_clause_sat() {
        // Coefficient-level agreement between the two backends on the
        // truncated range the SAT loop can afford.
        let code = c4_422();
        for rounds in [1, 2] {
            let schedule = ExtractionSchedule::repeated(code.generators().len(), rounds);
            let mut fe =
                FailureEnumerator::with_schedule(&code, &schedule, &CompileConfig::default())
                    .unwrap();
            let sat = sat_enumerator_with_schedule(&code, &schedule, 4);
            assert_eq!(&fe.coefficients()[..5], sat.as_slice(), "rounds={rounds}");
        }
    }

    #[test]
    fn cancelled_compile_reports_cleanly() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let stop = Arc::new(AtomicBool::new(true));
        let err = FailureEnumerator::new(
            &steane(),
            &CompileConfig {
                stop_flags: vec![stop],
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, CompileError::Cancelled);
    }
}
