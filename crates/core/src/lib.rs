//! **Veri-QEC (Rust reproduction)** — the automated QEC program verifier of
//! *Efficient Formal Verification of Quantum Error Correcting Programs*
//! (PLDI 2025).
//!
//! The pipeline: a [`scenario`] builder assembles the QEC program and its
//! correctness formula (Def. 5.1); `veriqec_wp` runs the program logic
//! backward to a normal-form precondition; `veriqec_vcgen` reduces the
//! entailment to classical GF(2) equations (§5.1) and discharges them on the
//! built-in CDCL solver with the minimum-weight decoder specification `P_f`;
//! [`engine`] makes query *families* the unit of work — persistent solver
//! sessions, assumption-driven weight sweeps, and a batch driver whose
//! worker pool serves heterogeneous jobs; [`parallel`] splits the general
//! task with the paper's `ET` enumeration heuristic (streamed lazily to that
//! pool); [`enumerator`] goes beyond the paper's SAT queries to *counting* —
//! exact failure weight enumerators through the decision-diagram backend
//! (`veriqec_dd`); [`sampling`] provides the simulation/testing baseline of
//! the §7.2 comparison. Beyond the paper's perfect-measurement model, the
//! whole stack also carries **measurement noise**: multi-round syndrome
//! extraction with flip-annotated readouts
//! ([`scenario::faulty_memory_scenario`]), split (data, measurement) error
//! budgets ([`tasks::build_problem_split`]), incremental (t_d, t_m)
//! frontier sweeps ([`engine::FaultToleranceSweep`]) and the mirrored
//! noise process in the Pauli-frame sampler
//! ([`sampling::faulty_memory_frame`]).
//!
//! # Examples
//!
//! ```
//! use veriqec::scenario::{memory_scenario, ErrorModel};
//! use veriqec::tasks::verify_correction;
//! use veriqec_codes::steane;
//! use veriqec_sat::SolverConfig;
//!
//! // One round of error correction on the Steane code corrects any single
//! // Y error (Eqn. 2 of the paper, memory case).
//! let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
//! let report = verify_correction(&scenario, 1, SolverConfig::default());
//! assert!(report.outcome.is_verified());
//! ```

pub mod engine;
pub mod enumerator;
pub mod parallel;
pub mod sampling;
pub mod scenario;
pub mod tasks;

pub use engine::{
    BatchReport, CorrectionSweep, DetectionSession, Engine, EngineConfig, FaultToleranceFrontier,
    FaultToleranceSweep, FrontierPoint, Job, JobKind, JobOutcome, JobReport,
};
pub use enumerator::{
    sat_enumerator, sat_enumerator_with_schedule, FailureEnumerator, WeightEnumerator,
};
pub use parallel::{check_parallel, ParallelConfig, ParallelReport, SplitConfig, SubtaskIter};
pub use sampling::{
    exhaustive_frame_check, faulty_memory_frame, prepare_codeword_state, sample_scenario,
    subsets_up_to, FaultyMemoryFrame, SamplingReport,
};
pub use scenario::{
    cnot_propagation_scenario, correction_fault_scenario, faulty_memory_scenario, ghz_scenario,
    logical_h_scenario, memory_scenario, multi_cycle_scenario, nonpauli_scenario, ErrorModel,
    Scenario, ScenarioBuilder,
};
pub use tasks::{
    build_problem, build_problem_split, build_problem_unbounded, discreteness_constraint,
    find_distance, locality_constraint, verify_code_memory, verify_constrained, verify_correction,
    verify_detection, verify_fault_tolerance, verify_nonpauli_memory, DetectionOutcome,
    DistanceOutcome, VerificationReport,
};
