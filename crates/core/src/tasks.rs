//! The verification tasks of Veri-QEC (§7): general correction, precise
//! detection / distance finding, constrained verification, and fixed
//! non-Pauli errors.

use std::time::{Duration, Instant};

use veriqec_cexpr::{BExp, VarId};
use veriqec_codes::StabilizerCode;
use veriqec_decoder::MinWeightSpec;
use veriqec_pauli::Gate1;
use veriqec_sat::SolverConfig;
use veriqec_vcgen::{reduce_commuting, verify_nonpauli, NonPauliOutcome, VcOutcome, VcProblem};
use veriqec_wp::qec_wp;

use crate::engine::DetectionSession;
use crate::scenario::{memory_scenario, nonpauli_scenario, ErrorModel, Scenario};

/// A verification report: the outcome plus timing and problem-size data.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Scenario name.
    pub name: String,
    /// The outcome.
    pub outcome: VcOutcome,
    /// Wall-clock time of the full pipeline (wp + reduction + solving).
    pub wall_time: Duration,
    /// SAT problem size (variables, clauses).
    pub sat_vars: usize,
    /// CNF clause count.
    pub clauses: usize,
    /// Solver conflicts.
    pub conflicts: u64,
}

/// Builds the [`VcProblem`] for a scenario under the error-weight bound
/// `Σe ≤ max_errors` plus optional extra constraints.
///
/// # Panics
///
/// Panics when the weakest-precondition engine or the commuting reduction
/// rejects the scenario (which would be a scenario-construction bug for the
/// Pauli-error flows handled here).
pub fn build_problem(
    scenario: &Scenario,
    max_errors: i64,
    extra_constraints: Vec<BExp>,
) -> VcProblem {
    let mut problem = build_problem_unbounded(scenario, extra_constraints);
    problem.error_constraints.insert(
        0,
        BExp::weight_le(scenario.error_vars.iter().copied(), max_errors),
    );
    problem
}

/// Builds the [`VcProblem`] for a scenario *without* the global error-weight
/// bound: the engine's weight sweeps ([`crate::engine::CorrectionSweep`])
/// supply `Σe ≤ t` as an assumption on a cardinality handle instead of a
/// baked-in clause, so one encoding serves every budget.
///
/// # Panics
///
/// Panics when the weakest-precondition engine or the commuting reduction
/// rejects the scenario (see [`build_problem`]).
pub fn build_problem_unbounded(scenario: &Scenario, extra_constraints: Vec<BExp>) -> VcProblem {
    let wp = qec_wp(&scenario.program, scenario.post.clone())
        .expect("scenario programs live in the QEC fragment");
    let mut vc = reduce_commuting(&scenario.lhs, &wp.pre)
        .expect("Pauli-error scenarios reduce to the commuting case");
    vc.resolve_branches();
    let error_constraints = extra_constraints;
    let decoder_specs = scenario
        .decoders
        .iter()
        .map(|w| MinWeightSpec {
            checks: w.checks.clone(),
            syndromes: w.syndromes.clone(),
            corrections: w.corrections.clone(),
            errors: scenario.error_vars.clone(),
            flips: w.flips.clone(),
            meas_errors: w.meas_errors.clone(),
        })
        .collect();
    VcProblem {
        vc,
        error_constraints,
        decoder_specs,
    }
}

/// Builds the [`VcProblem`] for a faulty-measurement scenario under the
/// *split* error budget: data-error weight `Σe ≤ t_data` and
/// measurement-flip weight `Σm ≤ t_meas` as two separate constraints (the
/// incremental form — all budgets as assumptions on shared cardinality
/// handles — is [`crate::engine::FaultToleranceSweep`]).
///
/// The split budget applies on both sides of the game: the *adversary's*
/// errors are bounded, and every faulty decoder's *claimed* explanation is
/// bounded by the same promise (`Σ c ≤ t_data`, `Σ f ≤ t_meas` per decoder
/// call). The claim bounds are what make repeated extraction decodable —
/// without them a history like `[0, s, s]` (a flip masking a real error in
/// round 1) ties with an all-flips explanation and even `r = 3` rounds
/// would admit a non-correcting minimal decoder.
///
/// # Panics
///
/// See [`build_problem_unbounded`].
pub fn build_problem_split(
    scenario: &Scenario,
    t_data: i64,
    t_meas: i64,
    extra_constraints: Vec<BExp>,
) -> VcProblem {
    let mut problem = build_problem_unbounded(scenario, extra_constraints);
    problem.error_constraints.insert(
        0,
        BExp::weight_le(scenario.error_vars.iter().copied(), t_data),
    );
    problem.error_constraints.insert(
        1,
        BExp::weight_le(scenario.meas_error_vars.iter().copied(), t_meas),
    );
    for spec in &problem.decoder_specs {
        if !spec.flips.is_empty() {
            problem
                .error_constraints
                .push(BExp::weight_le(spec.corrections.iter().copied(), t_data));
            problem
                .error_constraints
                .push(BExp::weight_le(spec.flips.iter().copied(), t_meas));
        }
    }
    problem
}

/// Fault-tolerance verification at one grid point: is every configuration
/// of `≤ t_data` data errors *and* `≤ t_meas` measurement flips corrected?
pub fn verify_fault_tolerance(
    scenario: &Scenario,
    t_data: i64,
    t_meas: i64,
    config: SolverConfig,
) -> VerificationReport {
    let start = Instant::now();
    let problem = build_problem_split(scenario, t_data, t_meas, vec![]);
    let (outcome, stats) = problem.check_with_config(config);
    VerificationReport {
        name: format!("{} (t_d={t_data}, t_m={t_meas})", scenario.name),
        outcome,
        wall_time: start.elapsed(),
        sat_vars: stats.sat_vars,
        clauses: stats.clauses,
        conflicts: stats.conflicts,
    }
}

/// General verification of accurate decoding and correction (Eqn. 14):
/// every error configuration of weight `≤ max_errors` is corrected.
pub fn verify_correction(
    scenario: &Scenario,
    max_errors: i64,
    config: SolverConfig,
) -> VerificationReport {
    let start = Instant::now();
    let problem = build_problem(scenario, max_errors, vec![]);
    let (outcome, stats) = problem.check_with_config(config);
    VerificationReport {
        name: scenario.name.clone(),
        outcome,
        wall_time: start.elapsed(),
        sat_vars: stats.sat_vars,
        clauses: stats.clauses,
        conflicts: stats.conflicts,
    }
}

/// Verification under user-provided error constraints (§7.2).
pub fn verify_constrained(
    scenario: &Scenario,
    max_errors: i64,
    constraints: Vec<BExp>,
    config: SolverConfig,
) -> VerificationReport {
    let start = Instant::now();
    let problem = build_problem(scenario, max_errors, constraints);
    let (outcome, stats) = problem.check_with_config(config);
    VerificationReport {
        name: format!("{} (constrained)", scenario.name),
        outcome,
        wall_time: start.elapsed(),
        sat_vars: stats.sat_vars,
        clauses: stats.clauses,
        conflicts: stats.conflicts,
    }
}

/// The locality constraint of §7.2: errors may only occur on `allowed`
/// qubpositions — all other indicators are forced to 0.
pub fn locality_constraint(scenario: &Scenario, allowed: &[usize]) -> Vec<BExp> {
    // Error variable names end in `_q`; parse the qubit index back out.
    scenario
        .error_vars
        .iter()
        .filter_map(|&v| {
            let name = scenario.vt.name(v);
            let idx: usize = name.rsplit('_').next()?.parse().ok()?;
            if allowed.contains(&idx) {
                None
            } else {
                Some(BExp::not(BExp::var(v)))
            }
        })
        .collect()
}

/// The discreteness constraint of §7.2: qubits are split into `segments`
/// equal contiguous segments, with at most one error per segment.
pub fn discreteness_constraint(scenario: &Scenario, segments: usize) -> Vec<BExp> {
    let n = scenario.num_qubits;
    let seg_len = n.div_ceil(segments);
    (0..segments)
        .map(|s| {
            let lo = s * seg_len;
            let hi = ((s + 1) * seg_len).min(n);
            let vars: Vec<VarId> = scenario
                .error_vars
                .iter()
                .copied()
                .filter(|&v| {
                    let name = scenario.vt.name(v);
                    name.rsplit('_')
                        .next()
                        .and_then(|t| t.parse::<usize>().ok())
                        .is_some_and(|q| q >= lo && q < hi)
                })
                .collect();
            BExp::weight_le(vars, 1)
        })
        .collect()
}

/// Outcome of the precise-detection task (Eqn. 15).
#[derive(Clone, Debug, PartialEq)]
pub enum DetectionOutcome {
    /// Every error of weight in `[1, dt−1]` is detected (UNSAT).
    AllDetected,
    /// An undetectable logical error was found (SAT), reported as the error's
    /// X/Z support.
    UndetectedLogical {
        /// Qubits with an X component.
        x_support: Vec<usize>,
        /// Qubits with a Z component.
        z_support: Vec<usize>,
    },
    /// The solver budget was exhausted (or the query was cancelled) before a
    /// verdict: *not* evidence that all errors are detected.
    Inconclusive,
}

/// Outcome of a distance sweep ([`find_distance`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceOutcome {
    /// The exact distance: weight `d` admits an undetected logical error and
    /// every smaller weight is detected.
    Exact(usize),
    /// Every weight the sweep covered is detected; the distance is at least
    /// the reported value (the sweep's `max + 1`).
    AtLeast(usize),
    /// The solver budget ran out mid-sweep: all weights `< verified_below`
    /// are proven detected (the last threshold that answered UNSAT was
    /// `dt = verified_below`), nothing is known above — explicitly *not* a
    /// distance claim.
    Inconclusive {
        /// Exclusive upper bound on the weights proven detected; `1` when
        /// the very first query was already inconclusive (vacuous).
        verified_below: usize,
    },
}

impl DistanceOutcome {
    /// The exact distance, when the sweep found one.
    pub fn exact(self) -> Option<usize> {
        match self {
            DistanceOutcome::Exact(d) => Some(d),
            _ => None,
        }
    }
}

/// Precise detection (Eqn. 15): does an undetected logical error of weight
/// `< dt` exist? `AllDetected` confirms distance `≥ dt`; budget exhaustion
/// reports [`DetectionOutcome::Inconclusive`]. One-shot form of
/// [`DetectionSession`] — sweeps over `dt` should hold a session instead of
/// re-encoding per threshold.
pub fn verify_detection(
    code: &StabilizerCode,
    dt: usize,
    config: SolverConfig,
) -> DetectionOutcome {
    DetectionSession::new(code, config).check(dt)
}

/// Finds the exact code distance by growing `dt` until an undetected logical
/// error appears (the paper's "identify and output the minimum weight
/// undetectable error" workflow), incrementally: the detection formula is
/// encoded once and every threshold is an assumption query on the same
/// session ([`DetectionSession::find_distance`]).
pub fn find_distance(code: &StabilizerCode, max: usize) -> DistanceOutcome {
    DetectionSession::new(code, SolverConfig::default()).find_distance(max)
}

/// Verifies a fixed non-Pauli (`T`/`H`) error on `qubit` in a one-round
/// memory scenario, discharging via the case-3 heuristic with the exact
/// minimum-weight lookup decoder as `P_f` witness.
///
/// # Panics
///
/// Panics when the code is not CSS (the fixed-error pipeline builds the
/// CSS lookup decoder).
pub fn verify_nonpauli_memory(
    code: &StabilizerCode,
    gate: Gate1,
    qubit: usize,
) -> Result<NonPauliOutcome, veriqec_vcgen::NonPauliError> {
    let scenario = nonpauli_scenario(code, gate, qubit);
    let wp = qec_wp(&scenario.program, scenario.post.clone())
        .expect("fixed-error scenarios stay in the QEC fragment");
    let decoder = veriqec_decoder::CssLookupDecoder::for_code(
        code,
        (code.claimed_distance().unwrap_or(3) / 2).max(1),
    );
    let oracle = veriqec_decoder::decode_call_oracle(decoder, code.n());
    verify_nonpauli(&scenario.lhs, &wp, &oracle, &scenario.params)
}

/// Convenience: the standard one-round memory verification for a code.
pub fn verify_code_memory(code: &StabilizerCode, model: ErrorModel) -> VerificationReport {
    let t = (code.claimed_distance().unwrap_or(1) as i64 - 1) / 2;
    let scenario = memory_scenario(code, model);
    verify_correction(&scenario, t, SolverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::{rotated_surface, steane};

    #[test]
    fn steane_memory_verifies_single_y_errors() {
        let report = verify_code_memory(&steane(), ErrorModel::YErrors);
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn steane_memory_fails_for_two_errors() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let report = verify_correction(&scenario, 2, SolverConfig::default());
        assert!(
            matches!(report.outcome, VcOutcome::CounterExample(_)),
            "two errors must break a distance-3 code"
        );
    }

    #[test]
    fn steane_detection_distance() {
        let code = steane();
        assert_eq!(
            verify_detection(&code, 3, SolverConfig::default()),
            DetectionOutcome::AllDetected
        );
        let out = verify_detection(&code, 4, SolverConfig::default());
        let DetectionOutcome::UndetectedLogical {
            x_support,
            z_support,
        } = out
        else {
            panic!("distance-3 code has a weight-3 logical");
        };
        assert_eq!(
            x_support.len().max(z_support.len()).max(
                x_support
                    .iter()
                    .chain(&z_support)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            ),
            3
        );
        assert_eq!(find_distance(&code, 4), DistanceOutcome::Exact(3));
    }

    #[test]
    fn faulty_measurement_needs_repeated_extraction() {
        use crate::scenario::faulty_memory_scenario;
        let code = steane();
        // Single round: one readout flip can mask or fake a syndrome, so
        // (t_d, t_m) = (1, 1) must fail…
        let r1 = faulty_memory_scenario(&code, ErrorModel::YErrors, 1);
        let out = verify_fault_tolerance(&r1, 1, 1, SolverConfig::default());
        assert!(
            matches!(out.outcome, VcOutcome::CounterExample(_)),
            "single-round extraction cannot be (1,1)-correctable: {:?}",
            out.outcome
        );
        // …while the degenerate budgets still verify: t_m = 0 is the
        // perfect-measurement model, t_d = 0 means nothing needs correcting.
        assert!(verify_fault_tolerance(&r1, 1, 0, SolverConfig::default())
            .outcome
            .is_verified());
        assert!(verify_fault_tolerance(&r1, 0, 1, SolverConfig::default())
            .outcome
            .is_verified());
        // Three rounds out-vote a single flip: (1, 1) verifies.
        let r3 = faulty_memory_scenario(&code, ErrorModel::YErrors, 3);
        let out = verify_fault_tolerance(&r3, 1, 1, SolverConfig::default());
        assert!(out.outcome.is_verified(), "{:?}", out.outcome);
        // Two rounds are not enough: [0, s] stays ambiguous.
        let r2 = faulty_memory_scenario(&code, ErrorModel::YErrors, 2);
        assert!(matches!(
            verify_fault_tolerance(&r2, 1, 1, SolverConfig::default()).outcome,
            VcOutcome::CounterExample(_)
        ));
    }

    #[test]
    fn surface3_memory_verifies() {
        let scenario = memory_scenario(&rotated_surface(3), ErrorModel::YErrors);
        let report = verify_correction(&scenario, 1, SolverConfig::default());
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn surface3_distance_via_detection() {
        assert_eq!(
            find_distance(&rotated_surface(3), 4),
            DistanceOutcome::Exact(3)
        );
    }

    #[test]
    fn distance_sweep_distinguishes_at_least_from_exact() {
        // Sweeping the Steane code only up to weight 2 proves d ≥ 3 without
        // claiming an exact distance.
        assert_eq!(find_distance(&steane(), 2), DistanceOutcome::AtLeast(3));
        assert_eq!(DistanceOutcome::AtLeast(3).exact(), None);
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_all_detected() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // The old code mapped solver-budget exhaustion to AllDetected,
        // silently inflating distances. A pre-raised stop flag forces the
        // Unknown path deterministically.
        let code = rotated_surface(3);
        let mut session = crate::engine::DetectionSession::new(&code, SolverConfig::default());
        session.set_stop_flag(Arc::new(AtomicBool::new(true)));
        assert_eq!(session.check(4), DetectionOutcome::Inconclusive);
        // And the sweep propagates it instead of claiming a distance. With
        // the very first query (dt = 2) inconclusive, nothing at all is
        // proven: verified_below must be the vacuous 1, not 2.
        assert_eq!(
            session.find_distance(4),
            DistanceOutcome::Inconclusive { verified_below: 1 }
        );
        // A tiny conflict budget likewise must never report AllDetected on
        // this satisfiable query.
        let starved = SolverConfig {
            conflict_budget: Some(1),
            ..SolverConfig::default()
        };
        assert_ne!(
            verify_detection(&code, 4, starved),
            DetectionOutcome::AllDetected
        );
    }
}
