//! The verification tasks of Veri-QEC (§7): general correction, precise
//! detection / distance finding, constrained verification, and fixed
//! non-Pauli errors.

use std::time::{Duration, Instant};

use veriqec_cexpr::{Affine, BExp, CMem, VarId, VarRole, VarTable};
use veriqec_codes::StabilizerCode;
use veriqec_decoder::MinWeightSpec;
use veriqec_pauli::Gate1;
use veriqec_sat::SolverConfig;
use veriqec_smt::{CheckResult, SmtContext};
use veriqec_vcgen::{reduce_commuting, verify_nonpauli, NonPauliOutcome, VcOutcome, VcProblem};
use veriqec_wp::qec_wp;

use crate::scenario::{memory_scenario, nonpauli_scenario, ErrorModel, Scenario};

/// A verification report: the outcome plus timing and problem-size data.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Scenario name.
    pub name: String,
    /// The outcome.
    pub outcome: VcOutcome,
    /// Wall-clock time of the full pipeline (wp + reduction + solving).
    pub wall_time: Duration,
    /// SAT problem size (variables, clauses).
    pub sat_vars: usize,
    /// CNF clause count.
    pub clauses: usize,
    /// Solver conflicts.
    pub conflicts: u64,
}

/// Builds the [`VcProblem`] for a scenario under the error-weight bound
/// `Σe ≤ max_errors` plus optional extra constraints.
///
/// # Panics
///
/// Panics when the weakest-precondition engine or the commuting reduction
/// rejects the scenario (which would be a scenario-construction bug for the
/// Pauli-error flows handled here).
pub fn build_problem(
    scenario: &Scenario,
    max_errors: i64,
    extra_constraints: Vec<BExp>,
) -> VcProblem {
    let wp = qec_wp(&scenario.program, scenario.post.clone())
        .expect("scenario programs live in the QEC fragment");
    let mut vc = reduce_commuting(&scenario.lhs, &wp.pre)
        .expect("Pauli-error scenarios reduce to the commuting case");
    vc.resolve_branches();
    let mut error_constraints = vec![BExp::weight_le(
        scenario.error_vars.iter().copied(),
        max_errors,
    )];
    error_constraints.extend(extra_constraints);
    let decoder_specs = scenario
        .decoders
        .iter()
        .map(|w| MinWeightSpec {
            checks: w.checks.clone(),
            syndromes: w.syndromes.clone(),
            corrections: w.corrections.clone(),
            errors: scenario.error_vars.clone(),
        })
        .collect();
    VcProblem {
        vc,
        error_constraints,
        decoder_specs,
    }
}

/// General verification of accurate decoding and correction (Eqn. 14):
/// every error configuration of weight `≤ max_errors` is corrected.
pub fn verify_correction(
    scenario: &Scenario,
    max_errors: i64,
    config: SolverConfig,
) -> VerificationReport {
    let start = Instant::now();
    let problem = build_problem(scenario, max_errors, vec![]);
    let (outcome, stats) = problem.check_with_config(config);
    VerificationReport {
        name: scenario.name.clone(),
        outcome,
        wall_time: start.elapsed(),
        sat_vars: stats.sat_vars,
        clauses: stats.clauses,
        conflicts: stats.conflicts,
    }
}

/// Verification under user-provided error constraints (§7.2).
pub fn verify_constrained(
    scenario: &Scenario,
    max_errors: i64,
    constraints: Vec<BExp>,
    config: SolverConfig,
) -> VerificationReport {
    let start = Instant::now();
    let problem = build_problem(scenario, max_errors, constraints);
    let (outcome, stats) = problem.check_with_config(config);
    VerificationReport {
        name: format!("{} (constrained)", scenario.name),
        outcome,
        wall_time: start.elapsed(),
        sat_vars: stats.sat_vars,
        clauses: stats.clauses,
        conflicts: stats.conflicts,
    }
}

/// The locality constraint of §7.2: errors may only occur on `allowed`
/// qubpositions — all other indicators are forced to 0.
pub fn locality_constraint(scenario: &Scenario, allowed: &[usize]) -> Vec<BExp> {
    // Error variable names end in `_q`; parse the qubit index back out.
    scenario
        .error_vars
        .iter()
        .filter_map(|&v| {
            let name = scenario.vt.name(v);
            let idx: usize = name.rsplit('_').next()?.parse().ok()?;
            if allowed.contains(&idx) {
                None
            } else {
                Some(BExp::not(BExp::var(v)))
            }
        })
        .collect()
}

/// The discreteness constraint of §7.2: qubits are split into `segments`
/// equal contiguous segments, with at most one error per segment.
pub fn discreteness_constraint(scenario: &Scenario, segments: usize) -> Vec<BExp> {
    let n = scenario.num_qubits;
    let seg_len = n.div_ceil(segments);
    (0..segments)
        .map(|s| {
            let lo = s * seg_len;
            let hi = ((s + 1) * seg_len).min(n);
            let vars: Vec<VarId> = scenario
                .error_vars
                .iter()
                .copied()
                .filter(|&v| {
                    let name = scenario.vt.name(v);
                    name.rsplit('_')
                        .next()
                        .and_then(|t| t.parse::<usize>().ok())
                        .is_some_and(|q| q >= lo && q < hi)
                })
                .collect();
            BExp::weight_le(vars, 1)
        })
        .collect()
}

/// Outcome of the precise-detection task (Eqn. 15).
#[derive(Clone, Debug, PartialEq)]
pub enum DetectionOutcome {
    /// Every error of weight in `[1, dt−1]` is detected (UNSAT).
    AllDetected,
    /// An undetectable logical error was found (SAT), reported as the error's
    /// X/Z support.
    UndetectedLogical {
        /// Qubits with an X component.
        x_support: Vec<usize>,
        /// Qubits with a Z component.
        z_support: Vec<usize>,
    },
}

/// Precise detection (Eqn. 15): does an undetected logical error of weight
/// `< dt` exist? `AllDetected` confirms distance `≥ dt`.
pub fn verify_detection(
    code: &StabilizerCode,
    dt: usize,
    config: SolverConfig,
) -> DetectionOutcome {
    let n = code.n();
    let mut vt = VarTable::new();
    let ex: Vec<VarId> = (0..n)
        .map(|q| vt.fresh_indexed("ex", q, VarRole::Error))
        .collect();
    let ez: Vec<VarId> = (0..n)
        .map(|q| vt.fresh_indexed("ez", q, VarRole::Error))
        .collect();
    let mut ctx = SmtContext::with_config(config);
    // Weight: number of qubits with any component, in [1, dt−1].
    let support: Vec<_> = (0..n)
        .map(|q| {
            let lx = ctx.lit_of(ex[q]);
            let lz = ctx.lit_of(ez[q]);
            ctx.reify_disj(&[lx, lz])
        })
        .collect();
    ctx.assert_at_least(&support, 1);
    ctx.assert_at_most(&support, dt as i64 - 1);
    // All syndromes zero: error commutes with every generator.
    for g in code.generators() {
        let mut aff = Affine::zero();
        for q in 0..n {
            if g.pauli().x_bit(q) {
                aff.xor_var(ez[q]);
            }
            if g.pauli().z_bit(q) {
                aff.xor_var(ex[q]);
            }
        }
        ctx.assert_affine_eq(&aff, false);
    }
    // Some logical operator anticommutes with the error.
    let mut flips = Vec::new();
    for l in code.logical_x().iter().chain(code.logical_z()) {
        let mut aff = Affine::zero();
        for q in 0..n {
            if l.pauli().x_bit(q) {
                aff.xor_var(ez[q]);
            }
            if l.pauli().z_bit(q) {
                aff.xor_var(ex[q]);
            }
        }
        flips.push(ctx.reify_affine(&aff));
    }
    ctx.add_clause(flips);
    match ctx.check(&[]) {
        CheckResult::Unsat => DetectionOutcome::AllDetected,
        CheckResult::Sat => {
            let m = ctx.model();
            let sup = |vars: &[VarId], m: &CMem| {
                vars.iter()
                    .enumerate()
                    .filter_map(|(q, &v)| m.get(v).as_bool().then_some(q))
                    .collect::<Vec<_>>()
            };
            DetectionOutcome::UndetectedLogical {
                x_support: sup(&ex, &m),
                z_support: sup(&ez, &m),
            }
        }
        CheckResult::Unknown => DetectionOutcome::AllDetected, // budget; treat as inconclusive
    }
}

/// Finds the exact code distance by growing `dt` until an undetected logical
/// error appears (the paper's "identify and output the minimum weight
/// undetectable error" workflow).
pub fn find_distance(code: &StabilizerCode, max: usize) -> Option<usize> {
    for dt in 2..=max + 1 {
        if verify_detection(code, dt, SolverConfig::default()) != DetectionOutcome::AllDetected {
            return Some(dt - 1);
        }
    }
    None
}

/// Verifies a fixed non-Pauli (`T`/`H`) error on `qubit` in a one-round
/// memory scenario, discharging via the case-3 heuristic with the exact
/// minimum-weight lookup decoder as `P_f` witness.
///
/// # Panics
///
/// Panics when the code is not CSS (the fixed-error pipeline builds the
/// CSS lookup decoder).
pub fn verify_nonpauli_memory(
    code: &StabilizerCode,
    gate: Gate1,
    qubit: usize,
) -> Result<NonPauliOutcome, veriqec_vcgen::NonPauliError> {
    let scenario = nonpauli_scenario(code, gate, qubit);
    let wp = qec_wp(&scenario.program, scenario.post.clone())
        .expect("fixed-error scenarios stay in the QEC fragment");
    let decoder = veriqec_decoder::CssLookupDecoder::for_code(
        code,
        (code.claimed_distance().unwrap_or(3) / 2).max(1),
    );
    let oracle = veriqec_decoder::decode_call_oracle(decoder, code.n());
    verify_nonpauli(&scenario.lhs, &wp, &oracle, &scenario.params)
}

/// Convenience: the standard one-round memory verification for a code.
pub fn verify_code_memory(code: &StabilizerCode, model: ErrorModel) -> VerificationReport {
    let t = (code.claimed_distance().unwrap_or(1) as i64 - 1) / 2;
    let scenario = memory_scenario(code, model);
    verify_correction(&scenario, t, SolverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::{rotated_surface, steane};

    #[test]
    fn steane_memory_verifies_single_y_errors() {
        let report = verify_code_memory(&steane(), ErrorModel::YErrors);
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn steane_memory_fails_for_two_errors() {
        let scenario = memory_scenario(&steane(), ErrorModel::YErrors);
        let report = verify_correction(&scenario, 2, SolverConfig::default());
        assert!(
            matches!(report.outcome, VcOutcome::CounterExample(_)),
            "two errors must break a distance-3 code"
        );
    }

    #[test]
    fn steane_detection_distance() {
        let code = steane();
        assert_eq!(
            verify_detection(&code, 3, SolverConfig::default()),
            DetectionOutcome::AllDetected
        );
        let out = verify_detection(&code, 4, SolverConfig::default());
        let DetectionOutcome::UndetectedLogical {
            x_support,
            z_support,
        } = out
        else {
            panic!("distance-3 code has a weight-3 logical");
        };
        assert_eq!(
            x_support.len().max(z_support.len()).max(
                x_support
                    .iter()
                    .chain(&z_support)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            ),
            3
        );
        assert_eq!(find_distance(&code, 4), Some(3));
    }

    #[test]
    fn surface3_memory_verifies() {
        let scenario = memory_scenario(&rotated_surface(3), ErrorModel::YErrors);
        let report = verify_correction(&scenario, 1, SolverConfig::default());
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn surface3_distance_via_detection() {
        assert_eq!(find_distance(&rotated_surface(3), 4), Some(3));
    }
}
