//! The warm-session pool.
//!
//! The PR 3 incremental machinery ([`DetectionSession`],
//! [`FaultToleranceSweep`]) pays its encoding cost once and answers every
//! subsequent query by assumptions — but the batch drivers throw sessions
//! away after each run. The daemon keeps a bounded pool of them keyed by
//! code + scenario + solver budget, so a repeat query against the same
//! code skips straight to the assumption query (the smoke test pins this
//! via the sessions' `encode_count`, which stays at 1 across requests).
//!
//! Sessions are *checked out* (removed) while in use — two concurrent
//! requests for the same code simply build a second session rather than
//! block — and checked back in afterwards. Past `cap` sessions the
//! least-recently-returned one is dropped.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

use veriqec::engine::{DetectionSession, FaultToleranceSweep};

/// A pooled incremental session.
#[derive(Debug)]
pub enum WarmSession {
    /// Serves detection *and* distance requests (a distance sweep is a
    /// sequence of detection queries on the same encoding).
    Detection(Box<DetectionSession>),
    /// Serves fault-tolerance frontier requests.
    Frontier(Box<FaultToleranceSweep>),
}

struct Slot {
    seq: u64,
    session: WarmSession,
}

/// A bounded pool of [`WarmSession`]s keyed by code + scenario + budget.
#[derive(Default)]
pub struct SessionPool {
    slots: Mutex<Slots>,
    cap: usize,
}

#[derive(Default)]
struct Slots {
    map: HashMap<String, Slot>,
    next_seq: u64,
}

impl SessionPool {
    /// An empty pool holding at most `cap` idle sessions.
    pub fn new(cap: usize) -> Self {
        SessionPool {
            slots: Mutex::new(Slots::default()),
            cap: cap.max(1),
        }
    }

    /// Removes and returns the idle session under `key`, if any.
    pub fn checkout(&self, key: &str) -> Option<WarmSession> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.map.remove(key).map(|s| s.session)
    }

    /// Returns a session to the pool; evicts the least-recently-returned
    /// session when full.
    pub fn checkin(&self, key: String, session: WarmSession) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.next_seq += 1;
        let seq = slots.next_seq;
        slots.map.insert(key, Slot { seq, session });
        while slots.map.len() > self.cap {
            let Some(oldest) = slots
                .map
                .iter()
                .min_by_key(|(_, s)| s.seq)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            slots.map.remove(&oldest);
        }
    }

    /// Number of idle sessions currently pooled.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// True when no session is pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veriqec_codes::steane;
    use veriqec_sat::SolverConfig;

    fn session() -> WarmSession {
        WarmSession::Detection(Box::new(DetectionSession::new(
            &steane(),
            SolverConfig::default(),
        )))
    }

    #[test]
    fn checkout_removes_and_checkin_restores() {
        let pool = SessionPool::new(4);
        assert!(pool.checkout("det|steane").is_none());
        pool.checkin("det|steane".into(), session());
        assert_eq!(pool.len(), 1);
        let s = pool.checkout("det|steane").expect("pooled session");
        assert!(pool.is_empty());
        // While checked out, a second request for the same key misses.
        assert!(pool.checkout("det|steane").is_none());
        pool.checkin("det|steane".into(), s);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn eviction_drops_the_least_recently_returned() {
        let pool = SessionPool::new(2);
        pool.checkin("a".into(), session());
        pool.checkin("b".into(), session());
        pool.checkin("c".into(), session());
        assert_eq!(pool.len(), 2);
        assert!(pool.checkout("a").is_none(), "oldest should be evicted");
        assert!(pool.checkout("b").is_some());
        assert!(pool.checkout("c").is_some());
    }

    #[test]
    fn a_reused_detection_session_does_not_re_encode() {
        let pool = SessionPool::new(2);
        pool.checkin("det|steane".into(), session());
        let Some(WarmSession::Detection(mut s)) = pool.checkout("det|steane") else {
            panic!("expected a detection session");
        };
        s.find_distance(4);
        assert_eq!(s.encode_count(), 1);
        let queries = s.query_count();
        assert!(queries > 0);
        pool.checkin("det|steane".into(), WarmSession::Detection(s));
        let Some(WarmSession::Detection(mut s)) = pool.checkout("det|steane") else {
            panic!("expected the same session back");
        };
        s.find_distance(4);
        assert_eq!(s.encode_count(), 1, "warm reuse must not re-encode");
        assert!(s.query_count() > queries);
    }
}
