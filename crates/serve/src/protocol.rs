//! The newline-delimited-JSON line protocol: request parsing, the zoo/
//! inline code registry, and the canonical cache-key derivation.
//!
//! One request per line, one response per line. A request is a JSON object
//! with an `op` (`"verify"`, `"stats"`, `"shutdown"`; `"verify"` when
//! omitted); verify requests name a job `kind` (`"detection"`,
//! `"distance"`, `"count"`, `"fault_tolerance"`), a code (a zoo name in
//! `"code"` or inline `"stabilizers"`), an optional error `"model"` and
//! extraction `"rounds"`, per-kind parameters (`"dt"`, `"max"`,
//! `"max_t_data"`/`"max_t_meas"`), and budgets (`"conflict_budget"`,
//! `"node_limit"`, `"deadline_ms"`). Anything the parser rejects becomes a
//! structured `{"ok":false,"error":…}` response — never a dead connection.

use veriqec::scenario::ErrorModel;
use veriqec_codes::{
    c4_422, carbon_12_2_4, cube_color_822, five_qubit, gottesman8, hgp_hamming, reed_muller,
    repetition, rotated_surface, shor9, six_qubit, steane, toric, xzzx_surface, StabilizerCode,
};
use veriqec_pauli::{PauliString, StabilizerGroup, SymPauli};

use crate::json::Json;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run one verification job.
    Verify(Box<VerifyRequest>),
    /// Report server counters (cache hits/misses, shed requests, …).
    Stats,
    /// Begin a graceful drain: stop accepting, finish in-flight work, exit.
    Shutdown,
}

/// One verification request.
#[derive(Clone, Debug)]
pub struct VerifyRequest {
    /// The client's `id`, re-rendered as a JSON token for the echo.
    pub id: Option<String>,
    /// The job kind and its parameters.
    pub kind: RequestKind,
    /// The code under test.
    pub code: CodeSpec,
    /// Error model for scenario-based kinds (default `YErrors`).
    pub model: ErrorModel,
    /// Extraction rounds: 0 = perfect extraction; ≥ 1 = repeated noisy
    /// extraction (fault-tolerance kinds treat 0 as 1).
    pub rounds: usize,
    /// CDCL conflict budget override.
    pub conflict_budget: Option<u64>,
    /// Decision-diagram node budget (count jobs).
    pub node_limit: Option<usize>,
    /// Wall-clock deadline; lowered onto the session/engine stop flags.
    pub deadline_ms: Option<u64>,
}

/// The job kind of a [`VerifyRequest`].
#[derive(Clone, Debug)]
pub enum RequestKind {
    /// One precise-detection query at threshold `dt`.
    Detection {
        /// Detection threshold.
        dt: usize,
    },
    /// Incremental distance discovery up to `max` (`None` = derived from
    /// the code's claimed distance, falling back to `n`).
    Distance {
        /// Largest weight to sweep.
        max: Option<usize>,
    },
    /// Exact failure weight enumerator via the decision-diagram backend.
    Count,
    /// Fault-tolerance frontier sweep up to the given budget maxima.
    FaultTolerance {
        /// Largest data budget (inclusive).
        max_t_data: usize,
        /// Largest measurement budget (inclusive).
        max_t_meas: usize,
    },
}

impl RequestKind {
    /// Short tag used in job names, spans, and cache keys.
    pub fn tag(&self) -> &'static str {
        match self {
            RequestKind::Detection { .. } => "detection",
            RequestKind::Distance { .. } => "distance",
            RequestKind::Count => "count",
            RequestKind::FaultTolerance { .. } => "fault_tolerance",
        }
    }
}

/// The code a request names: a registry entry or inline stabilizers.
#[derive(Clone, Debug)]
pub enum CodeSpec {
    /// A zoo name such as `"steane"`, `"surface_5"`, `"repetition_3"`.
    Zoo(String),
    /// Inline stabilizer generators as Pauli letter strings.
    Inline {
        /// Display name (`"inline"` when the request gives none).
        name: String,
        /// One generator per string, e.g. `["ZZI", "IZZ"]`.
        stabilizers: Vec<String>,
        /// Claimed distance, if the client knows one.
        distance: Option<usize>,
    },
}

impl CodeSpec {
    /// Stable identity of the code for cache and session-pool keys. Zoo
    /// names are the key; inline codes key on their generator strings, so
    /// two requests with the same stabilizers share cache entries.
    pub fn key(&self) -> String {
        match self {
            CodeSpec::Zoo(name) => name.clone(),
            CodeSpec::Inline {
                stabilizers,
                distance,
                ..
            } => format!("inline:{}:d{:?}", stabilizers.join("+"), distance),
        }
    }
}

/// Parses one request line. Every failure is a client-visible message; the
/// server wraps it in a structured error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("parse: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("parse: request must be a JSON object".into());
    }
    let op = match doc.get("op") {
        None => "verify",
        Some(v) => v.as_str().ok_or("parse: \"op\" must be a string")?,
    };
    match op {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "verify" => Ok(Request::Verify(Box::new(parse_verify(&doc)?))),
        other => Err(format!(
            "unsupported op {other:?} (expected \"verify\", \"stats\" or \"shutdown\")"
        )),
    }
}

fn parse_verify(doc: &Json) -> Result<VerifyRequest, String> {
    let id = doc.get("id").map(render_id_token).transpose()?;
    let kind_name = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("verify requests need a string \"kind\"")?;
    let kind = match kind_name {
        "detection" => RequestKind::Detection {
            dt: usize_field(doc, "dt")?.ok_or("detection requests need \"dt\"")?,
        },
        "distance" => RequestKind::Distance {
            max: usize_field(doc, "max")?,
        },
        "count" => RequestKind::Count,
        "fault_tolerance" => RequestKind::FaultTolerance {
            max_t_data: usize_field(doc, "max_t_data")?.unwrap_or(1),
            max_t_meas: usize_field(doc, "max_t_meas")?.unwrap_or(1),
        },
        other => {
            return Err(format!(
                "unknown kind {other:?} (expected detection|distance|count|fault_tolerance)"
            ))
        }
    };
    let code = match (doc.get("code"), doc.get("stabilizers")) {
        (Some(_), Some(_)) => {
            return Err("give either \"code\" or \"stabilizers\", not both".into())
        }
        (Some(c), None) => {
            CodeSpec::Zoo(c.as_str().ok_or("\"code\" must be a string")?.to_string())
        }
        (None, Some(s)) => {
            let arr = s.as_arr().ok_or("\"stabilizers\" must be an array")?;
            let stabilizers: Vec<String> = arr
                .iter()
                .map(|g| {
                    g.as_str()
                        .map(str::to_string)
                        .ok_or("\"stabilizers\" entries must be strings")
                })
                .collect::<Result<_, _>>()?;
            if stabilizers.is_empty() {
                return Err("\"stabilizers\" must not be empty".into());
            }
            CodeSpec::Inline {
                name: doc
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("inline")
                    .to_string(),
                stabilizers,
                distance: usize_field(doc, "distance")?,
            }
        }
        (None, None) => return Err("verify requests need \"code\" or \"stabilizers\"".into()),
    };
    let model = match doc.get("model") {
        None => ErrorModel::YErrors,
        Some(m) => match m.as_str().ok_or("\"model\" must be a string")? {
            "x" => ErrorModel::XErrors,
            "z" => ErrorModel::ZErrors,
            "y" => ErrorModel::YErrors,
            "depolarizing" => ErrorModel::Depolarizing,
            other => {
                return Err(format!(
                    "unknown model {other:?} (expected x|z|y|depolarizing)"
                ))
            }
        },
    };
    Ok(VerifyRequest {
        id,
        kind,
        code,
        model,
        rounds: usize_field(doc, "rounds")?.unwrap_or(0),
        conflict_budget: usize_field(doc, "conflict_budget")?.map(|v| v as u64),
        node_limit: usize_field(doc, "node_limit")?,
        deadline_ms: usize_field(doc, "deadline_ms")?.map(|v| v as u64),
    })
}

/// Reads an optional non-negative integer field.
fn usize_field(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("\"{key}\" must be a number"))?;
            if x < 0.0 || x.fract() != 0.0 || x > (1u64 << 53) as f64 {
                return Err(format!("\"{key}\" must be a non-negative integer"));
            }
            Ok(Some(x as usize))
        }
    }
}

/// Re-renders the client's `id` as a JSON token so responses echo it
/// verbatim (numbers stay numbers, strings stay strings).
fn render_id_token(v: &Json) -> Result<String, String> {
    match v {
        Json::Num(x) if x.fract() == 0.0 => Ok(format!("{}", *x as i64)),
        Json::Num(x) => Ok(format!("{x}")),
        Json::Str(s) => Ok(format!("\"{}\"", json_escape(s))),
        _ => Err("\"id\" must be a number or string".into()),
    }
}

/// Escapes a string for embedding in a JSON response.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The canonical content string a request's verdict is addressed by:
/// job kind × code × scenario (model, rounds) × schedule parameters ×
/// solver/diagram budgets. Deliberately excludes the deadline (a verdict
/// is a verdict no matter how long the client was willing to wait) and the
/// request `id`.
pub fn canonical_request(req: &VerifyRequest) -> String {
    let params = match &req.kind {
        RequestKind::Detection { dt } => format!("dt={dt}"),
        RequestKind::Distance { max } => format!("max={max:?}"),
        RequestKind::Count => "-".to_string(),
        RequestKind::FaultTolerance {
            max_t_data,
            max_t_meas,
        } => format!("td={max_t_data},tm={max_t_meas}"),
    };
    format!(
        "kind={};code={};model={:?};rounds={};params={};cb={:?};nl={:?}",
        req.kind.tag(),
        req.code.key(),
        req.model,
        req.rounds,
        params,
        req.conflict_budget,
        req.node_limit,
    )
}

/// Resolves a [`CodeSpec`] to a concrete code. Zoo names with a size
/// suffix (`surface_5`, `repetition_3`, `toric_3`, `xzzx_5`,
/// `reed_muller_4`) are validated here so a bad size is a clean error,
/// not a construction panic.
pub fn resolve_code(spec: &CodeSpec) -> Result<StabilizerCode, String> {
    match spec {
        CodeSpec::Zoo(name) => resolve_zoo(name),
        CodeSpec::Inline {
            name,
            stabilizers,
            distance,
        } => {
            let gens: Vec<SymPauli> = stabilizers
                .iter()
                .map(|s| {
                    PauliString::from_letters(s)
                        .map(SymPauli::plain)
                        .map_err(|e| format!("bad stabilizer {s:?}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let group =
                StabilizerGroup::new(gens).map_err(|e| format!("bad stabilizer group: {e}"))?;
            Ok(StabilizerCode::with_completed_logicals(
                name.clone(),
                group,
                *distance,
            ))
        }
    }
}

fn resolve_zoo(name: &str) -> Result<StabilizerCode, String> {
    let sized = |prefix: &str| -> Option<Result<usize, String>> {
        name.strip_prefix(prefix).map(|suffix| {
            suffix
                .parse::<usize>()
                .map_err(|_| format!("bad size suffix in {name:?}"))
        })
    };
    if let Some(d) = sized("surface_").or_else(|| sized("rotated_surface_")) {
        let d = d?;
        if d < 3 || d % 2 == 0 {
            return Err(format!("surface codes need odd d >= 3, got {d}"));
        }
        return Ok(rotated_surface(d));
    }
    if let Some(d) = sized("xzzx_") {
        let d = d?;
        if d < 3 || d % 2 == 0 {
            return Err(format!("xzzx codes need odd d >= 3, got {d}"));
        }
        return Ok(xzzx_surface(d));
    }
    if let Some(n) = sized("repetition_") {
        let n = n?;
        if n < 2 {
            return Err(format!("repetition codes need n >= 2, got {n}"));
        }
        return Ok(repetition(n));
    }
    if let Some(d) = sized("toric_") {
        let d = d?;
        if d < 2 {
            return Err(format!("toric codes need d >= 2, got {d}"));
        }
        return Ok(toric(d));
    }
    if let Some(r) = sized("reed_muller_") {
        let r = r?;
        if !(3..=8).contains(&r) {
            return Err(format!("reed_muller supports 3 <= r <= 8, got {r}"));
        }
        return Ok(reed_muller(r));
    }
    match name {
        "steane" => Ok(steane()),
        "five_qubit" => Ok(five_qubit()),
        "six_qubit" => Ok(six_qubit()),
        "shor9" => Ok(shor9()),
        "gottesman8" => Ok(gottesman8()),
        "c4_422" => Ok(c4_422()),
        "cube_color_822" => Ok(cube_color_822()),
        "carbon" | "carbon_12_2_4" => Ok(carbon_12_2_4()),
        "hgp_hamming" => Ok(hgp_hamming()),
        _ => Err(format!(
            "unknown code {name:?} (zoo names: steane, five_qubit, six_qubit, shor9, \
             gottesman8, c4_422, cube_color_822, carbon, hgp_hamming, repetition_N, \
             surface_D, xzzx_D, toric_D, reed_muller_R; or inline \"stabilizers\")"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_verify_request() {
        let req = parse_request(
            r#"{"id":7,"op":"verify","kind":"distance","code":"steane","max":4,
               "conflict_budget":1000,"deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Verify(v) = req else {
            panic!("not a verify request");
        };
        assert_eq!(v.id.as_deref(), Some("7"));
        assert!(matches!(v.kind, RequestKind::Distance { max: Some(4) }));
        assert!(matches!(&v.code, CodeSpec::Zoo(n) if n == "steane"));
        assert_eq!(v.conflict_budget, Some(1000));
        assert_eq!(v.deadline_ms, Some(250));
        assert_eq!(v.rounds, 0);
    }

    #[test]
    fn op_defaults_to_verify_and_ids_echo_strings() {
        let req =
            parse_request(r#"{"id":"abc","kind":"detection","code":"steane","dt":3}"#).unwrap();
        let Request::Verify(v) = req else {
            panic!("not a verify request");
        };
        assert_eq!(v.id.as_deref(), Some("\"abc\""));
        assert!(matches!(v.kind, RequestKind::Detection { dt: 3 }));
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("{\"op\":\"verify\"", "parse"),
            ("[1,2]", "object"),
            (r#"{"op":"frobnicate"}"#, "unsupported op"),
            (r#"{"kind":"distance"}"#, "\"code\" or \"stabilizers\""),
            (r#"{"kind":"warp","code":"steane"}"#, "unknown kind"),
            (r#"{"kind":"detection","code":"steane"}"#, "\"dt\""),
            (
                r#"{"kind":"distance","code":"steane","max":-1}"#,
                "non-negative",
            ),
            (
                r#"{"kind":"distance","code":"steane","model":"w"}"#,
                "unknown model",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn zoo_registry_resolves_and_validates() {
        assert_eq!(resolve_zoo("steane").unwrap().n(), 7);
        assert_eq!(resolve_zoo("surface_3").unwrap().n(), 9);
        assert_eq!(resolve_zoo("repetition_3").unwrap().n(), 3);
        assert!(resolve_zoo("surface_4").unwrap_err().contains("odd"));
        assert!(resolve_zoo("repetition_1").unwrap_err().contains("n >= 2"));
        assert!(resolve_zoo("surface_x").unwrap_err().contains("suffix"));
        assert!(resolve_zoo("bogus_99")
            .unwrap_err()
            .contains("unknown code"));
    }

    #[test]
    fn inline_stabilizers_build_a_code() {
        let spec = CodeSpec::Inline {
            name: "rep3".into(),
            stabilizers: vec!["ZZI".into(), "IZZ".into()],
            distance: Some(3),
        };
        let code = resolve_code(&spec).unwrap();
        assert_eq!((code.n(), code.k()), (3, 1));
        assert_eq!(code.claimed_distance(), Some(3));
        let bad = CodeSpec::Inline {
            name: "bad".into(),
            stabilizers: vec!["XQ".into()],
            distance: None,
        };
        assert!(resolve_code(&bad).unwrap_err().contains("bad stabilizer"));
    }

    #[test]
    fn canonical_key_separates_requests_and_ignores_deadlines() {
        let mk = |line: &str| -> VerifyRequest {
            let Request::Verify(v) = parse_request(line).unwrap() else {
                panic!()
            };
            *v
        };
        let a = mk(r#"{"kind":"distance","code":"steane","max":4}"#);
        let b = mk(r#"{"kind":"distance","code":"steane","max":4,"deadline_ms":5,"id":9}"#);
        let c = mk(r#"{"kind":"distance","code":"steane","max":5}"#);
        let d = mk(r#"{"kind":"detection","code":"steane","dt":4}"#);
        assert_eq!(canonical_request(&a), canonical_request(&b));
        assert_ne!(canonical_request(&a), canonical_request(&c));
        assert_ne!(canonical_request(&a), canonical_request(&d));
    }
}
