//! The content-addressed result cache.
//!
//! A verdict is a pure function of the request content — job kind, code,
//! scenario, schedule, and solver/diagram budgets — so the daemon addresses
//! finished verdicts by an FNV-1a hash of the canonical request string
//! (see [`crate::protocol::canonical_request`]). Only *conclusive*
//! outcomes are cached: an inconclusive or deadline-tripped answer says
//! something about the budget, not the code, and a later request with the
//! same content deserves a fresh attempt. Hash collisions are ruled out by
//! storing the canonical string and comparing it on lookup.

use std::collections::HashMap;
use std::sync::Mutex;

/// FNV-1a over the canonical request bytes: deterministic across runs and
/// platforms (unlike `DefaultHasher`), so cache keys are stable enough to
/// echo to clients and grep in traces.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached verdict.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The canonical request string (collision check).
    pub canonical: String,
    /// The outcome tag of the cached verdict (`"distance_exact"`, …).
    pub outcome: String,
    /// The full single-job `BatchReport` JSON of the original run.
    pub report_json: String,
}

/// A bounded map from request hash to verdict.
///
/// Eviction is whole-table: past `cap` entries the table is cleared. The
/// cache exists to absorb repeat traffic (dashboards re-asking the same
/// question), not to be a tuned LRU; a rare full miss after overflow is an
/// acceptable trade for zero bookkeeping on the hit path.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, CacheEntry>>,
    cap: usize,
}

impl ResultCache {
    /// An empty cache holding at most `cap` verdicts.
    pub fn new(cap: usize) -> Self {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            cap: cap.max(1),
        }
    }

    /// Looks up the verdict for `canonical`, if one is cached under its
    /// hash *and* the stored canonical string matches.
    pub fn lookup(&self, key: u64, canonical: &str) -> Option<CacheEntry> {
        let map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(&key).filter(|e| e.canonical == canonical).cloned()
    }

    /// Stores a verdict. Existing entries under the same hash are replaced.
    pub fn insert(&self, key: u64, entry: CacheEntry) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.len() >= self.cap && !map.contains_key(&key) {
            map.clear();
        }
        map.insert(key, entry);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(canonical: &str) -> CacheEntry {
        CacheEntry {
            canonical: canonical.to_string(),
            outcome: "distance_exact".into(),
            report_json: "{}".into(),
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lookup_checks_the_canonical_string_not_just_the_hash() {
        let cache = ResultCache::new(8);
        let key = fnv1a(b"kind=distance;code=steane");
        cache.insert(key, entry("kind=distance;code=steane"));
        assert!(cache.lookup(key, "kind=distance;code=steane").is_some());
        // A (hypothetical) colliding request must miss, not alias.
        assert!(cache.lookup(key, "kind=distance;code=shor9").is_none());
        assert!(cache.lookup(key ^ 1, "kind=distance;code=steane").is_none());
    }

    #[test]
    fn overflow_clears_rather_than_grows() {
        let cache = ResultCache::new(2);
        for i in 0..5u64 {
            cache.insert(i, entry(&format!("c{i}")));
            assert!(cache.len() <= 2);
        }
        // The most recent insert always lands.
        assert!(cache.lookup(4, "c4").is_some());
    }
}
