//! The serve smoke: forks a server in-process, fires a scripted mix of
//! cache-cold, cache-hot, warm-session, malformed, and deadline-exceeded
//! requests over a real socket, and asserts verdicts, cache-hit counters,
//! encode counts, and a clean drain. `tables serve --smoke` runs this in
//! CI; it is deliberately chatty so a red run says which exchange broke.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use crate::json::Json;
use crate::server::{ServeConfig, Server};

/// One scripted client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and parses the one response line.
    fn ask(&mut self, line: &str) -> Result<Json, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("read: {e}"))?;
        if response.is_empty() {
            return Err(format!("server closed the connection on: {line}"));
        }
        Json::parse(response.trim()).map_err(|e| format!("unparseable response {response:?}: {e}"))
    }
}

fn expect(cond: bool, what: &str, doc: &Json) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("{what}; got {doc:?}"))
    }
}

fn field_str<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key).and_then(Json::as_str).unwrap_or("<missing>")
}

fn field_bool(doc: &Json, key: &str) -> Option<bool> {
    doc.get(key).and_then(Json::as_bool)
}

fn field_count(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

fn first_job(doc: &Json) -> Result<&Json, String> {
    doc.get("report")
        .and_then(|r| r.get("jobs"))
        .and_then(Json::as_arr)
        .and_then(<[Json]>::first)
        .ok_or_else(|| format!("response has no report.jobs[0]: {doc:?}"))
}

/// Runs the scripted smoke against an in-process server. `Err` carries
/// which exchange failed and what came back.
pub fn run_smoke() -> Result<(), String> {
    let handle = Server::start(ServeConfig::default()).map_err(|e| format!("server start: {e}"))?;
    let addr = handle.addr();
    println!("serve smoke: listening on {addr}");
    let mut client = Client::connect(addr)?;

    // (a) Cache-cold distance request: fresh session, exact verdict.
    let r = client.ask(r#"{"id":1,"kind":"distance","code":"steane","max":4}"#)?;
    expect(field_bool(&r, "ok") == Some(true), "cold distance ok", &r)?;
    expect(
        field_str(&r, "outcome") == "distance_exact",
        "cold distance outcome",
        &r,
    )?;
    expect(
        field_bool(&r, "cached") == Some(false),
        "cold request uncached",
        &r,
    )?;
    expect(
        field_str(&r, "session") == "cold",
        "cold request session",
        &r,
    )?;
    expect(
        field_count(&r, "encodes") == 1.0,
        "cold request single encode",
        &r,
    )?;
    let job = first_job(&r)?;
    expect(
        job.get("distance").and_then(Json::as_f64) == Some(3.0),
        "steane distance is 3",
        &r,
    )?;
    println!("serve smoke: cold distance verdict ok (d=3, 1 encode)");

    // (b) Identical repeat: answered from the result cache.
    let r = client.ask(r#"{"id":2,"kind":"distance","code":"steane","max":4}"#)?;
    expect(
        field_bool(&r, "cached") == Some(true),
        "repeat answered from cache",
        &r,
    )?;
    expect(
        field_str(&r, "session") == "cache",
        "repeat session tag",
        &r,
    )?;
    expect(
        field_count(&r, "encodes") == 0.0,
        "cache hit encodes nothing",
        &r,
    )?;
    expect(
        field_str(&r, "outcome") == "distance_exact",
        "cached verdict intact",
        &r,
    )?;
    println!("serve smoke: identical repeat served from cache");

    // (c) Different question, same code: the pooled warm session answers
    // without re-encoding.
    let r = client.ask(r#"{"id":3,"kind":"detection","code":"steane","dt":3}"#)?;
    expect(
        field_str(&r, "outcome") == "all_detected",
        "warm detection verdict",
        &r,
    )?;
    expect(
        field_str(&r, "session") == "warm",
        "warm session reused",
        &r,
    )?;
    expect(
        field_count(&r, "encodes") == 1.0,
        "warm reuse performs no second encode",
        &r,
    )?;
    println!("serve smoke: warm session reused (encode count still 1)");

    // (d) Malformed line: structured error, connection stays up.
    let r = client.ask(r#"{"kind": distance oops"#)?;
    expect(
        field_bool(&r, "ok") == Some(false),
        "malformed line rejected",
        &r,
    )?;
    expect(
        field_str(&r, "error").contains("parse"),
        "malformed line error names the parse",
        &r,
    )?;

    // (e) Unknown code and (f) unknown op: structured errors, id echoed.
    let r = client.ask(r#"{"id":5,"kind":"distance","code":"bogus_17"}"#)?;
    expect(
        field_bool(&r, "ok") == Some(false),
        "unknown code rejected",
        &r,
    )?;
    expect(
        field_count(&r, "id") == 5.0,
        "error echoes the request id",
        &r,
    )?;
    let r = client.ask(r#"{"op":"frobnicate"}"#)?;
    expect(
        field_str(&r, "error").contains("unsupported op"),
        "unknown op rejected",
        &r,
    )?;
    println!("serve smoke: malformed/unknown requests got structured errors, server alive");

    // (g) Deadline-exceeded request: inconclusive with the budget-trip
    // reason. A zero deadline is expired by the time the executor claims
    // the job, so the guard trips synchronously — deterministic, where a
    // small-but-nonzero deadline would race the watchdog against the job.
    let r =
        client.ask(r#"{"id":7,"kind":"distance","code":"surface_5","max":5,"deadline_ms":0}"#)?;
    expect(
        field_bool(&r, "ok") == Some(true),
        "deadline trip still answers",
        &r,
    )?;
    expect(
        field_str(&r, "outcome") == "distance_inconclusive",
        "deadline trip is inconclusive",
        &r,
    )?;
    expect(
        field_str(&r, "reason") == "deadline_exceeded",
        "deadline trip names its reason",
        &r,
    )?;
    let job = first_job(&r)?;
    expect(
        field_str(job, "reason") == "deadline_exceeded",
        "report row carries the reason too",
        &r,
    )?;
    println!("serve smoke: deadline-exceeded request returned inconclusive with reason");

    // (h) Counting request: rides the engine + decision-diagram backend.
    let r = client.ask(r#"{"id":8,"kind":"count","code":"five_qubit"}"#)?;
    expect(
        field_str(&r, "outcome") == "enumerator",
        "count verdict",
        &r,
    )?;
    let job = first_job(&r)?;
    expect(
        job.get("min_weight").and_then(Json::as_f64) == Some(3.0),
        "five-qubit enumerator min weight",
        &r,
    )?;
    println!("serve smoke: count request answered via the engine (min weight 3)");

    // (i) Fault-tolerance sweep, then a different grid against the same
    // scenario: second request reuses the pooled sweep session.
    let ft = r#"{"id":9,"kind":"fault_tolerance","code":"repetition_3","model":"x","rounds":3,"max_t_data":1,"max_t_meas":1}"#;
    let r = client.ask(ft)?;
    expect(
        field_str(&r, "outcome") == "frontier",
        "ft sweep verdict",
        &r,
    )?;
    expect(
        field_str(&r, "session") == "cold",
        "first ft sweep is cold",
        &r,
    )?;
    let r = client.ask(
        r#"{"id":10,"kind":"fault_tolerance","code":"repetition_3","model":"x","rounds":3,"max_t_data":1,"max_t_meas":0}"#,
    )?;
    expect(
        field_str(&r, "session") == "warm",
        "second ft sweep is warm",
        &r,
    )?;
    expect(
        field_count(&r, "encodes") == 1.0,
        "ft warm reuse performs no second encode",
        &r,
    )?;
    println!("serve smoke: fault-tolerance sweep reused its warm session");

    // (j) Counters: the cache hit, warm hits, shed/deadline trips all
    // visible through the stats op.
    let r = client.ask(r#"{"op":"stats"}"#)?;
    let stats = r.get("stats").cloned().unwrap_or(Json::Null);
    expect(
        field_count(&stats, "serve_cache_hits") >= 1.0,
        "cache hit counter advanced",
        &r,
    )?;
    expect(
        field_count(&stats, "serve_warm_hits") >= 2.0,
        "warm hit counter advanced",
        &r,
    )?;
    expect(
        field_count(&stats, "serve_deadline_trips") >= 1.0,
        "deadline trip counter advanced",
        &r,
    )?;
    expect(
        field_count(&stats, "serve_malformed") >= 2.0,
        "malformed counter advanced",
        &r,
    )?;
    println!("serve smoke: stats op reports cache/warm/deadline counters");

    // (k) Admission control on a saturated server: a zero-length pending
    // queue sheds every verification request with "busy".
    let busy = Server::start(ServeConfig {
        max_pending: 0,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("busy-server start: {e}"))?;
    let mut busy_client = Client::connect(busy.addr())?;
    let r = busy_client.ask(r#"{"id":11,"kind":"distance","code":"steane","max":3}"#)?;
    expect(
        field_str(&r, "error") == "busy",
        "saturated server sheds",
        &r,
    )?;
    drop(busy_client);
    busy.shutdown();
    busy.join().map_err(|e| format!("busy-server drain: {e}"))?;
    println!("serve smoke: saturated server shed with busy");

    // (l) Graceful drain over the protocol.
    let r = client.ask(r#"{"op":"shutdown"}"#)?;
    expect(
        field_bool(&r, "draining") == Some(true),
        "shutdown acknowledged",
        &r,
    )?;
    drop(client);
    handle.join().map_err(|e| format!("drain: {e}"))?;
    println!("serve smoke: server drained cleanly");
    Ok(())
}

#[cfg(test)]
mod tests {
    // `run_smoke` itself is exercised by `tables serve --smoke` in release
    // CI (surface-5 encodes are too slow for debug-mode unit tests); the
    // cheap per-subsystem paths have their own tests in `server`, `cache`,
    // `pool`, and `protocol`.
}
